#include "stop/reposition.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>

#include "common/check.h"
#include "dist/ideal.h"
#include "stop/br_xy.h"

namespace spb::stop {

namespace {

std::string repos_name(const std::string& base_name) {
  // "Br_Lin" -> "Repos_Lin", "Br_xy_source" -> "Repos_xy_source".
  SPB_REQUIRE(base_name.rfind("Br_", 0) == 0,
              "repositioning wraps only the Br_* algorithms, got '"
                  << base_name << "'");
  return "Repos_" + base_name.substr(3);
}

}  // namespace

std::vector<Rank> ideal_targets_for(const Algorithm& base, const Frame& frame,
                                    int s) {
  if (s == 0) return {};
  const dist::Grid grid = frame.grid();
  std::vector<Rank> positions;
  const std::string base_name = base.name();
  if (base_name == "Br_Lin") {
    positions = dist::ideal_linear(grid, s);
  } else if (base_name == "Br_xy_source") {
    positions = dist::ideal_rows(grid, s);
  } else if (base_name == "Br_xy_dim") {
    // Br_xy_dim's second phase spreads across the first dimension's lines;
    // give it full lines of the *first* dimension at spread positions.
    const auto& dim = dynamic_cast<const BrXyDim&>(base);
    positions = dim.rows_first(frame) ? dist::ideal_cols(grid, s)
                                      : dist::ideal_rows(grid, s);
  } else {
    SPB_REQUIRE(false, "no ideal distribution known for algorithm '"
                           << base_name << "'");
  }
  // Grid positions -> global ranks of this frame.
  std::vector<Rank> targets;
  targets.reserve(positions.size());
  for (const Rank pos : positions)
    targets.push_back(frame.rank_at(static_cast<int>(pos)));
  std::sort(targets.begin(), targets.end());
  return targets;
}

PermutationPlan PermutationPlan::match(const std::vector<Rank>& sources,
                                       const std::vector<Rank>& targets) {
  SPB_REQUIRE(sources.size() == targets.size(),
              "permutation needs |sources| == |targets|");
  SPB_REQUIRE(std::is_sorted(sources.begin(), sources.end()) &&
                  std::is_sorted(targets.begin(), targets.end()),
              "permutation inputs must be sorted");
  PermutationPlan plan;
  // Sources already on a target stay; the remainder map in sorted order.
  std::set_difference(sources.begin(), sources.end(), targets.begin(),
                      targets.end(), std::back_inserter(plan.movers));
  std::set_difference(targets.begin(), targets.end(), sources.begin(),
                      sources.end(), std::back_inserter(plan.slots));
  SPB_CHECK(plan.movers.size() == plan.slots.size());
  return plan;
}

Rank PermutationPlan::send_target(Rank r) const {
  const auto it = std::lower_bound(movers.begin(), movers.end(), r);
  if (it == movers.end() || *it != r) return kNoRank;
  return slots[static_cast<std::size_t>(it - movers.begin())];
}

Rank PermutationPlan::recv_origin(Rank r) const {
  const auto it = std::lower_bound(slots.begin(), slots.end(), r);
  if (it == slots.end() || *it != r) return kNoRank;
  return movers[static_cast<std::size_t>(it - slots.begin())];
}

namespace {

sim::Task repos_program(mp::Comm& comm, mp::Payload& data,
                        std::shared_ptr<const PermutationPlan> plan,
                        std::shared_ptr<const ProgramFactory> base) {
  const Rank me = comm.rank();
  comm.begin_phase("reposition");
  const Rank to = plan->send_target(me);
  if (to != kNoRank) {
    co_await comm.send(to, data, mp::tags::kPermute);
    data.clear();
  }
  const Rank from = plan->recv_origin(me);
  if (from != kNoRank) {
    mp::Message m = co_await comm.recv(from, mp::tags::kPermute);
    SPB_CHECK_MSG(data.empty(),
                  "repositioning target rank " << me
                                               << " already holds data");
    data = std::move(m.payload);
  }
  comm.mark_iteration();
  comm.end_phase();
  co_await (*base)(comm, data);
}

}  // namespace

Repositioning::Repositioning(AlgorithmPtr base)
    : base_(std::move(base)), name_(repos_name(base_->name())) {}

std::vector<Rank> Repositioning::ideal_targets(const Frame& frame) const {
  return ideal_targets_for(*base_, frame,
                           static_cast<int>(frame.sources().size()));
}

ProgramFactory Repositioning::prepare(const Frame& frame) const {
  const std::vector<Rank> targets = ideal_targets(frame);
  auto plan = std::make_shared<const PermutationPlan>(
      PermutationPlan::match(frame.sources(), targets));

  // The base algorithm sees the repositioned world.
  const Frame repositioned =
      Frame::sub(*frame.ranks(), frame.rows(), frame.cols(), targets,
                 frame.message_bytes(), frame.hints());
  auto base_factory =
      std::make_shared<const ProgramFactory>(base_->prepare(repositioned));

  return [plan, base_factory](mp::Comm& comm, mp::Payload& data) {
    return repos_program(comm, data, plan, base_factory);
  };
}

}  // namespace spb::stop
