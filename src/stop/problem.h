// An s-to-p broadcasting problem instance: a machine, the sorted source
// ranks, and the per-source message length L.  Matching the paper's setup,
// every rank knows the full source list before the broadcast starts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dist/distribution.h"
#include "dist/grid.h"
#include "machine/config.h"

namespace spb::stop {

struct Problem {
  machine::MachineConfig machine;
  /// Sorted, distinct source ranks; 1 <= |sources| <= machine.p.
  std::vector<Rank> sources;
  /// Message length L at every source, in bytes.
  Bytes message_bytes = 1024;
  /// Optional per-source message lengths, aligned with `sources`
  /// (empty = every source sends `message_bytes`).  The paper's Section 5
  /// experiments with different-length messages; all algorithms handle
  /// them, planning with the uniform L as the nominal size.
  std::vector<Bytes> per_source_bytes;

  int p() const { return machine.p; }
  int s() const { return static_cast<int>(sources.size()); }
  dist::Grid grid() const { return {machine.rows, machine.cols}; }

  /// Message length of one source (per-source override or the uniform L).
  Bytes bytes_of_source(std::size_t source_index) const;

  /// Throws CheckError if the instance is malformed.
  void validate() const;
};

/// Convenience constructor: machine + one of the paper's distribution
/// families.
Problem make_problem(machine::MachineConfig machine, dist::Kind kind, int s,
                     Bytes message_bytes, std::uint64_t seed = 1);

/// Same with an explicit (possibly unsorted) source list.
Problem make_problem(machine::MachineConfig machine,
                     std::vector<Rank> sources, Bytes message_bytes);

/// Applies per-source length jitter: source j sends a length drawn
/// uniformly from [L*(1-spread), L*(1+spread)], seeded.  Models the
/// paper's different-length-messages experiments.
Problem with_varied_lengths(Problem pb, double spread, std::uint64_t seed);

}  // namespace spb::stop
