// Algorithm PersAlltoAll (paper Section 2): every source pushes its
// original, uncombined message to every other rank, scheduled as p-1
// permutations (XOR matchings on power-of-two frames).  Minimal wait cost,
// maximal message count — poor on the Paragon, the winner on the T3D.
//
// MPI_Alltoall is the same algorithm on the heavier portable MPI layer.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class PersAlltoAll final : public Algorithm {
 public:
  explicit PersAlltoAll(bool mpi) : mpi_(mpi) {}
  std::string name() const override {
    return mpi_ ? "MPI_Alltoall" : "PersAlltoAll";
  }
  bool mpi_flavored() const override { return mpi_; }
  ProgramFactory prepare(const Frame& frame) const override;

 private:
  bool mpi_;
};

}  // namespace spb::stop
