#include "stop/uncoordinated.h"

#include <memory>
#include <utility>
#include <vector>

#include "coll/pipeline.h"
#include "common/check.h"

namespace spb::stop {

namespace {

/// Message tags distinguish the independent trees; clear of the reserved
/// phase tags in mp/message.h.
constexpr int kTreeTagBase = 8;

struct UncoordPlan {
  std::shared_ptr<const std::vector<Rank>> seq;
  /// One broadcast tree per source, rooted at the source's position.
  std::vector<coll::BcastTree> trees;
  /// sources[i] matches trees[i].
  std::vector<Rank> sources;
};

sim::Task uncoord_program(mp::Comm& comm, mp::Payload& data,
                          std::shared_ptr<const UncoordPlan> plan,
                          int my_pos) {
  const int s = static_cast<int>(plan->trees.size());
  comm.begin_phase("flood");

  // Kick off my own tree, if I am a source (my payload is my original).
  int expected = s;
  for (int i = 0; i < s; ++i) {
    if (plan->sources[static_cast<std::size_t>(i)] != comm.rank()) continue;
    --expected;
    const mp::Payload original = data;
    for (const int child :
         plan->trees[static_cast<std::size_t>(i)]
             .children[static_cast<std::size_t>(my_pos)]) {
      co_await comm.send((*plan->seq)[static_cast<std::size_t>(child)],
                         original, kTreeTagBase + i);
    }
    comm.mark_iteration();
  }

  // Forward-and-collect: every other tree delivers exactly one message
  // here; forward it down that tree, then keep the chunk.
  for (int k = 0; k < expected; ++k) {
    mp::Message m = co_await comm.recv(mp::kAnySource, mp::kAnyTag);
    const int tree = m.tag - kTreeTagBase;
    SPB_CHECK_MSG(tree >= 0 && tree < s,
                  "unexpected tag " << m.tag << " in uncoordinated bcast");
    for (const int child :
         plan->trees[static_cast<std::size_t>(tree)]
             .children[static_cast<std::size_t>(my_pos)]) {
      co_await comm.send((*plan->seq)[static_cast<std::size_t>(child)],
                         m.payload, m.tag);
    }
    // No combining: chunks are simply kept (gatherv-style placement).
    data.merge(m.payload);
    comm.mark_iteration();
  }
  comm.end_phase();
}

}  // namespace

ProgramFactory Uncoordinated::prepare(const Frame& frame) const {
  auto plan = std::make_shared<UncoordPlan>();
  plan->seq = frame.ranks();
  plan->sources = frame.sources();
  plan->trees.reserve(plan->sources.size());
  for (const Rank src : plan->sources)
    plan->trees.push_back(
        coll::BcastTree::from_halving(frame.size(), frame.position_of(src)));

  return [frame, plan](mp::Comm& comm, mp::Payload& data) {
    return uncoord_program(comm, data, plan,
                           frame.position_of(comm.rank()));
  };
}

AlgorithmPtr make_uncoordinated() {
  return std::make_shared<const Uncoordinated>();
}

}  // namespace spb::stop
