// Hierarchical (two-level) s-to-p broadcasting — the algorithm family for
// cluster machines (machine::cluster), where one logical grid row is one
// compute node: gather each row's sources at the row leader over the fast
// local tier, broadcast between the leaders over the slow tier, fan out
// locally.  The family is machine-independent (it only reads the frame's
// logical grid), so it runs — and is certified — on every machine; it wins
// when intra-row links are much cheaper than inter-row ones.
//
// Wildcard safety: the leader-gather phases stamp their traffic
// mp::tags::kGather, so a leader's any-source gather can never match
// another leader's kData halving message arriving early (see mp/message.h).
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

/// Hier_Lin: per-row gather at the row leaders, recursive-halving
/// allgather among the leaders (rows holding sources start active), then
/// store-and-forward fanout inside each row.  Degenerates to Br_Lin when
/// every row has one member and to 2-Step-like gather+fanout when there is
/// a single row.
class HierLin final : public Algorithm {
 public:
  std::string name() const override { return "Hier_Lin"; }
  ProgramFactory prepare(const Frame& frame) const override;
};

/// Hier_2Step: per-row gather at the row leaders, second-level gather at
/// the global root (leader of row 0), one-to-all halving broadcast across
/// the leaders, then the same local fanout as Hier_Lin.  The hierarchical
/// analogue of the paper's 2-Step.
class Hier2Step final : public Algorithm {
 public:
  std::string name() const override { return "Hier_2Step"; }
  ProgramFactory prepare(const Frame& frame) const override;
};

AlgorithmPtr make_hier_lin();
AlgorithmPtr make_hier_2step();

}  // namespace spb::stop
