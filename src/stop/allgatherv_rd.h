// Extension (beyond the paper): Allgatherv_RD — the recursive
// halving/doubling allgatherv that modern MPI implementations use for the
// s-to-p pattern.  Structurally it is Br_Lin's merge pattern, but each
// received block lands at its pre-computed offset in the result buffer
// (gatherv semantics), so there is no combining cost.  The ext_modern_mpi
// bench uses it to show why MPI collectives absorbed this problem: the
// combining cost was the only thing separating Br_Lin from a vendor-grade
// collective.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class AllgathervRd final : public Algorithm {
 public:
  std::string name() const override { return "Allgatherv_RD"; }
  bool mpi_flavored() const override { return true; }
  ProgramFactory prepare(const Frame& frame) const override;
};

/// Registry factory (listed by all_algorithms()).
AlgorithmPtr make_allgatherv_rd();

}  // namespace spb::stop
