#include "stop/allgatherv_rd.h"

#include <memory>

#include "coll/engine.h"
#include "coll/halving.h"

namespace spb::stop {

ProgramFactory AllgathervRd::prepare(const Frame& frame) const {
  auto sched = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(frame.active_flags()));
  auto seq = frame.ranks();
  return [frame, seq, sched](mp::Comm& comm, mp::Payload& data) {
    return coll::run_halving(comm, seq, frame.position_of(comm.rank()),
                             sched, data,
                             coll::HalvingOptions{.mark_iterations = true,
                                                  .combine_cost = false,
                                                  .phase = "allgather"});
  };
}

AlgorithmPtr make_allgatherv_rd() {
  return std::make_shared<const AllgathervRd>();
}

}  // namespace spb::stop
