#include "stop/hierarchical.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "coll/engine.h"
#include "coll/gather.h"
#include "coll/halving.h"
#include "common/math.h"

namespace spb::stop {

namespace {

/// The frame decomposed into its hierarchy: one logical grid row = one
/// "node" of the two-level machine.  Computed once in prepare(), shared by
/// all rank coroutines.
struct HierPlan {
  int cols = 1;
  bool any_sources = false;

  /// Leader rank of every non-empty row (the row's first position).
  std::shared_ptr<const std::vector<Rank>> leaders;
  /// Leaders of rows holding sources, sorted by rank (gather order).
  std::shared_ptr<const std::vector<Rank>> active_leaders;
  /// Hier_Lin: halving allgather across rows, source rows start active.
  std::shared_ptr<const coll::HalvingSchedule> leader_allgather;
  /// Hier_2Step: one-to-all halving across rows, only row 0 active.
  std::shared_ptr<const coll::HalvingSchedule> leader_bcast;

  // Per-row pieces, indexed by row.
  std::vector<std::shared_ptr<const std::vector<Rank>>> row_ranks;
  std::vector<std::shared_ptr<const std::vector<Rank>>> row_senders;
  std::vector<std::shared_ptr<const coll::HalvingSchedule>> row_fanout;
};

using HierPlanPtr = std::shared_ptr<const HierPlan>;

HierPlanPtr build_plan(const Frame& frame) {
  auto plan = std::make_shared<HierPlan>();
  const int n = frame.size();
  const int cols = frame.cols();
  plan->cols = cols;
  plan->any_sources = !frame.sources().empty();
  const int nrows = static_cast<int>(ceil_div(n, cols));

  auto leaders = std::make_shared<std::vector<Rank>>();
  std::vector<char> row_active(static_cast<std::size_t>(nrows), 0);
  plan->row_ranks.resize(static_cast<std::size_t>(nrows));
  plan->row_senders.resize(static_cast<std::size_t>(nrows));
  plan->row_fanout.resize(static_cast<std::size_t>(nrows));

  // Per-row sorted source lists (frame.sources() is sorted by rank, so the
  // per-row slices stay sorted).
  std::vector<std::vector<Rank>> senders(static_cast<std::size_t>(nrows));
  for (const Rank src : frame.sources()) {
    const int row = frame.position_of(src) / cols;
    senders[static_cast<std::size_t>(row)].push_back(src);
    row_active[static_cast<std::size_t>(row)] = 1;
  }

  // Fanout schedules are shared between rows of equal length (all rows but
  // possibly the last): one-to-all halving, position 0 (the leader) active.
  std::shared_ptr<const coll::HalvingSchedule> full_fanout;
  for (int r = 0; r < nrows; ++r) {
    const int begin = r * cols;
    const int len = std::min(cols, n - begin);
    leaders->push_back(frame.rank_at(begin));
    auto ranks = std::make_shared<std::vector<Rank>>();
    ranks->reserve(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) ranks->push_back(frame.rank_at(begin + i));
    plan->row_ranks[static_cast<std::size_t>(r)] = std::move(ranks);
    plan->row_senders[static_cast<std::size_t>(r)] =
        std::make_shared<const std::vector<Rank>>(
            std::move(senders[static_cast<std::size_t>(r)]));
    if (plan->any_sources && len > 1) {
      if (len != cols || full_fanout == nullptr) {
        std::vector<char> only_leader(static_cast<std::size_t>(len), 0);
        only_leader[0] = 1;
        auto sched = std::make_shared<const coll::HalvingSchedule>(
            coll::HalvingSchedule::compute(only_leader));
        if (len == cols) full_fanout = sched;
        plan->row_fanout[static_cast<std::size_t>(r)] = std::move(sched);
      } else {
        plan->row_fanout[static_cast<std::size_t>(r)] = full_fanout;
      }
    }
  }

  auto active_leaders = std::make_shared<std::vector<Rank>>();
  for (int r = 0; r < nrows; ++r)
    if (row_active[static_cast<std::size_t>(r)] != 0)
      active_leaders->push_back((*leaders)[static_cast<std::size_t>(r)]);
  std::sort(active_leaders->begin(), active_leaders->end());

  plan->leader_allgather = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(row_active));
  std::vector<char> only_root(static_cast<std::size_t>(nrows), 0);
  if (plan->any_sources) only_root[0] = 1;
  plan->leader_bcast = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(only_root));

  plan->leaders = std::move(leaders);
  plan->active_leaders = std::move(active_leaders);
  return plan;
}

/// One rank's program.  `pos` is its frame position; leaders additionally
/// run the cross-row phase (allgather for Hier_Lin, gather+broadcast for
/// Hier_2Step).
sim::Task hier_program(mp::Comm& comm, mp::Payload& data, HierPlanPtr plan,
                       int pos, bool two_step_leaders) {
  const int row = pos / plan->cols;
  const auto r = static_cast<std::size_t>(row);
  const bool is_leader = pos % plan->cols == 0;

  // Phase 1: the row's sources land on the row leader over the local tier.
  if (!plan->row_senders[r]->empty()) {
    comm.begin_phase("gather");
    co_await coll::gather_to_root(comm, (*plan->leaders)[r],
                                  plan->row_senders[r], data,
                                  mp::tags::kGather);
    comm.end_phase();
  }

  // Phase 2 (leaders only): spread the per-row buckets across all rows.
  if (is_leader && plan->any_sources && plan->leaders->size() > 1) {
    const int my_leader_pos = row;
    if (two_step_leaders) {
      const Rank root = plan->leaders->front();
      comm.begin_phase("leaders");
      co_await coll::gather_to_root(comm, root, plan->active_leaders, data,
                                    mp::tags::kGather);
      comm.end_phase();
      co_await coll::run_halving(
          comm, plan->leaders, my_leader_pos, plan->leader_bcast, data,
          coll::HalvingOptions{.mark_iterations = true,
                               .combine_cost = false,
                               .phase = "leaders"});
    } else {
      co_await coll::run_halving(
          comm, plan->leaders, my_leader_pos, plan->leader_allgather, data,
          coll::HalvingOptions{.mark_iterations = true,
                               .combine_cost = true,
                               .phase = "leaders"});
    }
  }

  // Phase 3: leaders fan the full result out inside their rows.
  if (plan->row_fanout[r] != nullptr) {
    co_await coll::run_halving(
        comm, plan->row_ranks[r], pos % plan->cols, plan->row_fanout[r],
        data,
        coll::HalvingOptions{.mark_iterations = true,
                             .combine_cost = false,
                             .phase = "fanout"});
  }
}

ProgramFactory prepare_hier(const Frame& frame, bool two_step_leaders) {
  HierPlanPtr plan = build_plan(frame);
  return [frame, plan, two_step_leaders](mp::Comm& comm, mp::Payload& data) {
    return hier_program(comm, data, plan, frame.position_of(comm.rank()),
                        two_step_leaders);
  };
}

}  // namespace

ProgramFactory HierLin::prepare(const Frame& frame) const {
  return prepare_hier(frame, /*two_step_leaders=*/false);
}

ProgramFactory Hier2Step::prepare(const Frame& frame) const {
  return prepare_hier(frame, /*two_step_leaders=*/true);
}

AlgorithmPtr make_hier_lin() { return std::make_shared<const HierLin>(); }

AlgorithmPtr make_hier_2step() { return std::make_shared<const Hier2Step>(); }

}  // namespace spb::stop
