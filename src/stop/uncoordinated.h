// The approach the paper dismisses in Section 2: "allow each source
// processor to initiate its own 1-to-p broadcast, independent of the
// location and number of source processors.  Such a solution seems
// attractive for dynamic broadcasting situations since it does not
// require synchronization ... However, having the s broadcasting
// processes take place without interaction and coordination leads to poor
// performance due to arising congestion and the large number of messages
// in the system."
//
// Implemented faithfully: every source roots its own halving broadcast
// tree; messages are never combined; each rank forwards whatever tree
// traffic arrives (trees are told apart by message tag).  s*(p-1)
// messages total versus the O(p log p) of the coordinated algorithms —
// bench/ext_uncoordinated measures where that bites.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class Uncoordinated final : public Algorithm {
 public:
  std::string name() const override { return "Uncoord_1toAll"; }
  ProgramFactory prepare(const Frame& frame) const override;
};

AlgorithmPtr make_uncoordinated();

}  // namespace spb::stop
