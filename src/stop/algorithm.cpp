#include "stop/algorithm.h"

#include <cctype>

#include "common/check.h"
#include "stop/adaptive_repos.h"
#include "stop/allgatherv_rd.h"
#include "stop/uncoordinated.h"
#include "stop/br_lin.h"
#include "stop/br_xy.h"
#include "stop/hierarchical.h"
#include "stop/partition.h"
#include "stop/pers_alltoall.h"
#include "stop/reposition.h"
#include "stop/two_step.h"

namespace spb::stop {

AlgorithmPtr make_two_step(bool mpi) {
  return std::make_shared<const TwoStep>(mpi);
}

AlgorithmPtr make_pers_alltoall(bool mpi) {
  return std::make_shared<const PersAlltoAll>(mpi);
}

AlgorithmPtr make_br_lin() { return std::make_shared<const BrLin>(); }

AlgorithmPtr make_br_xy_source() {
  return std::make_shared<const BrXySource>();
}

AlgorithmPtr make_br_xy_dim() { return std::make_shared<const BrXyDim>(); }

AlgorithmPtr make_repositioning(AlgorithmPtr base) {
  return std::make_shared<const Repositioning>(std::move(base));
}

AlgorithmPtr make_partitioning(AlgorithmPtr base) {
  return std::make_shared<const Partitioning>(std::move(base));
}

std::vector<AlgorithmPtr> all_algorithms() {
  return {
      make_two_step(false),
      make_two_step(true),
      make_pers_alltoall(false),
      make_pers_alltoall(true),
      make_br_lin(),
      make_br_xy_source(),
      make_br_xy_dim(),
      make_repositioning(make_br_lin()),
      make_repositioning(make_br_xy_source()),
      make_repositioning(make_br_xy_dim()),
      make_partitioning(make_br_lin()),
      make_partitioning(make_br_xy_source()),
      make_partitioning(make_br_xy_dim()),
      make_br_lin_snake(),
      make_allgatherv_rd(),
      make_adaptive_repositioning(make_br_xy_source()),
      make_uncoordinated(),
      make_hier_lin(),
      make_hier_2step(),
  };
}

namespace {

/// Lowercase with '-' and '_' stripped: "Br_xy_source" and "br-xy-source"
/// normalize alike, so CLI spellings need not match the paper's exactly.
std::string normalize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '-' || c == '_') continue;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  // Spelled-out aliases for names that normalization alone cannot reach.
  if (out == "twostep") return "2step";
  return out;
}

}  // namespace

AlgorithmPtr find_algorithm(const std::string& name) {
  std::vector<AlgorithmPtr> all = all_algorithms();
  for (auto& a : all)
    if (a->name() == name) return a;
  // Fall back to normalized matching ("two_step" -> "2-Step"); exact names
  // always win so future names cannot be shadowed by an alias.
  const std::string want = normalize_name(name);
  for (auto& a : all)
    if (normalize_name(a->name()) == want) return a;
  SPB_REQUIRE(false, "unknown algorithm '" << name << "'");
  return nullptr;  // unreachable
}

}  // namespace spb::stop
