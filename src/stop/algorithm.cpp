#include "stop/algorithm.h"

#include "common/check.h"
#include "stop/adaptive_repos.h"
#include "stop/allgatherv_rd.h"
#include "stop/uncoordinated.h"
#include "stop/br_lin.h"
#include "stop/br_xy.h"
#include "stop/partition.h"
#include "stop/pers_alltoall.h"
#include "stop/reposition.h"
#include "stop/two_step.h"

namespace spb::stop {

AlgorithmPtr make_two_step(bool mpi) {
  return std::make_shared<const TwoStep>(mpi);
}

AlgorithmPtr make_pers_alltoall(bool mpi) {
  return std::make_shared<const PersAlltoAll>(mpi);
}

AlgorithmPtr make_br_lin() { return std::make_shared<const BrLin>(); }

AlgorithmPtr make_br_xy_source() {
  return std::make_shared<const BrXySource>();
}

AlgorithmPtr make_br_xy_dim() { return std::make_shared<const BrXyDim>(); }

AlgorithmPtr make_repositioning(AlgorithmPtr base) {
  return std::make_shared<const Repositioning>(std::move(base));
}

AlgorithmPtr make_partitioning(AlgorithmPtr base) {
  return std::make_shared<const Partitioning>(std::move(base));
}

std::vector<AlgorithmPtr> all_algorithms() {
  return {
      make_two_step(false),
      make_two_step(true),
      make_pers_alltoall(false),
      make_pers_alltoall(true),
      make_br_lin(),
      make_br_xy_source(),
      make_br_xy_dim(),
      make_repositioning(make_br_lin()),
      make_repositioning(make_br_xy_source()),
      make_repositioning(make_br_xy_dim()),
      make_partitioning(make_br_lin()),
      make_partitioning(make_br_xy_source()),
      make_partitioning(make_br_xy_dim()),
      make_br_lin_snake(),
      make_allgatherv_rd(),
      make_adaptive_repositioning(make_br_xy_source()),
      make_uncoordinated(),
  };
}

AlgorithmPtr find_algorithm(const std::string& name) {
  for (auto& a : all_algorithms())
    if (a->name() == name) return a;
  SPB_REQUIRE(false, "unknown algorithm '" << name << "'");
  return nullptr;  // unreachable
}

}  // namespace spb::stop
