// The s-to-p broadcasting algorithm interface and registry.
//
// An Algorithm turns a Frame into a per-rank program factory.  prepare()
// does all the global planning once (schedules, permutations, dimension
// choices — legal because every processor knows the source positions, per
// the paper's model); the factory then builds each rank's coroutine.
//
// Algorithms (paper Section 2 and 3):
//   2-Step          gather at P0, then one-to-all broadcast
//   PersAlltoAll    p-1 personalized exchange permutations
//   MPI_AllGather   2-Step on the heavier MPI layer
//   MPI_Alltoall    PersAlltoAll on the heavier MPI layer
//   Br_Lin          recursive halving on the linear rank order
//   Br_xy_source    per-dimension Br_Lin, source counts pick the order
//   Br_xy_dim       per-dimension Br_Lin, mesh shape picks the order
//   Repos_*         reposition sources to an ideal distribution, then run
//                   the base algorithm
//   Part_*          reposition + split the machine in two, broadcast in
//                   both halves, exchange between the halves
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mp/runtime.h"
#include "sim/task.h"
#include "stop/frame.h"

namespace spb::stop {

/// Builds the program of one rank.  `data` is the rank's payload slot
/// (holding its original message iff it is a source) and must outlive the
/// task; on completion it holds the full broadcast result.
using ProgramFactory =
    std::function<sim::Task(mp::Comm& comm, mp::Payload& data)>;

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// The paper's name for the algorithm ("Br_Lin", "2-Step", ...).
  virtual std::string name() const = 0;

  /// True for algorithms that run on the portable MPI layer and pay the
  /// machine's extra per-message cost.
  virtual bool mpi_flavored() const { return false; }

  /// Plans the broadcast for one frame and returns the per-rank factory.
  virtual ProgramFactory prepare(const Frame& frame) const = 0;
};

using AlgorithmPtr = std::shared_ptr<const Algorithm>;

// Factories -----------------------------------------------------------

AlgorithmPtr make_two_step(bool mpi = false);
AlgorithmPtr make_pers_alltoall(bool mpi = false);
AlgorithmPtr make_br_lin();
AlgorithmPtr make_br_xy_source();
AlgorithmPtr make_br_xy_dim();

/// Repositioning wrapper (Repos_Lin / Repos_xy_source / Repos_xy_dim):
/// base must be one of the Br_* algorithms.
AlgorithmPtr make_repositioning(AlgorithmPtr base);

/// Partitioning wrapper (Part_Lin / Part_xy_source / Part_xy_dim).
AlgorithmPtr make_partitioning(AlgorithmPtr base);

/// Every algorithm the benchmarks exercise, in presentation order.
std::vector<AlgorithmPtr> all_algorithms();

/// Looks an algorithm up by its name() (throws CheckError when unknown).
AlgorithmPtr find_algorithm(const std::string& name);

}  // namespace spb::stop
