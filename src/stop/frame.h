// A Frame is the slice of the machine an algorithm instance operates on: an
// ordered list of ranks viewed as an rows x cols logical grid, with the
// sources among them.  Whole-machine runs use one frame covering all p
// ranks; the partitioning algorithms (Part_*) run one broadcast per group,
// each on its own sub-frame.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dist/grid.h"
#include "stop/problem.h"

namespace spb::stop {

/// Machine-dependent execution knobs algorithms honour (propagated from
/// machine::MachineConfig through Frame::whole into every sub-frame).
struct ExecutionHints {
  /// If > 0, the 2-Step broadcast phase pipelines in segments of this many
  /// bytes (vendor-tuned collectives); 0 = store-and-forward halving (the
  /// paper's own NX implementation).
  Bytes bcast_segment_bytes = 0;
};

class Frame {
 public:
  /// Whole-machine frame of a problem.
  static Frame whole(const Problem& pb);

  /// Sub-frame over an explicit rank list (row-major over rows x cols).
  /// `sources` must be a subset of `ranks`.
  static Frame sub(std::vector<Rank> ranks, int rows, int cols,
                   std::vector<Rank> sources, Bytes message_bytes,
                   ExecutionHints hints = {});

  int size() const { return static_cast<int>(ranks_->size()); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  dist::Grid grid() const { return {rows_, cols_}; }
  Bytes message_bytes() const { return message_bytes_; }
  const ExecutionHints& hints() const { return hints_; }

  /// Row-major rank list; position i sits at grid cell (i/cols, i%cols).
  const std::shared_ptr<const std::vector<Rank>>& ranks() const {
    return ranks_;
  }
  Rank rank_at(int pos) const { return (*ranks_)[static_cast<std::size_t>(pos)]; }

  /// Position of a rank inside the frame (throws if absent).
  int position_of(Rank r) const;
  bool contains(Rank r) const;

  /// Sorted global source ranks inside this frame.
  const std::vector<Rank>& sources() const { return sources_; }
  /// Activity flags indexed by frame position.
  std::vector<char> active_flags() const;

  /// Sources per grid row / column (frame-local coordinates).
  std::vector<int> row_source_counts() const;
  std::vector<int> col_source_counts() const;

 private:
  std::shared_ptr<const std::vector<Rank>> ranks_;
  std::unordered_map<Rank, int> position_;
  int rows_ = 1;
  int cols_ = 1;
  std::vector<Rank> sources_;
  Bytes message_bytes_ = 0;
  ExecutionHints hints_;
};

}  // namespace spb::stop
