#include "stop/frame.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace spb::stop {

Frame Frame::whole(const Problem& pb) {
  pb.validate();
  std::vector<Rank> ranks(static_cast<std::size_t>(pb.p()));
  std::iota(ranks.begin(), ranks.end(), 0);
  return sub(std::move(ranks), pb.machine.rows, pb.machine.cols, pb.sources,
             pb.message_bytes,
             ExecutionHints{pb.machine.bcast_segment_bytes});
}

Frame Frame::sub(std::vector<Rank> ranks, int rows, int cols,
                 std::vector<Rank> sources, Bytes message_bytes,
                 ExecutionHints hints) {
  SPB_REQUIRE(!ranks.empty(), "frame needs at least one rank");
  SPB_REQUIRE(rows >= 1 && cols >= 1 &&
                  rows * cols == static_cast<int>(ranks.size()),
              "frame grid " << rows << "x" << cols << " does not cover "
                            << ranks.size() << " ranks");
  SPB_REQUIRE(std::is_sorted(sources.begin(), sources.end()),
              "frame sources must be sorted");

  Frame f;
  f.rows_ = rows;
  f.cols_ = cols;
  f.message_bytes_ = message_bytes;
  f.hints_ = hints;
  f.position_.reserve(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const bool fresh =
        f.position_.emplace(ranks[i], static_cast<int>(i)).second;
    SPB_REQUIRE(fresh, "rank " << ranks[i] << " appears twice in the frame");
  }
  for (const Rank s : sources)
    SPB_REQUIRE(f.position_.count(s) == 1,
                "source " << s << " is not a member of the frame");
  f.ranks_ = std::make_shared<const std::vector<Rank>>(std::move(ranks));
  f.sources_ = std::move(sources);
  return f;
}

int Frame::position_of(Rank r) const {
  const auto it = position_.find(r);
  SPB_REQUIRE(it != position_.end(),
              "rank " << r << " is not a member of the frame");
  return it->second;
}

bool Frame::contains(Rank r) const { return position_.count(r) == 1; }

std::vector<char> Frame::active_flags() const {
  std::vector<char> flags(static_cast<std::size_t>(size()), 0);
  for (const Rank s : sources_)
    flags[static_cast<std::size_t>(position_of(s))] = 1;
  return flags;
}

std::vector<int> Frame::row_source_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(rows_), 0);
  for (const Rank s : sources_)
    ++counts[static_cast<std::size_t>(position_of(s) / cols_)];
  return counts;
}

std::vector<int> Frame::col_source_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(cols_), 0);
  for (const Rank s : sources_)
    ++counts[static_cast<std::size_t>(position_of(s) % cols_)];
  return counts;
}

}  // namespace spb::stop
