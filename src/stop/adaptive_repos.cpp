#include "stop/adaptive_repos.h"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "plan/cost_model.h"
#include "stop/reposition.h"

namespace spb::stop {

namespace {

// The decision delegates to the shared planning cost model (plan::CostModel
// generalizes the model that used to live here).  The default Calibration
// keeps the original abstract ratios — only the ideal-vs-input comparison
// matters, and bench/ext_adaptive validates the decisions end to end.
const plan::CostModel& decision_model() {
  static const plan::CostModel model{plan::Calibration{}};
  return model;
}

/// The frame's broadcast problem in position space, with `srcs` (ranks of
/// the frame) as the sources.
plan::ProblemShape shape_for(const Frame& frame,
                             const std::vector<Rank>& srcs) {
  plan::ProblemShape shape;
  shape.rows = frame.rows();
  shape.cols = frame.cols();
  shape.message_bytes = frame.message_bytes();
  shape.sources.reserve(srcs.size());
  for (const Rank r : srcs) shape.sources.push_back(frame.position_of(r));
  std::sort(shape.sources.begin(), shape.sources.end());
  return shape;
}

}  // namespace

AdaptiveRepositioning::AdaptiveRepositioning(AlgorithmPtr base)
    : base_(std::move(base)),
      repositioning_(make_repositioning(base_)),
      name_("Adaptive" + repositioning_->name()) {}

bool AdaptiveRepositioning::should_reposition(const Frame& frame) const {
  const int s = static_cast<int>(frame.sources().size());
  if (s == 0 || frame.size() == 1) return false;
  const std::vector<Rank> targets = ideal_targets_for(*base_, frame, s);

  std::vector<Rank> movers;
  std::set_difference(frame.sources().begin(), frame.sources().end(),
                      targets.begin(), targets.end(),
                      std::back_inserter(movers));
  if (movers.empty()) return false;  // already on the ideal positions

  const plan::CostModel& model = decision_model();
  const std::string base_name = base_->name();
  const double input_cost =
      model.predict_us(base_name, shape_for(frame, frame.sources()));
  const double ideal_cost =
      model.predict_us(base_name, shape_for(frame, targets));
  // The permutation is one parallel round of original-sized messages.
  const double permute_cost = model.permute_round_us(frame.message_bytes());
  return ideal_cost + permute_cost < input_cost;
}

ProgramFactory AdaptiveRepositioning::prepare(const Frame& frame) const {
  return should_reposition(frame) ? repositioning_->prepare(frame)
                                  : base_->prepare(frame);
}

AlgorithmPtr make_adaptive_repositioning(AlgorithmPtr base) {
  return std::make_shared<const AdaptiveRepositioning>(std::move(base));
}

}  // namespace spb::stop
