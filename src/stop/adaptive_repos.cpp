#include "stop/adaptive_repos.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>
#include <vector>

#include "coll/halving.h"
#include "common/check.h"
#include "stop/br_xy.h"
#include "stop/reposition.h"

namespace spb::stop {

namespace {

// Abstract cost model for the decision: iterations are priced as a fixed
// per-iteration overhead plus the largest message moved in that iteration
// (the paper's two objectives, inverted into costs).  The constants are
// ratios, not calibrated times — only the comparison ideal-vs-input
// matters, and bench/ext_adaptive validates the decisions end to end.
constexpr double kIterOverhead = 45.0;   // ~send+recv software, us
constexpr double kPerByte = 1.0 / 160.;  // ~wire byte cost, us

/// Runs one halving structure over per-position byte loads and returns the
/// modelled time.  `bytes` is indexed by position (0 = holds nothing) and
/// is updated to the post-broadcast loads.
double halving_cost(const std::vector<char>& active,
                    std::vector<double>& bytes) {
  const coll::HalvingSchedule sched = coll::HalvingSchedule::compute(active);
  double total = 0;
  for (int iter = 0; iter < sched.iterations(); ++iter) {
    const std::vector<double> snapshot = bytes;
    double worst = 0;
    bool any = false;
    for (int pos = 0; pos < sched.size(); ++pos) {
      for (const coll::Action& a : sched.actions(iter, pos)) {
        if (a.type != coll::Action::Type::kRecv) continue;
        any = true;
        worst = std::max(worst,
                         snapshot[static_cast<std::size_t>(a.peer)]);
        bytes[static_cast<std::size_t>(pos)] +=
            snapshot[static_cast<std::size_t>(a.peer)];
      }
    }
    if (any) total += kIterOverhead + worst * kPerByte;
  }
  return total;
}

/// Modelled broadcast time of `base` on this frame with sources `srcs`.
double predict_cost(const Algorithm& base, const Frame& frame,
                    const std::vector<Rank>& srcs) {
  const double L = static_cast<double>(frame.message_bytes());
  const std::string base_name = base.name();

  if (base_name == "Br_Lin") {
    std::vector<char> active(static_cast<std::size_t>(frame.size()), 0);
    std::vector<double> bytes(static_cast<std::size_t>(frame.size()), 0);
    for (const Rank r : srcs) {
      const int pos = frame.position_of(r);
      active[static_cast<std::size_t>(pos)] = 1;
      bytes[static_cast<std::size_t>(pos)] = L;
    }
    return halving_cost(active, bytes);
  }

  // Br_xy_*: phase A within every line of the first dimension (lines run
  // concurrently: the iteration costs take a max across lines because the
  // model charges the slowest), then phase B across lines.
  const Frame sub = Frame::sub(*frame.ranks(), frame.rows(), frame.cols(),
                               srcs, frame.message_bytes(), frame.hints());
  const auto& xy = dynamic_cast<const BrXy&>(base);
  const bool rows_first = xy.rows_first(sub);
  const int lines_a = rows_first ? frame.rows() : frame.cols();
  const int len_a = rows_first ? frame.cols() : frame.rows();

  // Phase A: per-line halving; track each line's final per-member load.
  double phase_a = 0;
  std::vector<double> line_bytes(static_cast<std::size_t>(lines_a), 0);
  for (int line = 0; line < lines_a; ++line) {
    std::vector<char> active(static_cast<std::size_t>(len_a), 0);
    std::vector<double> bytes(static_cast<std::size_t>(len_a), 0);
    for (const Rank r : srcs) {
      const int pos = frame.position_of(r);
      const int r_line = rows_first ? pos / frame.cols() : pos % frame.cols();
      const int r_pos = rows_first ? pos % frame.cols() : pos / frame.cols();
      if (r_line != line) continue;
      active[static_cast<std::size_t>(r_pos)] = 1;
      bytes[static_cast<std::size_t>(r_pos)] = L;
    }
    const double c = halving_cost(active, bytes);
    phase_a = std::max(phase_a, c);
    line_bytes[static_cast<std::size_t>(line)] =
        *std::max_element(bytes.begin(), bytes.end());
  }

  // Phase B: every phase-A line with data is one active position.
  std::vector<char> active_b(static_cast<std::size_t>(lines_a), 0);
  for (int line = 0; line < lines_a; ++line)
    active_b[static_cast<std::size_t>(line)] =
        line_bytes[static_cast<std::size_t>(line)] > 0 ? 1 : 0;
  const double phase_b = halving_cost(active_b, line_bytes);
  return phase_a + phase_b;
}

}  // namespace

AdaptiveRepositioning::AdaptiveRepositioning(AlgorithmPtr base)
    : base_(std::move(base)),
      repositioning_(make_repositioning(base_)),
      name_("Adaptive" + repositioning_->name()) {}

bool AdaptiveRepositioning::should_reposition(const Frame& frame) const {
  const int s = static_cast<int>(frame.sources().size());
  if (s == 0 || frame.size() == 1) return false;
  const std::vector<Rank> targets = ideal_targets_for(*base_, frame, s);

  std::vector<Rank> movers;
  std::set_difference(frame.sources().begin(), frame.sources().end(),
                      targets.begin(), targets.end(),
                      std::back_inserter(movers));
  if (movers.empty()) return false;  // already on the ideal positions

  const double input_cost = predict_cost(*base_, frame, frame.sources());
  const double ideal_cost = predict_cost(*base_, frame, targets);
  // The permutation is one parallel round of original-sized messages.
  const double permute_cost =
      kIterOverhead + static_cast<double>(frame.message_bytes()) * kPerByte;
  return ideal_cost + permute_cost < input_cost;
}

ProgramFactory AdaptiveRepositioning::prepare(const Frame& frame) const {
  return should_reposition(frame) ? repositioning_->prepare(frame)
                                  : base_->prepare(frame);
}

AlgorithmPtr make_adaptive_repositioning(AlgorithmPtr base) {
  return std::make_shared<const AdaptiveRepositioning>(std::move(base));
}

}  // namespace spb::stop
