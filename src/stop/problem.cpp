#include "stop/problem.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace spb::stop {

Bytes Problem::bytes_of_source(std::size_t source_index) const {
  SPB_REQUIRE(source_index < sources.size(), "source index out of range");
  if (per_source_bytes.empty()) return message_bytes;
  return per_source_bytes[source_index];
}

void Problem::validate() const {
  SPB_REQUIRE(machine.p >= 1, "machine must have at least one processor");
  SPB_REQUIRE(machine.rows * machine.cols == machine.p,
              "logical grid " << machine.rows << "x" << machine.cols
                              << " does not cover p=" << machine.p);
  SPB_REQUIRE(!sources.empty(), "need at least one source");
  SPB_REQUIRE(static_cast<int>(sources.size()) <= machine.p,
              "more sources than processors");
  SPB_REQUIRE(std::is_sorted(sources.begin(), sources.end()),
              "sources must be sorted");
  SPB_REQUIRE(
      std::adjacent_find(sources.begin(), sources.end()) == sources.end(),
      "sources must be distinct");
  SPB_REQUIRE(sources.front() >= 0 && sources.back() < machine.p,
              "source rank out of range");
  SPB_REQUIRE(message_bytes > 0, "message length must be positive");
  if (!per_source_bytes.empty()) {
    SPB_REQUIRE(per_source_bytes.size() == sources.size(),
                "per-source lengths must align with the source list");
    for (const Bytes b : per_source_bytes)
      SPB_REQUIRE(b > 0, "per-source message length must be positive");
  }
}

Problem make_problem(machine::MachineConfig machine, dist::Kind kind, int s,
                     Bytes message_bytes, std::uint64_t seed) {
  const dist::Grid grid{machine.rows, machine.cols};
  Problem pb;
  pb.machine = std::move(machine);
  pb.sources = dist::generate(kind, grid, s, seed);
  pb.message_bytes = message_bytes;
  pb.validate();
  return pb;
}

Problem make_problem(machine::MachineConfig machine,
                     std::vector<Rank> sources, Bytes message_bytes) {
  std::sort(sources.begin(), sources.end());
  Problem pb;
  pb.machine = std::move(machine);
  pb.sources = std::move(sources);
  pb.message_bytes = message_bytes;
  pb.validate();
  return pb;
}

Problem with_varied_lengths(Problem pb, double spread, std::uint64_t seed) {
  SPB_REQUIRE(spread >= 0 && spread < 1, "spread must be in [0, 1)");
  Rng rng(seed);
  pb.per_source_bytes.clear();
  pb.per_source_bytes.reserve(pb.sources.size());
  const double base = static_cast<double>(pb.message_bytes);
  for (std::size_t i = 0; i < pb.sources.size(); ++i) {
    const double factor = 1.0 + spread * (2.0 * rng.next_double() - 1.0);
    pb.per_source_bytes.push_back(
        std::max<Bytes>(1, static_cast<Bytes>(base * factor)));
  }
  pb.validate();
  return pb;
}

}  // namespace spb::stop
