// Partitioning algorithms (paper Section 3): split the machine into two
// groups G1, G2 with |G1| <= |G2| (independent of the sources), reposition
// the sources so each group gets its proportional share s_i ~ s * p_i / p
// laid out ideally for the base algorithm, broadcast inside both groups
// simultaneously, and finally have every G1 processor exchange its
// (complete G1) data with an assigned G2 processor.
//
// The final exchange moves s1*L and s2*L byte messages across the seam
// between the groups — the cost the paper found to dominate and the reason
// "the partitioning approach hardly ever gives a better performance than
// repositioning alone" on the Paragon.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class Partitioning final : public Algorithm {
 public:
  /// `base` must be one of Br_Lin / Br_xy_source / Br_xy_dim.
  explicit Partitioning(AlgorithmPtr base);

  std::string name() const override { return name_; }
  bool mpi_flavored() const override { return base_->mpi_flavored(); }
  ProgramFactory prepare(const Frame& frame) const override;

 private:
  AlgorithmPtr base_;
  std::string name_;
};

/// How a frame is split in two: along the longer grid dimension, G1 taking
/// the first half of its lines.  Exposed for tests.
struct PartitionSplit {
  /// Row-major rank lists and grid shapes of the two groups.
  std::vector<Rank> g1, g2;
  int rows1 = 1, cols1 = 1;
  int rows2 = 1, cols2 = 1;

  static PartitionSplit compute(const Frame& frame);
};

/// The proportional source share of G1: round(s * p1 / p), clamped so both
/// groups can hold their share.  Exposed for tests.
int partition_share(int s, int p1, int p2);

}  // namespace spb::stop
