// Algorithm Br_Lin (paper Section 2): the frame's ranks form a (logical)
// linear array; recursive halving with message combining broadcasts all
// sources in ceil(log2 p) iterations.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class BrLin final : public Algorithm {
 public:
  std::string name() const override { return "Br_Lin"; }
  ProgramFactory prepare(const Frame& frame) const override;
};

/// The paper's aside made concrete: "When the underlying architecture is
/// a mesh, the indexing may correspond to a snake-like row-major
/// indexing" — the same halving pattern over the boustrophedon order, so
/// consecutive linear positions are always physical mesh neighbours.
/// bench/ablation_snake compares it against the plain row-major order.
class BrLinSnake final : public Algorithm {
 public:
  std::string name() const override { return "Br_Lin_snake"; }
  ProgramFactory prepare(const Frame& frame) const override;
};

AlgorithmPtr make_br_lin_snake();

}  // namespace spb::stop
