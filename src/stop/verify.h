// Broadcast result verification: after a run, every rank must hold exactly
// one chunk per source, each of the right size — nothing missing, nothing
// extra, no size drift.
#pragma once

#include <string>
#include <vector>

#include "mp/payload.h"
#include "stop/problem.h"

namespace spb::stop {

struct VerifyResult {
  bool ok = true;
  /// Empty when ok; otherwise a description of the first few mismatches.
  std::string error;
};

/// The payload every rank must end with.
mp::Payload expected_payload(const Problem& pb);

/// Checks all p final payloads against expected_payload().
VerifyResult verify_broadcast(const Problem& pb,
                              const std::vector<mp::Payload>& final_payloads);

}  // namespace spb::stop
