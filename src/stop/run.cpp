#include "stop/run.h"

#include <algorithm>

#include "common/check.h"
#include "stop/verify.h"

namespace spb::stop {

RunResult run(const Algorithm& algorithm, const Problem& problem,
              RunOptions options) {
  problem.validate();
  const Frame frame = Frame::whole(problem);
  const ProgramFactory factory = algorithm.prepare(frame);

  mp::Runtime rt = problem.machine.make_runtime(algorithm.mpi_flavored());
  SPB_CHECK(rt.size() == problem.p());
  if (options.trace) rt.enable_trace();
  if (options.record_schedule) rt.enable_schedule_recording();
  RunResult result;
  if (options.link_stats) {
    result.link_usage =
        net::LinkUsageProbe(problem.machine.topology->link_space());
    rt.set_link_probe(&result.link_usage);
  }
  if (options.faults.any()) {
    rt.set_fault_plan(std::make_shared<const fault::FaultPlan>(
        options.faults, options.fault_seed,
        problem.machine.topology->link_space(), problem.p()));
  }
  if (options.sim_threads != 0) rt.enable_parallel(options.sim_threads);

  result.final_payloads.assign(static_cast<std::size_t>(problem.p()),
                               mp::Payload{});
  for (std::size_t i = 0; i < problem.sources.size(); ++i) {
    const Rank s = problem.sources[i];
    result.final_payloads[static_cast<std::size_t>(s)] =
        mp::Payload::original(s, problem.bytes_of_source(i));
  }

  for (Rank r = 0; r < problem.p(); ++r)
    rt.spawn(r, factory(rt.comm(r),
                        result.final_payloads[static_cast<std::size_t>(r)]));

  result.outcome = rt.run();
  result.time_us = result.outcome.makespan_us;
  if (options.trace) result.trace = rt.trace();
  if (options.record_schedule) result.schedule = rt.schedule();

  if (options.verify) {
    const VerifyResult v = verify_broadcast(problem, result.final_payloads);
    SPB_CHECK_MSG(v.ok, "broadcast verification failed for "
                            << algorithm.name() << " on "
                            << problem.machine.name << ": " << v.error);
  }
  return result;
}

}  // namespace spb::stop
