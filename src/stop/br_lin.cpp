#include "stop/br_lin.h"

#include <memory>

#include "coll/engine.h"
#include "coll/halving.h"

namespace spb::stop {

ProgramFactory BrLin::prepare(const Frame& frame) const {
  auto sched = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(frame.active_flags()));
  auto seq = frame.ranks();
  return [frame, seq, sched](mp::Comm& comm, mp::Payload& data) {
    return coll::run_halving(comm, seq, frame.position_of(comm.rank()),
                             sched, data,
                             coll::HalvingOptions{.phase = "halving"});
  };
}

ProgramFactory BrLinSnake::prepare(const Frame& frame) const {
  // Boustrophedon order over the frame's grid: odd rows run right to
  // left, so walking the sequence never jumps across the mesh.
  const int rows = frame.rows();
  const int cols = frame.cols();
  auto seq = std::make_shared<std::vector<Rank>>();
  seq->reserve(static_cast<std::size_t>(frame.size()));
  std::vector<int> pos_of_rank(static_cast<std::size_t>(frame.size()), -1);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int col = r % 2 == 0 ? c : cols - 1 - c;
      const Rank rank = frame.rank_at(r * cols + col);
      pos_of_rank[static_cast<std::size_t>(r * cols + col)] =
          static_cast<int>(seq->size());
      seq->push_back(rank);
    }
  }
  std::vector<char> active(static_cast<std::size_t>(frame.size()), 0);
  for (const Rank s : frame.sources()) {
    active[static_cast<std::size_t>(
        pos_of_rank[static_cast<std::size_t>(frame.position_of(s))])] = 1;
  }
  auto sched = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(active));
  auto positions = std::make_shared<const std::vector<int>>(
      std::move(pos_of_rank));
  auto const_seq = std::shared_ptr<const std::vector<Rank>>(seq);
  return [frame, const_seq, sched, positions](mp::Comm& comm,
                                              mp::Payload& data) {
    const int my_pos = (*positions)[static_cast<std::size_t>(
        frame.position_of(comm.rank()))];
    return coll::run_halving(comm, const_seq, my_pos, sched, data,
                             coll::HalvingOptions{.phase = "halving"});
  };
}

AlgorithmPtr make_br_lin_snake() {
  return std::make_shared<const BrLinSnake>();
}

}  // namespace spb::stop
