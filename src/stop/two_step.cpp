#include "stop/two_step.h"

#include <memory>
#include <vector>

#include "coll/engine.h"
#include "coll/gather.h"
#include "coll/halving.h"
#include "coll/pipeline.h"

namespace spb::stop {

namespace {

// Store-and-forward variant: the broadcast is the halving pattern with only
// the root active — the paper: "Algorithm 2-Step uses an one-to-all
// implementation which ... applies the same communication pattern used in
// Algorithm Br_Lin".  Forwarding a broadcast costs no combining.
sim::Task two_step_program(
    mp::Comm& comm, mp::Payload& data, Rank root,
    std::shared_ptr<const std::vector<Rank>> senders,
    std::shared_ptr<const std::vector<Rank>> seq, int my_pos,
    std::shared_ptr<const coll::HalvingSchedule> bcast) {
  comm.begin_phase("gather");
  co_await coll::gather_to_root(comm, root, senders, data);
  comm.end_phase();
  co_await coll::run_halving(comm, seq, my_pos, bcast, data,
                             coll::HalvingOptions{.mark_iterations = true,
                                                  .combine_cost = false,
                                                  .phase = "bcast"});
}

// Pipelined variant (vendor collective): same gather, segmented broadcast.
sim::Task two_step_pipelined_program(
    mp::Comm& comm, mp::Payload& data, Rank root,
    std::shared_ptr<const std::vector<Rank>> senders,
    std::shared_ptr<const std::vector<Rank>> seq, int my_pos,
    std::shared_ptr<const coll::BcastTree> tree, Bytes payload_bytes,
    std::size_t chunks, Bytes segment_bytes) {
  comm.begin_phase("gather");
  co_await coll::gather_to_root(comm, root, senders, data);
  comm.end_phase();
  const Bytes total_wire = comm.wire_bytes_for(payload_bytes, chunks);
  comm.begin_phase("bcast");
  co_await coll::pipelined_bcast(comm, seq, my_pos, tree, data, total_wire,
                                 segment_bytes);
  comm.end_phase();
}

}  // namespace

ProgramFactory TwoStep::prepare(const Frame& frame) const {
  const Rank root = frame.rank_at(0);
  auto senders = std::make_shared<const std::vector<Rank>>(frame.sources());
  auto seq = frame.ranks();
  const Bytes segment = frame.hints().bcast_segment_bytes;

  if (segment > 0 && !frame.sources().empty()) {
    auto tree = std::make_shared<const coll::BcastTree>(
        coll::BcastTree::binary(frame.size(), 0));
    const Bytes payload_bytes =
        frame.message_bytes() * frame.sources().size();
    const std::size_t chunks = frame.sources().size();
    return [frame, root, senders, seq, tree, payload_bytes, chunks, segment](
               mp::Comm& comm, mp::Payload& data) {
      return two_step_pipelined_program(comm, data, root, senders, seq,
                                        frame.position_of(comm.rank()), tree,
                                        payload_bytes, chunks, segment);
    };
  }

  std::vector<char> only_root(static_cast<std::size_t>(frame.size()), 0);
  if (!frame.sources().empty()) only_root[0] = 1;
  auto bcast = std::make_shared<const coll::HalvingSchedule>(
      coll::HalvingSchedule::compute(only_root));

  return [frame, root, senders, seq, bcast](mp::Comm& comm,
                                            mp::Payload& data) {
    return two_step_program(comm, data, root, senders, seq,
                            frame.position_of(comm.rank()), bcast);
  };
}

}  // namespace spb::stop
