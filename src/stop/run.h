// The experiment harness: builds a runtime for the problem's machine,
// spawns the algorithm's rank programs, runs the simulation, verifies the
// broadcast, and returns the timing plus the paper's Figure-2 metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "mp/payload.h"
#include "mp/runtime.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

namespace spb::stop {

struct RunResult {
  /// Completion time of the slowest rank, simulated microseconds — the
  /// quantity every figure of the paper plots.
  SimTime time_us = 0;
  mp::RunOutcome outcome;
  /// Final payload of every rank (small: symbolic chunks only).
  std::vector<mp::Payload> final_payloads;
  /// Filled when RunOptions::trace is set (see mp/trace.h).
  mp::Trace trace;
  /// Filled when RunOptions::record_schedule is set (see mp/schedule.h).
  mp::Schedule schedule;
};

struct RunOptions {
  /// Verify every rank's result and throw CheckError on corruption
  /// (always on in tests and benches; switchable for micro-profiling).
  bool verify = true;
  /// Record a full communication trace into RunResult::trace.
  bool trace = false;
  /// Record the symbolic send/recv schedule into RunResult::schedule.
  /// Off by default: recording allocates per operation, and timed bench
  /// runs must not pay that overhead (bench/util statically asserts the
  /// default stays off).
  bool record_schedule = false;
  /// Fault injection: when any knob of the spec is set, a deterministic
  /// FaultPlan seeded with `fault_seed` is built for the problem's machine
  /// and installed on the runtime.  The default spec is faults-off and
  /// must stay that way (bench/util statically asserts it) so the fault
  /// hooks cost nothing in timed runs.
  fault::FaultSpec faults{};
  std::uint64_t fault_seed = 1;
};

RunResult run(const Algorithm& algorithm, const Problem& problem,
              RunOptions options = {});

/// Convenience: milliseconds, matching the paper's plots.
inline double run_ms(const Algorithm& algorithm, const Problem& problem) {
  return run(algorithm, problem).time_us / 1000.0;
}

}  // namespace spb::stop
