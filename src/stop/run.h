// The experiment harness: builds a runtime for the problem's machine,
// spawns the algorithm's rank programs, runs the simulation, verifies the
// broadcast, and returns the timing plus the paper's Figure-2 metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "mp/payload.h"
#include "mp/runtime.h"
#include "net/network.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

namespace spb::stop {

struct RunResult {
  /// Completion time of the slowest rank, simulated microseconds — the
  /// quantity every figure of the paper plots.
  SimTime time_us = 0;
  mp::RunOutcome outcome;
  /// Final payload of every rank (small: symbolic chunks only).
  std::vector<mp::Payload> final_payloads;
  /// Filled when RunOptions::trace is set (see mp/trace.h).
  mp::Trace trace;
  /// Filled when RunOptions::record_schedule is set (see mp/schedule.h).
  mp::Schedule schedule;
  /// Filled when RunOptions::link_stats is set: per-link busy/queued time
  /// over the machine's link space (see net::LinkUsageProbe).
  net::LinkUsageProbe link_usage;
};

struct RunOptions {
  /// Verify every rank's result and throw CheckError on corruption
  /// (always on in tests and benches; switchable for micro-profiling).
  bool verify = true;
  /// Record a full communication trace into RunResult::trace.
  bool trace = false;
  /// Record the symbolic send/recv schedule into RunResult::schedule.
  /// Off by default: recording allocates per operation, and timed bench
  /// runs must not pay that overhead (bench/util statically asserts the
  /// default stays off).
  bool record_schedule = false;
  /// Fault injection: when any knob of the spec is set, a deterministic
  /// FaultPlan seeded with `fault_seed` is built for the problem's machine
  /// and installed on the runtime.  The default spec is faults-off and
  /// must stay that way (bench/util statically asserts it) so the fault
  /// hooks cost nothing in timed runs.
  fault::FaultSpec faults{};
  std::uint64_t fault_seed = 1;
  /// Accumulate per-link busy/queued time into RunResult::link_usage.
  /// Off by default — the network hot path must stay probe-free in timed
  /// benches (bench/util statically asserts this).
  bool link_stats = false;
  /// Worker threads for the sharded conservative-window simulation engine
  /// (see mp::Runtime::enable_parallel).  0 — the default, statically
  /// asserted by bench/util — keeps the classic serial loop; >= 1 requests
  /// the sharded engine with that worker cap; -1 requests it with an
  /// auto-sized pool (host core count, clamped to the shard count, with
  /// per-window engagement driven by live window occupancy).  The outcome
  /// is byte-identical for every non-zero value, and the engine falls back
  /// to serial automatically when tracing or schedule recording is on,
  /// p < 2, or the lookahead is zero.
  int sim_threads = 0;
};

/// Fluent alternative to aggregate-initializing RunOptions — reads better
/// when several observers are switched on:
///
///   stop::run(alg, pb, stop::RunConfig{}.trace().link_stats());
///   stop::run(alg, pb, stop::RunConfig{}.no_verify().faults(spec, 7));
///
/// Every method returns *this by value semantics-friendly reference, and
/// the implicit conversion lowers to the RunOptions aggregate, so both
/// styles feed the same run().  Constexpr throughout: bench/util statically
/// asserts RunConfig{} stays bit-identical to RunOptions{} (zero-cost
/// defaults).
class RunConfig {
 public:
  constexpr RunConfig() = default;

  constexpr RunConfig& verify(bool on = true) {
    opts_.verify = on;
    return *this;
  }
  constexpr RunConfig& no_verify() { return verify(false); }
  constexpr RunConfig& trace(bool on = true) {
    opts_.trace = on;
    return *this;
  }
  constexpr RunConfig& record_schedule(bool on = true) {
    opts_.record_schedule = on;
    return *this;
  }
  constexpr RunConfig& link_stats(bool on = true) {
    opts_.link_stats = on;
    return *this;
  }
  constexpr RunConfig& faults(const fault::FaultSpec& spec,
                              std::uint64_t seed = 1) {
    opts_.faults = spec;
    opts_.fault_seed = seed;
    return *this;
  }
  constexpr RunConfig& sim_threads(int threads) {
    opts_.sim_threads = threads;
    return *this;
  }

  constexpr const RunOptions& options() const { return opts_; }
  // NOLINTNEXTLINE(google-explicit-constructor): lowering is the point
  constexpr operator RunOptions() const { return opts_; }

 private:
  RunOptions opts_{};
};

RunResult run(const Algorithm& algorithm, const Problem& problem,
              RunOptions options = {});

/// Convenience: milliseconds, matching the paper's plots.
inline double run_ms(const Algorithm& algorithm, const Problem& problem) {
  return run(algorithm, problem).time_us / 1000.0;
}

}  // namespace spb::stop
