#include "stop/pers_alltoall.h"

#include <memory>
#include <vector>

#include "coll/alltoall.h"

namespace spb::stop {

ProgramFactory PersAlltoAll::prepare(const Frame& frame) const {
  auto seq = frame.ranks();
  auto is_source =
      std::make_shared<const std::vector<char>>(frame.active_flags());
  return [frame, seq, is_source](mp::Comm& comm, mp::Payload& data) {
    return coll::personalized_exchange(
        comm, seq, frame.position_of(comm.rank()), is_source, data);
  };
}

}  // namespace spb::stop
