#include "stop/pers_alltoall.h"

#include <memory>
#include <vector>

#include "coll/alltoall.h"

namespace spb::stop {

namespace {

sim::Task pers_program(mp::Comm& comm, mp::Payload& data,
                       std::shared_ptr<const std::vector<Rank>> seq,
                       int my_pos,
                       std::shared_ptr<const std::vector<char>> is_source) {
  comm.begin_phase("exchange");
  co_await coll::personalized_exchange(comm, seq, my_pos, is_source, data);
  comm.end_phase();
}

}  // namespace

ProgramFactory PersAlltoAll::prepare(const Frame& frame) const {
  auto seq = frame.ranks();
  auto is_source =
      std::make_shared<const std::vector<char>>(frame.active_flags());
  return [frame, seq, is_source](mp::Comm& comm, mp::Payload& data) {
    return pers_program(comm, data, seq, frame.position_of(comm.rank()),
                        is_source);
  };
}

}  // namespace spb::stop
