#include "stop/partition.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "stop/reposition.h"

namespace spb::stop {

PartitionSplit PartitionSplit::compute(const Frame& frame) {
  const int rows = frame.rows();
  const int cols = frame.cols();
  SPB_REQUIRE(rows * cols >= 2, "cannot partition a single processor");
  PartitionSplit out;
  const auto rank_at = [&frame, cols](int row, int col) {
    return frame.rank_at(row * cols + col);
  };
  if (cols >= rows) {
    // Split columns: G1 = left floor(c/2) columns.
    const int c1 = cols / 2;
    out.rows1 = rows;
    out.cols1 = c1;
    out.rows2 = rows;
    out.cols2 = cols - c1;
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < c1; ++c) out.g1.push_back(rank_at(r, c));
    for (int r = 0; r < rows; ++r)
      for (int c = c1; c < cols; ++c) out.g2.push_back(rank_at(r, c));
  } else {
    // Split rows: G1 = top floor(r/2) rows.
    const int r1 = rows / 2;
    out.rows1 = r1;
    out.cols1 = cols;
    out.rows2 = rows - r1;
    out.cols2 = cols;
    for (int r = 0; r < r1; ++r)
      for (int c = 0; c < cols; ++c) out.g1.push_back(rank_at(r, c));
    for (int r = r1; r < rows; ++r)
      for (int c = 0; c < cols; ++c) out.g2.push_back(rank_at(r, c));
  }
  SPB_CHECK(out.g1.size() <= out.g2.size());
  SPB_CHECK(static_cast<int>(out.g1.size() + out.g2.size()) == frame.size());
  return out;
}

int partition_share(int s, int p1, int p2) {
  SPB_REQUIRE(s >= 0 && p1 >= 1 && p2 >= 1, "invalid partition share input");
  const int p = p1 + p2;
  int s1 = static_cast<int>((static_cast<long long>(s) * p1 + p / 2) / p);
  s1 = std::min(s1, p1);        // G1 must be able to hold its share
  s1 = std::max(s1, s - p2);    // and G2 must be able to hold the rest
  s1 = std::max(s1, 0);
  s1 = std::min(s1, s);
  return s1;
}

namespace {

/// Everything the per-rank program needs, shared across ranks.
struct PartPlan {
  PermutationPlan permutation;
  /// Per-group base program factories (positions are group-frame local).
  std::shared_ptr<const ProgramFactory> base1, base2;
  /// Final exchange: sorted parallel arrays rank -> peers.
  std::vector<Rank> rank_index;                  // all frame ranks, sorted
  std::vector<std::vector<Rank>> send_peers;     // by rank_index position
  std::vector<std::vector<Rank>> recv_peers;
  std::vector<char> in_g1;                       // by rank_index position

  int index_of(Rank r) const {
    const auto it =
        std::lower_bound(rank_index.begin(), rank_index.end(), r);
    SPB_CHECK(it != rank_index.end() && *it == r);
    return static_cast<int>(it - rank_index.begin());
  }
};

sim::Task part_program(mp::Comm& comm, mp::Payload& data,
                       std::shared_ptr<const PartPlan> plan) {
  const Rank me = comm.rank();

  // Phase 1: repositioning permutation.
  comm.begin_phase("reposition");
  const Rank to = plan->permutation.send_target(me);
  if (to != kNoRank) {
    co_await comm.send(to, data, mp::tags::kPermute);
    data.clear();
  }
  const Rank from = plan->permutation.recv_origin(me);
  if (from != kNoRank) {
    mp::Message m = co_await comm.recv(from, mp::tags::kPermute);
    SPB_CHECK_MSG(data.empty(),
                  "partition target rank " << me << " already holds data");
    data = std::move(m.payload);
  }
  comm.mark_iteration();
  comm.end_phase();

  // Phase 2: broadcast inside my group.
  const int idx = plan->index_of(me);
  const ProgramFactory& base =
      plan->in_g1[static_cast<std::size_t>(idx)] ? *plan->base1
                                                 : *plan->base2;
  co_await base(comm, data);

  // Phase 3: inter-group exchange.  Sends first (eager), then receives.
  comm.begin_phase("exchange");
  for (const Rank peer : plan->send_peers[static_cast<std::size_t>(idx)])
    co_await comm.send(peer, data, mp::tags::kExchange);
  for (const Rank peer : plan->recv_peers[static_cast<std::size_t>(idx)]) {
    mp::Message m = co_await comm.recv(peer, mp::tags::kExchange);
    co_await comm.merge(data, std::move(m.payload));
  }
  comm.mark_iteration();
  comm.end_phase();
}

}  // namespace

Partitioning::Partitioning(AlgorithmPtr base) : base_(std::move(base)) {
  const std::string base_name = base_->name();
  SPB_REQUIRE(base_name.rfind("Br_", 0) == 0,
              "partitioning wraps only the Br_* algorithms, got '"
                  << base_name << "'");
  name_ = "Part_" + base_name.substr(3);
}

ProgramFactory Partitioning::prepare(const Frame& frame) const {
  const PartitionSplit split = PartitionSplit::compute(frame);
  const int p1 = static_cast<int>(split.g1.size());
  const int p2 = static_cast<int>(split.g2.size());
  const int s = static_cast<int>(frame.sources().size());
  const int s1 = partition_share(s, p1, p2);
  const int s2 = s - s1;

  // Ideal targets inside each group, then one global permutation.
  const Frame shape1 = Frame::sub(split.g1, split.rows1, split.cols1, {},
                                  frame.message_bytes(), frame.hints());
  const Frame shape2 = Frame::sub(split.g2, split.rows2, split.cols2, {},
                                  frame.message_bytes(), frame.hints());
  std::vector<Rank> targets1 = ideal_targets_for(*base_, shape1, s1);
  std::vector<Rank> targets2 = ideal_targets_for(*base_, shape2, s2);

  std::vector<Rank> all_targets;
  all_targets.reserve(targets1.size() + targets2.size());
  all_targets.insert(all_targets.end(), targets1.begin(), targets1.end());
  all_targets.insert(all_targets.end(), targets2.begin(), targets2.end());
  std::sort(all_targets.begin(), all_targets.end());

  auto plan = std::make_shared<PartPlan>();
  plan->permutation =
      PermutationPlan::match(frame.sources(), all_targets);

  const Frame group1 =
      Frame::sub(split.g1, split.rows1, split.cols1, std::move(targets1),
                 frame.message_bytes(), frame.hints());
  const Frame group2 =
      Frame::sub(split.g2, split.rows2, split.cols2, std::move(targets2),
                 frame.message_bytes(), frame.hints());
  plan->base1 =
      std::make_shared<const ProgramFactory>(base_->prepare(group1));
  plan->base2 =
      std::make_shared<const ProgramFactory>(base_->prepare(group2));

  // Final exchange assignment: G1[k] <-> G2[k] for k < p1; every surplus
  // G2 rank receives a one-way copy from its G1 partner (its own group's
  // data reached it in phase 2, only G1's is missing).
  plan->rank_index = *frame.ranks();
  std::sort(plan->rank_index.begin(), plan->rank_index.end());
  const std::size_t n = plan->rank_index.size();
  plan->send_peers.assign(n, {});
  plan->recv_peers.assign(n, {});
  plan->in_g1.assign(n, 0);
  for (const Rank r : split.g1)
    plan->in_g1[static_cast<std::size_t>(plan->index_of(r))] = 1;

  for (int k = 0; k < p2; ++k) {
    const Rank a = split.g1[static_cast<std::size_t>(k % p1)];
    const Rank b = split.g2[static_cast<std::size_t>(k)];
    const auto ia = static_cast<std::size_t>(plan->index_of(a));
    const auto ib = static_cast<std::size_t>(plan->index_of(b));
    // G1 -> G2 always (k < p1 pairs and surplus copies alike).
    if (s1 > 0) {
      plan->send_peers[ia].push_back(b);
      plan->recv_peers[ib].push_back(a);
    }
    // G2 -> G1 only for the mutual pairs.
    if (k < p1 && s2 > 0) {
      plan->send_peers[ib].push_back(a);
      plan->recv_peers[ia].push_back(b);
    }
  }

  return [plan](mp::Comm& comm, mp::Payload& data) {
    return part_program(comm, data, plan);
  };
}

}  // namespace spb::stop
