#include "stop/verify.h"

#include <sstream>

#include "common/check.h"

namespace spb::stop {

mp::Payload expected_payload(const Problem& pb) {
  std::vector<mp::Chunk> chunks;
  chunks.reserve(pb.sources.size());
  for (std::size_t i = 0; i < pb.sources.size(); ++i)
    chunks.push_back({pb.sources[i], pb.bytes_of_source(i)});
  return mp::Payload::of(std::move(chunks));
}

VerifyResult verify_broadcast(
    const Problem& pb, const std::vector<mp::Payload>& final_payloads) {
  SPB_REQUIRE(static_cast<int>(final_payloads.size()) == pb.p(),
              "verification needs one payload per rank");
  const mp::Payload want = expected_payload(pb);
  VerifyResult out;
  std::ostringstream os;
  int bad = 0;
  for (Rank r = 0; r < pb.p(); ++r) {
    const mp::Payload& got = final_payloads[static_cast<std::size_t>(r)];
    if (got == want) continue;
    ++bad;
    if (bad <= 4) {
      os << "\n  rank " << r << ": expected " << want.to_string() << ", got "
         << got.to_string();
    }
  }
  if (bad > 0) {
    out.ok = false;
    std::ostringstream head;
    head << bad << " of " << pb.p() << " ranks hold a wrong result";
    out.error = head.str() + os.str() +
                (bad > 4 ? "\n  ... and more" : "");
  }
  return out;
}

}  // namespace spb::stop
