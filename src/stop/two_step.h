// Algorithm 2-Step (paper Section 2): an s-to-one gather at the frame's
// first rank followed by a one-to-all broadcast (the Br_Lin halving pattern
// with a single active position).  The gather is the naive direct pattern
// whose hot spot at P0 the paper blames for 2-Step's poor Paragon showing.
//
// MPI_AllGather is the same algorithm on the heavier portable MPI layer.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class TwoStep final : public Algorithm {
 public:
  explicit TwoStep(bool mpi) : mpi_(mpi) {}
  std::string name() const override {
    return mpi_ ? "MPI_AllGather" : "2-Step";
  }
  bool mpi_flavored() const override { return mpi_; }
  ProgramFactory prepare(const Frame& frame) const override;

 private:
  bool mpi_;
};

}  // namespace spb::stop
