// Extension (the paper's own future-work hint): "Clearly, if the input
// distribution is close to an ideal distribution, it does not pay to
// reposition.  We point out that our algorithms do not analyze the input
// distribution."
//
// AdaptiveRepositioning analyzes it: it computes the ideal targets like
// Repos_* would, and repositions only when doing so is predicted to pay —
// the decision combines how many sources would have to move (the
// permutation's cost) with how far the input's activity-growth profile
// trails the ideal's (the broadcast's gain).  bench/ext_adaptive shows it
// tracking min(base, repositioned) across the distribution families.
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class AdaptiveRepositioning final : public Algorithm {
 public:
  /// `base` must be one of the Br_* algorithms (as for Repos_*).
  explicit AdaptiveRepositioning(AlgorithmPtr base);

  std::string name() const override { return name_; }
  bool mpi_flavored() const override { return base_->mpi_flavored(); }
  ProgramFactory prepare(const Frame& frame) const override;

  /// The decision rule, exposed for tests: reposition iff the predicted
  /// broadcast gain outweighs the permutation cost.
  bool should_reposition(const Frame& frame) const;

 private:
  AlgorithmPtr base_;
  AlgorithmPtr repositioning_;
  std::string name_;
};

AlgorithmPtr make_adaptive_repositioning(AlgorithmPtr base);

}  // namespace spb::stop
