// Repositioning algorithms (paper Section 3): first a partial permutation
// moves every source's message to a position of an *ideal* distribution
// for the base algorithm on this machine, then the base algorithm runs on
// the repositioned sources.
//
// Ideal targets per base (derived from the halving structure, see
// dist/ideal.h):
//   Br_Lin        -> ideal_linear   (halving spread order on the ranks)
//   Br_xy_source  -> ideal_rows     (full rows at row-spread positions;
//                                    the source rule then picks columns
//                                    first, exactly the paper's choice of
//                                    "the row distribution ... positioned
//                                    so the number of new sources increases
//                                    as fast as possible")
//   Br_xy_dim     -> ideal_cols / ideal_rows, matching whichever dimension
//                    Br_xy_dim processes second on this mesh shape
//
// Like the paper's implementation, repositioning is unconditional: "our
// current implementations do not check whether the initial distribution is
// close to an ideal distribution and always reposition."  Sources already
// sitting on target positions stay put; the rest are matched to the free
// targets in sorted order.
#pragma once

#include <vector>

#include "stop/algorithm.h"

namespace spb::stop {

class Repositioning final : public Algorithm {
 public:
  /// `base` must be one of Br_Lin / Br_xy_source / Br_xy_dim.
  explicit Repositioning(AlgorithmPtr base);

  std::string name() const override { return name_; }
  bool mpi_flavored() const override { return base_->mpi_flavored(); }
  ProgramFactory prepare(const Frame& frame) const override;

  /// The ideal target positions (global ranks) this wrapper would pick for
  /// a frame — exposed for tests and the partitioning algorithm.
  std::vector<Rank> ideal_targets(const Frame& frame) const;

 private:
  AlgorithmPtr base_;
  std::string name_;
};

/// Ideal targets for a base algorithm on a frame (shared with Part_*).
std::vector<Rank> ideal_targets_for(const Algorithm& base,
                                    const Frame& frame, int s);

/// A partial-permutation plan: which ranks send their original where, and
/// which ranks receive one.  Sources already on targets do not move.
struct PermutationPlan {
  /// Parallel arrays: movers[i] sends to slots[i].
  std::vector<Rank> movers;
  std::vector<Rank> slots;

  static PermutationPlan match(const std::vector<Rank>& sources,
                               const std::vector<Rank>& targets);

  /// kNoRank or the destination/origin for this rank.
  Rank send_target(Rank r) const;
  Rank recv_origin(Rank r) const;
};

}  // namespace spb::stop
