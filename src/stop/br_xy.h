// Algorithms Br_xy_source and Br_xy_dim (paper Section 2): broadcast one
// mesh dimension at a time, invoking the Br_Lin halving pattern within
// every line of the first dimension and then within every line of the
// second.
//
// The two algorithms differ only in how the first dimension is chosen:
//   Br_xy_source — by the source distribution: with max_r (max sources in
//     any row) and max_c (max sources in any column), rows go first iff
//     max_r < max_c, so the dimension whose lines hold fewer sources is
//     processed first and the second phase starts with shorter messages.
//   Br_xy_dim — by the mesh shape alone: rows first iff rows >= cols
//     (shorter lines first).  Blind to the sources — this is the paper's
//     foil showing "the importance of choosing the right dimension first"
//     (its row-distribution blow-up in Figure 6).
#pragma once

#include "stop/algorithm.h"

namespace spb::stop {

class BrXy : public Algorithm {
 public:
  ProgramFactory prepare(const Frame& frame) const override;

  /// True if the first processed dimension is the rows (i.e. the first
  /// halving phase runs within each row).
  virtual bool rows_first(const Frame& frame) const = 0;
};

class BrXySource final : public BrXy {
 public:
  std::string name() const override { return "Br_xy_source"; }
  bool rows_first(const Frame& frame) const override;
};

class BrXyDim final : public BrXy {
 public:
  std::string name() const override { return "Br_xy_dim"; }
  bool rows_first(const Frame& frame) const override;
};

}  // namespace spb::stop
