#include "stop/br_xy.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "coll/engine.h"
#include "coll/halving.h"
#include "common/check.h"

namespace spb::stop {

namespace {

/// Precomputed two-phase plan shared by all rank programs.
struct XyPlan {
  bool rows_first = true;
  /// Phase A: one (sequence, schedule) per line of the first dimension.
  std::vector<std::shared_ptr<const std::vector<Rank>>> seq_a;
  std::vector<std::shared_ptr<const coll::HalvingSchedule>> sched_a;
  /// Phase B: per line of the second dimension.
  std::vector<std::shared_ptr<const std::vector<Rank>>> seq_b;
  std::vector<std::shared_ptr<const coll::HalvingSchedule>> sched_b;
};

sim::Task xy_program(mp::Comm& comm, mp::Payload& data,
                     std::shared_ptr<const XyPlan> plan, int row, int col) {
  const int line_a = plan->rows_first ? row : col;
  const int pos_a = plan->rows_first ? col : row;
  const int line_b = plan->rows_first ? col : row;
  const int pos_b = plan->rows_first ? row : col;
  // Phase names follow the actual dimension halved, not the plan order, so
  // "rows" always means within-row exchanges in the exported breakdown.
  co_await coll::run_halving(
      comm, plan->seq_a[static_cast<std::size_t>(line_a)], pos_a,
      plan->sched_a[static_cast<std::size_t>(line_a)], data,
      coll::HalvingOptions{.phase = plan->rows_first ? "rows" : "cols"});
  co_await coll::run_halving(
      comm, plan->seq_b[static_cast<std::size_t>(line_b)], pos_b,
      plan->sched_b[static_cast<std::size_t>(line_b)], data,
      coll::HalvingOptions{.phase = plan->rows_first ? "cols" : "rows"});
}

}  // namespace

ProgramFactory BrXy::prepare(const Frame& frame) const {
  auto plan = std::make_shared<XyPlan>();
  plan->rows_first = rows_first(frame);

  const int rows = frame.rows();
  const int cols = frame.cols();
  const auto rank_at = [&frame, cols](int row, int col) {
    return frame.rank_at(row * cols + col);
  };

  // Phase A: halve within every line of the first dimension, activity given
  // by the sources inside that line.
  const int lines_a = plan->rows_first ? rows : cols;
  const int len_a = plan->rows_first ? cols : rows;
  std::vector<char> line_had_source(static_cast<std::size_t>(lines_a), 0);
  for (int line = 0; line < lines_a; ++line) {
    auto seq = std::make_shared<std::vector<Rank>>();
    seq->reserve(static_cast<std::size_t>(len_a));
    std::vector<char> active(static_cast<std::size_t>(len_a), 0);
    for (int k = 0; k < len_a; ++k) {
      const Rank r =
          plan->rows_first ? rank_at(line, k) : rank_at(k, line);
      seq->push_back(r);
    }
    for (const Rank s : frame.sources()) {
      const int pos = frame.position_of(s);
      const int s_line = plan->rows_first ? pos / cols : pos % cols;
      const int s_pos = plan->rows_first ? pos % cols : pos / cols;
      if (s_line == line) {
        active[static_cast<std::size_t>(s_pos)] = 1;
        line_had_source[static_cast<std::size_t>(line)] = 1;
      }
    }
    plan->seq_a.push_back(std::move(seq));
    plan->sched_a.push_back(std::make_shared<const coll::HalvingSchedule>(
        coll::HalvingSchedule::compute(active)));
  }

  // Phase B: halve within every line of the second dimension.  A position
  // is active iff its first-dimension line contained a source — after
  // phase A every member of such a line holds the line's combined data.
  const int lines_b = len_a;
  const int len_b = lines_a;
  for (int line = 0; line < lines_b; ++line) {
    auto seq = std::make_shared<std::vector<Rank>>();
    seq->reserve(static_cast<std::size_t>(len_b));
    std::vector<char> active(static_cast<std::size_t>(len_b), 0);
    for (int k = 0; k < len_b; ++k) {
      const Rank r =
          plan->rows_first ? rank_at(k, line) : rank_at(line, k);
      seq->push_back(r);
      active[static_cast<std::size_t>(k)] =
          line_had_source[static_cast<std::size_t>(k)];
    }
    plan->seq_b.push_back(std::move(seq));
    plan->sched_b.push_back(std::make_shared<const coll::HalvingSchedule>(
        coll::HalvingSchedule::compute(active)));
  }

  const int cols_copy = cols;
  return [frame, plan, cols_copy](mp::Comm& comm, mp::Payload& data) {
    const int pos = frame.position_of(comm.rank());
    return xy_program(comm, data, plan, pos / cols_copy, pos % cols_copy);
  };
}

bool BrXySource::rows_first(const Frame& frame) const {
  const auto row_counts = frame.row_source_counts();
  const auto col_counts = frame.col_source_counts();
  const int max_r =
      *std::max_element(row_counts.begin(), row_counts.end());
  const int max_c =
      *std::max_element(col_counts.begin(), col_counts.end());
  // "If max_r < max_c, rows are selected first.  Otherwise, the columns."
  return max_r < max_c;
}

bool BrXyDim::rows_first(const Frame& frame) const {
  // "Br_xy_dim selects the rows if r >= c", regardless of the sources.
  return frame.rows() >= frame.cols();
}

}  // namespace spb::stop
