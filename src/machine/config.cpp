#include "machine/config.h"

#include <cstddef>

#include "common/check.h"
#include "common/math.h"
#include "machine/registry.h"

namespace spb::machine {

MachineConfig from_name(const std::string& name) {
  return Registry::instance().parse(name);
}

mp::Runtime MachineConfig::make_runtime(bool mpi_flavored) const {
  mp::CommParams cp = comm;
  if (mpi_flavored) cp.mpi_extra_us += mpi_extra_us;
  return mp::Runtime(topology, net, cp, mapping);
}

void balanced_factors(int p, int& rows, int& cols) {
  SPB_REQUIRE(p >= 1, "p must be positive");
  rows = 1;
  for (int d = 1; static_cast<std::int64_t>(d) * d <= p; ++d)
    if (p % d == 0) rows = d;
  cols = p / rows;
}

MachineConfig paragon(int rows, int cols) {
  SPB_REQUIRE(rows >= 1 && cols >= 1, "paragon needs positive dimensions");
  MachineConfig m;
  m.name = "paragon " + std::to_string(rows) + "x" + std::to_string(cols);
  m.topology = std::make_shared<net::Mesh2D>(rows, cols);
  m.p = rows * cols;
  m.rows = rows;
  m.cols = cols;
  m.mapping = net::RankMapping::identity(m.p);

  // Interconnect: 200 MB/s wire rate per channel; sustained point-to-point
  // rates observed on NX were far lower, dominated by the node interface.
  m.net.alpha_us = 6.0;
  m.net.per_hop_us = 0.04;
  m.net.bytes_per_us = 160.0;  // ~160 MB/s sustained per channel
  m.net.inject_channels = 1;
  m.net.eject_channels = 1;

  // NX software layer: ~50 us one-way small-message latency split between
  // sender and receiver; i860 copy bandwidth bounds message combining.
  m.comm.send_overhead_us = 22.0;
  m.comm.recv_overhead_us = 22.0;
  m.comm.combine_fixed_us = 3.0;
  m.comm.combine_per_byte_us = 0.008;  // ~125 MB/s memcpy
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  // The paper: "a performance loss of 2 to 5% in every MPI implementation".
  m.mpi_extra_us = 14.0;
  return m;
}

MachineConfig hypercube(int dims) {
  SPB_REQUIRE(dims >= 1 && dims <= 10, "hypercube dims must be 1..10");
  MachineConfig m;
  const int p = 1 << dims;
  m.name = "hypercube " + std::to_string(dims) + "d";
  m.topology = std::make_shared<net::Hypercube>(dims);
  m.p = p;
  balanced_factors(p, m.rows, m.cols);
  m.mapping = net::RankMapping::identity(p);

  // iPSC/860-class machine: Paragon-era software, somewhat slower links.
  m.net.alpha_us = 8.0;
  m.net.per_hop_us = 0.05;
  m.net.bytes_per_us = 120.0;
  m.net.inject_channels = 1;
  m.net.eject_channels = 1;

  m.comm.send_overhead_us = 25.0;
  m.comm.recv_overhead_us = 25.0;
  m.comm.combine_fixed_us = 3.0;
  m.comm.combine_per_byte_us = 0.008;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;
  m.mpi_extra_us = 14.0;
  return m;
}

MachineConfig t3d(int p, std::uint64_t scatter_seed) {
  SPB_REQUIRE(p >= 1 && p <= 512, "t3d partition size must be 1..512");
  MachineConfig m;
  m.name = "t3d p=" + std::to_string(p);
  m.topology = std::make_shared<net::Torus3D>(8, 8, 8);
  m.p = p;
  balanced_factors(p, m.rows, m.cols);
  m.mapping = scatter_seed == 0
                  ? net::RankMapping::identity(p)
                  : net::RankMapping::random(p, 512, scatter_seed);

  // Interconnect: 300 MB/s per channel, six channels per node, very low
  // routing latency; we give each node two DMA engines per direction to
  // reflect the much higher node-interface throughput.
  m.net.alpha_us = 2.0;
  m.net.per_hop_us = 0.02;
  m.net.bytes_per_us = 280.0;
  m.net.inject_channels = 2;
  m.net.eject_channels = 2;

  // MPI on the T3D: ~50 us one-way latency (25 us per side).  Combining
  // messages through the portable MPI layer costs an extra pack/unpack
  // traversal (~40 MB/s effective), which — relative to the fast network —
  // makes merging far more expensive than on the Paragon.  This is the
  // "higher wait cost and the cost of combining messages" the paper blames
  // for Br_Lin's poor T3D showing; bench/ablation_combine sweeps it.
  m.comm.send_overhead_us = 25.0;
  m.comm.recv_overhead_us = 35.0;
  m.comm.combine_fixed_us = 15.0;
  m.comm.combine_per_byte_us = 0.025;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  // Everything on the T3D already runs on MPI; no extra penalty.  The
  // MPI_AllGather broadcast phase is the vendor collective, which
  // pipelines large messages in segments.
  m.mpi_extra_us = 0.0;
  m.bcast_segment_bytes = 16384;
  return m;
}

MachineConfig torus(const std::vector<int>& dims) {
  auto topo = std::make_shared<net::TorusND>(dims);
  MachineConfig m;
  m.name = topo->name();
  m.p = topo->node_count();
  m.topology = std::move(topo);
  balanced_factors(m.p, m.rows, m.cols);
  m.mapping = net::RankMapping::identity(m.p);

  // T3D-class interconnect and software (see t3d()), but a dedicated
  // machine: the application owns the whole torus, so placement is
  // contiguous instead of the T3D's uncontrollable scatter.
  m.net.alpha_us = 2.0;
  m.net.per_hop_us = 0.02;
  m.net.bytes_per_us = 280.0;
  m.net.inject_channels = 2;
  m.net.eject_channels = 2;

  m.comm.send_overhead_us = 25.0;
  m.comm.recv_overhead_us = 35.0;
  m.comm.combine_fixed_us = 15.0;
  m.comm.combine_per_byte_us = 0.025;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  m.mpi_extra_us = 0.0;
  m.bcast_segment_bytes = 16384;
  return m;
}

MachineConfig cluster(int nodes, int cores) {
  // Inter-node mesh links run at a quarter of the crossbar rate; the
  // topology reports this per link and the cost model prices it via
  // inter_node_bw_scale.
  constexpr double kMeshScale = 0.25;
  auto topo = std::make_shared<net::Cluster>(nodes, cores, kMeshScale);
  MachineConfig m;
  m.name = topo->name();
  m.p = topo->node_count();
  m.rows = topo->nodes();  // one logical row per node
  m.cols = cores;
  m.topology = std::move(topo);
  m.mapping = net::RankMapping::identity(m.p);
  m.cores_per_node = cores;
  m.inter_node_bw_scale = kMeshScale;

  // Mid-90s SMP-cluster numbers: shared-memory-class crossbar inside a
  // node, cabled mesh between boxes with a real per-hop head latency, a
  // lean MPI stack everywhere.
  m.net.alpha_us = 3.0;
  m.net.per_hop_us = 0.3;
  m.net.bytes_per_us = 320.0;
  m.net.inject_channels = 1;
  m.net.eject_channels = 1;

  m.comm.send_overhead_us = 18.0;
  m.comm.recv_overhead_us = 18.0;
  m.comm.combine_fixed_us = 3.0;
  m.comm.combine_per_byte_us = 0.006;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  m.mpi_extra_us = 0.0;
  m.bcast_segment_bytes = 16384;
  return m;
}

}  // namespace spb::machine
