#include "machine/config.h"

#include <cstddef>

#include "common/check.h"
#include "common/math.h"

namespace spb::machine {

namespace {

/// Strict non-negative integer parse; SPB_REQUIREs on junk.
int parse_int(const std::string& text, const std::string& what) {
  SPB_REQUIRE(!text.empty(), "missing " << what << " in machine name");
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SPB_REQUIRE(used == text.size() && v >= 0,
              "bad " << what << " '" << text << "' in machine name");
  return v;
}

}  // namespace

MachineConfig from_name(const std::string& name) {
  // paragonRxC (e.g. paragon8x8), t3dP[:SEED] (e.g. t3d512, t3d256:0),
  // hypercubeD (e.g. hypercube6).
  if (name.rfind("paragon", 0) == 0) {
    const std::string dims = name.substr(7);
    const std::size_t x = dims.find('x');
    SPB_REQUIRE(x != std::string::npos,
                "machine '" << name << "': want paragonRxC, e.g. paragon8x8");
    return paragon(parse_int(dims.substr(0, x), "rows"),
                   parse_int(dims.substr(x + 1), "cols"));
  }
  if (name.rfind("t3d", 0) == 0) {
    std::string rest = name.substr(3);
    std::uint64_t seed = 1;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      seed = static_cast<std::uint64_t>(
          parse_int(rest.substr(colon + 1), "scatter seed"));
      rest = rest.substr(0, colon);
    }
    return t3d(parse_int(rest, "processor count"), seed);
  }
  if (name.rfind("hypercube", 0) == 0)
    return hypercube(parse_int(name.substr(9), "dimension count"));
  SPB_REQUIRE(false, "unknown machine '"
                         << name
                         << "' (want paragonRxC, t3dP[:SEED] or hypercubeD)");
  return {};  // unreachable
}

mp::Runtime MachineConfig::make_runtime(bool mpi_flavored) const {
  mp::CommParams cp = comm;
  if (mpi_flavored) cp.mpi_extra_us += mpi_extra_us;
  return mp::Runtime(topology, net, cp, mapping);
}

void balanced_factors(int p, int& rows, int& cols) {
  SPB_REQUIRE(p >= 1, "p must be positive");
  rows = 1;
  for (int d = 1; static_cast<std::int64_t>(d) * d <= p; ++d)
    if (p % d == 0) rows = d;
  cols = p / rows;
}

MachineConfig paragon(int rows, int cols) {
  SPB_REQUIRE(rows >= 1 && cols >= 1, "paragon needs positive dimensions");
  MachineConfig m;
  m.name = "paragon " + std::to_string(rows) + "x" + std::to_string(cols);
  m.topology = std::make_shared<net::Mesh2D>(rows, cols);
  m.p = rows * cols;
  m.rows = rows;
  m.cols = cols;
  m.mapping = net::RankMapping::identity(m.p);

  // Interconnect: 200 MB/s wire rate per channel; sustained point-to-point
  // rates observed on NX were far lower, dominated by the node interface.
  m.net.alpha_us = 6.0;
  m.net.per_hop_us = 0.04;
  m.net.bytes_per_us = 160.0;  // ~160 MB/s sustained per channel
  m.net.inject_channels = 1;
  m.net.eject_channels = 1;

  // NX software layer: ~50 us one-way small-message latency split between
  // sender and receiver; i860 copy bandwidth bounds message combining.
  m.comm.send_overhead_us = 22.0;
  m.comm.recv_overhead_us = 22.0;
  m.comm.combine_fixed_us = 3.0;
  m.comm.combine_per_byte_us = 0.008;  // ~125 MB/s memcpy
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  // The paper: "a performance loss of 2 to 5% in every MPI implementation".
  m.mpi_extra_us = 14.0;
  return m;
}

MachineConfig hypercube(int dims) {
  SPB_REQUIRE(dims >= 1 && dims <= 10, "hypercube dims must be 1..10");
  MachineConfig m;
  const int p = 1 << dims;
  m.name = "hypercube " + std::to_string(dims) + "d";
  m.topology = std::make_shared<net::Hypercube>(dims);
  m.p = p;
  balanced_factors(p, m.rows, m.cols);
  m.mapping = net::RankMapping::identity(p);

  // iPSC/860-class machine: Paragon-era software, somewhat slower links.
  m.net.alpha_us = 8.0;
  m.net.per_hop_us = 0.05;
  m.net.bytes_per_us = 120.0;
  m.net.inject_channels = 1;
  m.net.eject_channels = 1;

  m.comm.send_overhead_us = 25.0;
  m.comm.recv_overhead_us = 25.0;
  m.comm.combine_fixed_us = 3.0;
  m.comm.combine_per_byte_us = 0.008;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;
  m.mpi_extra_us = 14.0;
  return m;
}

MachineConfig t3d(int p, std::uint64_t scatter_seed) {
  SPB_REQUIRE(p >= 1 && p <= 512, "t3d partition size must be 1..512");
  MachineConfig m;
  m.name = "t3d p=" + std::to_string(p);
  m.topology = std::make_shared<net::Torus3D>(8, 8, 8);
  m.p = p;
  balanced_factors(p, m.rows, m.cols);
  m.mapping = scatter_seed == 0
                  ? net::RankMapping::identity(p)
                  : net::RankMapping::random(p, 512, scatter_seed);

  // Interconnect: 300 MB/s per channel, six channels per node, very low
  // routing latency; we give each node two DMA engines per direction to
  // reflect the much higher node-interface throughput.
  m.net.alpha_us = 2.0;
  m.net.per_hop_us = 0.02;
  m.net.bytes_per_us = 280.0;
  m.net.inject_channels = 2;
  m.net.eject_channels = 2;

  // MPI on the T3D: ~50 us one-way latency (25 us per side).  Combining
  // messages through the portable MPI layer costs an extra pack/unpack
  // traversal (~40 MB/s effective), which — relative to the fast network —
  // makes merging far more expensive than on the Paragon.  This is the
  // "higher wait cost and the cost of combining messages" the paper blames
  // for Br_Lin's poor T3D showing; bench/ablation_combine sweeps it.
  m.comm.send_overhead_us = 25.0;
  m.comm.recv_overhead_us = 35.0;
  m.comm.combine_fixed_us = 15.0;
  m.comm.combine_per_byte_us = 0.025;
  m.comm.header_bytes = 32;
  m.comm.chunk_header_bytes = 8;

  // Everything on the T3D already runs on MPI; no extra penalty.  The
  // MPI_AllGather broadcast phase is the vendor collective, which
  // pipelines large messages in segments.
  m.mpi_extra_us = 0.0;
  m.bcast_segment_bytes = 16384;
  return m;
}

}  // namespace spb::machine
