#include "machine/registry.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "common/check.h"
#include "common/parse.h"

namespace spb::machine {

namespace {

/// Strict positive-int parse for one machine-spec parameter; the error
/// names the spec and the offending field.
int parse_param(const std::string& spec, const std::string& what,
                const std::string& text) {
  int v = 0;
  std::string err;
  SPB_REQUIRE(try_parse_int(text, v, err),
              "machine '" << spec << "': bad " << what << " '" << text
                          << "' (" << err << ")");
  return v;
}

/// Splits "4x4x16" on 'x' into ints (strictly parsed).
std::vector<int> parse_dims(const std::string& spec, const std::string& what,
                            const std::string& text) {
  std::vector<int> dims;
  std::size_t at = 0;
  while (true) {
    const std::size_t x = text.find('x', at);
    dims.push_back(parse_param(
        spec, what,
        text.substr(at, x == std::string::npos ? std::string::npos : x - at)));
    if (x == std::string::npos) break;
    at = x + 1;
  }
  return dims;
}

}  // namespace

Registry::Registry() {
  // NOTE: spb_lint rule U6 checks that every entry carries a non-empty
  // .description and .example; keep the designated initializers.
  entries_.push_back({
      .pattern = "paragonRxC",
      .description =
          "Intel Paragon XP/S: dedicated RxC wormhole 2-D mesh, NX software",
      .example = "paragon8x8",
      .prefix = "paragon",
      .parse =
          [](const std::string& spec) {
            const auto d =
                parse_dims(spec, "mesh dimensions", spec.substr(7));
            SPB_REQUIRE(d.size() == 2,
                        "machine '" << spec
                                    << "': want paragonRxC, e.g. paragon8x8");
            return paragon(d[0], d[1]);
          },
  });
  entries_.push_back({
      .pattern = "t3dP[:SEED]",
      .description = "Cray T3D: P virtual processors scattered on a 512-node "
                     "3-D torus (:0 = contiguous placement)",
      .example = "t3d512",
      .prefix = "t3d",
      .parse =
          [](const std::string& spec) {
            std::string rest = spec.substr(3);
            std::uint64_t seed = 1;
            const std::size_t colon = rest.find(':');
            if (colon != std::string::npos) {
              seed = static_cast<std::uint64_t>(parse_param(
                  spec, "scatter seed", rest.substr(colon + 1)));
              rest = rest.substr(0, colon);
            }
            return t3d(parse_param(spec, "processor count", rest), seed);
          },
  });
  entries_.push_back({
      .pattern = "hypercubeD",
      .description = "iPSC/860-style hypercube of 2^D processors, e-cube "
                     "routed, Paragon-era software",
      .example = "hypercube6",
      .prefix = "hypercube",
      .parse =
          [](const std::string& spec) {
            return hypercube(
                parse_param(spec, "dimension count", spec.substr(9)));
          },
  });
  entries_.push_back({
      .pattern = "torusK1xK2x...",
      .description = "k-ary n-cube: torus with wraparound in every dimension, "
                     "T3D-class links, contiguous placement",
      .example = "torus4x4x4x4",
      .prefix = "torus",
      .parse =
          [](const std::string& spec) {
            return torus(parse_dims(spec, "torus dimensions", spec.substr(5)));
          },
  });
  entries_.push_back({
      .pattern = "clusterNxM",
      .description = "two-level cluster: N nodes x M cores, node-local "
                     "crossbar + slower inter-node mesh",
      .example = "cluster8x4",
      .prefix = "cluster",
      .parse =
          [](const std::string& spec) {
            const auto d =
                parse_dims(spec, "cluster dimensions", spec.substr(7));
            SPB_REQUIRE(d.size() == 2,
                        "machine '" << spec
                                    << "': want clusterNxM, e.g. cluster8x4");
            return cluster(d[0], d[1]);
          },
  });

  // parse() dispatches on the first matching prefix, so an entry whose
  // prefix is a prefix of a *later* entry's prefix would shadow it — a
  // hypothetical "t3" entry registered before "t3d" would claim every t3d
  // spec.  Fail construction rather than mis-parse; spb_lint rule U6
  // enforces the same property statically on this file.
  for (std::size_t a = 0; a < entries_.size(); ++a)
    for (std::size_t b = a + 1; b < entries_.size(); ++b)
      SPB_REQUIRE(
          entries_[b].prefix.rfind(entries_[a].prefix, 0) != 0,
          "machine registry: entry '"
              << entries_[a].pattern << "' (prefix '" << entries_[a].prefix
              << "') shadows later entry '" << entries_[b].pattern
              << "' (prefix '" << entries_[b].prefix
              << "') — register the longer prefix first");
}

const Registry& Registry::instance() {
  static const Registry registry;
  return registry;
}

MachineConfig Registry::parse(const std::string& spec) const {
  for (const auto& e : entries_)
    if (spec.rfind(e.prefix, 0) == 0) return e.parse(spec);
  std::ostringstream os;
  os << "unknown machine '" << spec << "'; registered machine specs:";
  for (const auto& e : entries_)
    os << "\n  " << e.pattern << "  (e.g. " << e.example << ")";
  SPB_REQUIRE(false, os.str());
  return {};  // unreachable
}

std::string Registry::describe() const {
  std::size_t width = 0;
  for (const auto& e : entries_) width = std::max(width, e.pattern.size());
  std::ostringstream os;
  os << "registered machines (--machine SPEC):\n";
  for (const auto& e : entries_) {
    os << "  " << e.pattern
       << std::string(width - e.pattern.size() + 2, ' ') << e.description
       << " [e.g. " << e.example << "]\n";
  }
  return os.str();
}

std::string Registry::grammar() const {
  std::string out;
  for (const auto& e : entries_) {
    if (!out.empty()) out += " | ";
    out += e.pattern;
  }
  out += " | list";
  return out;
}

}  // namespace spb::machine
