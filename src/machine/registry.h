// The data-driven machine registry behind machine::from_name and every
// CLI's --machine flag.
//
// Each registered family carries its CLI name pattern, a one-line
// description, a concrete example spec and the parser that builds the
// MachineConfig.  spb_plan, spb_report, spb_serve, spb_verify,
// analyze_schedule and the bench CLI all consume this one table, so the
// grammar, the `--machine list` catalogue and the unknown-spec error are
// defined in exactly one place (the catalogue is golden-pinned in
// tests/machine/registry_test.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machine/config.h"

namespace spb::machine {

/// One registered machine family.
struct MachineSpec {
  /// CLI grammar of the family, e.g. "paragonRxC".
  std::string pattern;
  /// One-line description for the `--machine list` catalogue.
  std::string description;
  /// A concrete spec that must round-trip through from_name.
  std::string example;
  /// Literal prefix a spec of this family starts with ("paragon").
  std::string prefix;
  /// Parses a full spec (the prefix is guaranteed to match).  Throws
  /// CheckError with a precise message on malformed parameters.
  std::function<MachineConfig(const std::string& spec)> parse;
};

class Registry {
 public:
  /// The registry of all built-in machine families.
  static const Registry& instance();

  const std::vector<MachineSpec>& entries() const { return entries_; }

  /// Parses a spec; throws CheckError enumerating the registered patterns
  /// when no family matches.
  MachineConfig parse(const std::string& spec) const;

  /// Multi-line human-readable catalogue: the shared `--machine list`
  /// output.
  std::string describe() const;

  /// One-line grammar summary for CLI usage text:
  /// "paragonRxC | t3dP[:SEED] | ... | list".
  std::string grammar() const;

 private:
  Registry();

  std::vector<MachineSpec> entries_;
};

}  // namespace spb::machine
