// Machine models.
//
// machine::paragon(rows, cols) — Intel Paragon XP/S style: the application
// owns a dedicated rows x cols submesh (identity rank-to-node mapping),
// wormhole-routed 2-D mesh, NX message layer.  MPI-flavoured algorithms pay
// an extra per-message software cost (the paper measured MPI versions 2-5%
// slower than NX).
//
// machine::t3d(p, seed) — Cray T3D style: p virtual processors placed on a
// 512-node 3-D torus (the Pittsburgh Supercomputing Center machine the
// paper used) by a seeded random mapping, because "the mapping of virtual
// to physical processors cannot be controlled by the user".  Higher link
// bandwidth (300 MB/s channels, six per node) and a leaner MPI stack.
//
// All timing constants are calibrated to mid-1990s published measurements
// (NX latency ~50 us, achieved NX bandwidth well below the 200 MB/s wire
// rate; T3D MPI latency ~30 us).  Absolute simulated times are not meant to
// equal the paper's milliseconds — the *relationships* between algorithms,
// distributions and machine shapes are what the benchmarks check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "mp/runtime.h"
#include "net/mapping.h"
#include "net/network.h"
#include "net/topology.h"

namespace spb::machine {

struct MachineConfig {
  std::string name;
  std::shared_ptr<const net::Topology> topology;
  net::NetParams net;
  mp::CommParams comm;
  net::RankMapping mapping = net::RankMapping::identity(1);

  /// Logical processor count (ranks).
  int p = 1;

  /// Logical mesh view of the rank space used by the source distributions
  /// and the Br_xy_* algorithms: rank = row * cols + col.  On the Paragon
  /// this coincides with the physical mesh; on the T3D it is purely
  /// logical.
  int rows = 1;
  int cols = 1;

  /// Extra per-message software cost applied when an algorithm is
  /// MPI-flavoured (0 where the baseline layer already is MPI).
  double mpi_extra_us = 0.0;

  /// Segment size of the 2-Step broadcast phase: 0 = store-and-forward
  /// (the paper's own NX code on the Paragon); > 0 = pipelined vendor
  /// collective (Cray's MPI on the T3D).
  Bytes bcast_segment_bytes = 0;

  /// Two-level cluster machines: processors per node (0 = flat machine)
  /// and the inter-node link bandwidth as a fraction of net.bytes_per_us
  /// (net carries the fast intra-node tier; 1.0 on flat machines).
  /// Calibration::from_machine prices the two tiers separately from these.
  int cores_per_node = 0;
  double inter_node_bw_scale = 1.0;

  /// Builds a runtime for this machine, with `mpi_extra_us` applied if the
  /// algorithm runs on the portable MPI layer.
  mp::Runtime make_runtime(bool mpi_flavored) const;
};

/// Intel Paragon submesh of rows x cols processors.
MachineConfig paragon(int rows, int cols);

/// Parses a CLI machine spec by delegating to machine::Registry: the
/// registered families are paragonRxC, t3dP[:SEED], hypercubeD,
/// torusK1xK2x... and clusterNxM.  Throws CheckError enumerating the
/// registered patterns on anything else.
MachineConfig from_name(const std::string& name);

/// Cray T3D partition of p virtual processors on a 512-node torus.  The
/// logical mesh view is the most balanced factorization rows*cols == p with
/// rows <= cols.
///
/// The mapping of virtual to physical processors "cannot be controlled by
/// the user" (paper Section 5): algorithms must not rely on it.  We model
/// it as a seeded random scatter over the torus; pass scatter_seed = 0 for
/// a contiguous sub-brick placement instead (the ablation_mapping bench
/// compares the two).
MachineConfig t3d(int p, std::uint64_t scatter_seed = 1);

/// The most balanced factorization rows * cols == p, rows <= cols, used for
/// the T3D logical grid (exposed for tests).
void balanced_factors(int p, int& rows, int& cols);

/// Extension (not one of the paper's machines): an iPSC/860-style
/// hypercube of 2^dims processors with Paragon-era software overheads.
/// Br_Lin's halving pattern maps one iteration per cube dimension, so its
/// exchanges are contention-free here — bench/ext_hypercube measures the
/// effect against a mesh of the same size.
MachineConfig hypercube(int dims);

/// k-ary n-cube torus machine (net::TorusND) with T3D-class links and
/// software, dedicated to the application: ranks map to nodes
/// contiguously, the logical grid is the most balanced factorization of
/// the node count.  The machine axis ROADMAP item 4 asks for — tori the
/// 1996 hardware could not reach (torus8x8x16, torus4x4x4x4, ...).
MachineConfig torus(const std::vector<int>& dims);

/// Two-level cluster of `nodes` compute nodes x `cores` processors each
/// (net::Cluster): node-local crossbar at the full net rate, inter-node
/// mesh at a quarter of it.  The logical grid is nodes x cores with one
/// row per node, so row-oriented algorithms (and the Hier_* family) align
/// with the machine hierarchy.
MachineConfig cluster(int nodes, int cores);

}  // namespace spb::machine
