// Optional execution tracing: when enabled on a Runtime, every send,
// receive and compute burst is recorded with its timing, giving exact
// communication timelines (see examples/timeline for an ASCII Gantt
// rendering, src/obs for the Chrome-trace/Perfetto export, and the tests
// for programmatic use).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace spb::mp {

struct TraceEvent {
  /// kDrop and kRetransmit only appear in fault-injection runs: a drop is a
  /// transmission attempt lost in transit, a retransmit the follow-up
  /// attempt (or the duplicate provoked by a lost acknowledgement).
  /// kPhaseBegin/kPhaseEnd bracket the algorithm phases annotated through
  /// Comm::begin_phase(); `phase` indexes Trace::phase_names().
  enum class Kind {
    kSend,
    kRecv,
    kCompute,
    kDrop,
    kRetransmit,
    kPhaseBegin,
    kPhaseEnd
  };

  Kind kind = Kind::kSend;
  Rank rank = kNoRank;   // who performed the operation
  Rank peer = kNoRank;   // the other side (kNoRank for compute)
  int tag = 0;
  Bytes wire_bytes = 0;  // 0 for compute

  /// kSend: issue time.  kRecv: post time.  kCompute: start time.
  /// kPhaseBegin/kPhaseEnd: phase begin time.
  SimTime begin_us = 0;
  /// kSend: injection complete (sender released).  kRecv: message handed
  /// to the program.  kCompute: end of the burst.  kPhaseEnd: phase end.
  SimTime end_us = 0;
  /// kSend only: when the complete message reached the destination.
  SimTime arrive_us = 0;
  /// kRecv only: whether the program had to block for the message.
  bool blocked = false;
  /// The innermost phase active when the event was recorded (id into
  /// Trace::phase_names(); -1 = outside any phase).  For kPhaseBegin /
  /// kPhaseEnd, the phase being opened or closed.
  int phase = -1;
};

class Trace {
 public:
  void record(const TraceEvent& e) { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Phase names interned by the runtime (index = TraceEvent::phase).
  /// Filled in by Runtime::run() when tracing is enabled.
  const std::vector<std::string>& phase_names() const { return phases_; }
  void set_phase_names(std::vector<std::string> names) {
    phases_ = std::move(names);
  }

  /// Events of one rank, in recording (time) order.
  std::vector<TraceEvent> for_rank(Rank r) const;

  /// Latest end/arrive timestamp in the trace.
  SimTime horizon_us() const;

  /// ASCII Gantt chart: one row per rank, `columns` time buckets; 'S' =
  /// sending (injection), 'w' = blocked waiting for a message, 'r' =
  /// receive processing, 'c' = computing, 'x' = attempt lost in transit,
  /// 'R' = retransmitting, '.' = idle.  Marks carry a priority ('x' over
  /// 'R' over ordinary operations), so rare fault marks stay visible at
  /// coarse columns instead of being overwritten by whatever painted the
  /// bucket last.
  std::string render_timeline(int ranks, int columns) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> phases_;
};

}  // namespace spb::mp
