// Optional execution tracing: when enabled on a Runtime, every send,
// receive and compute burst is recorded with its timing, giving exact
// communication timelines (see examples/timeline for an ASCII Gantt
// rendering, and the tests for programmatic use).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace spb::mp {

struct TraceEvent {
  /// kDrop and kRetransmit only appear in fault-injection runs: a drop is a
  /// transmission attempt lost in transit, a retransmit the follow-up
  /// attempt (or the duplicate provoked by a lost acknowledgement).
  enum class Kind { kSend, kRecv, kCompute, kDrop, kRetransmit };

  Kind kind = Kind::kSend;
  Rank rank = kNoRank;   // who performed the operation
  Rank peer = kNoRank;   // the other side (kNoRank for compute)
  int tag = 0;
  Bytes wire_bytes = 0;  // 0 for compute

  /// kSend: issue time.  kRecv: post time.  kCompute: start time.
  SimTime begin_us = 0;
  /// kSend: injection complete (sender released).  kRecv: message handed
  /// to the program.  kCompute: end of the burst.
  SimTime end_us = 0;
  /// kSend only: when the complete message reached the destination.
  SimTime arrive_us = 0;
  /// kRecv only: whether the program had to block for the message.
  bool blocked = false;
};

class Trace {
 public:
  void record(const TraceEvent& e) { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one rank, in recording (time) order.
  std::vector<TraceEvent> for_rank(Rank r) const;

  /// Latest end/arrive timestamp in the trace.
  SimTime horizon_us() const;

  /// ASCII Gantt chart: one row per rank, `columns` time buckets; 'S' =
  /// sending (injection), 'w' = blocked waiting for a message, 'r' =
  /// receive processing, 'c' = computing, 'x' = attempt lost in transit,
  /// 'R' = retransmitting, '.' = idle.  Later operations overwrite earlier
  /// marks within a bucket.
  std::string render_timeline(int ranks, int columns) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace spb::mp
