// Per-rank buffer of arrived-but-not-yet-received messages.
//
// Sends are eager: the message is injected regardless of whether the
// destination has posted a receive, and parks here on arrival.  Receives
// match by (source rank, tag) — either may be a wildcard — in arrival
// order, which preserves FIFO per (src, dst, tag) triple.
#pragma once

#include <deque>

#include "common/types.h"
#include "mp/message.h"

namespace spb::mp {

/// Source filter accepted by recv: a concrete rank or any source.
inline constexpr Rank kAnySource = -2;

class Mailbox {
 public:
  /// Parks an arrived message.
  void deliver(Message msg);

  /// If a message matching `src` (or kAnySource) and `tag` (or kAnyTag) is
  /// buffered, moves the earliest-arrived one into `out`, returns true.
  bool try_take(Rank src, int tag, Message& out);

  bool empty() const { return inbox_.empty(); }
  std::size_t size() const { return inbox_.size(); }

 private:
  std::deque<Message> inbox_;  // arrival order
};

}  // namespace spb::mp
