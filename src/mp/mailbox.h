// Per-rank buffer of arrived-but-not-yet-received messages.
//
// Sends are eager: the message is injected regardless of whether the
// destination has posted a receive, and parks here on arrival.  Receives
// match by (source rank, tag) — either may be a wildcard — in arrival
// order, which preserves FIFO per (src, dst, tag) triple.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mp/message.h"

namespace spb::mp {

/// Source filter accepted by recv: a concrete rank or any source.
inline constexpr Rank kAnySource = -2;

class Mailbox {
 public:
  /// Parks an arrived message.
  void deliver(Message msg);

  /// If a message matching `src` (or kAnySource) and `tag` (or kAnyTag) is
  /// buffered, moves the earliest-arrived one into `out`, returns true.
  bool try_take(Rank src, int tag, Message& out);

  /// Reliable-delivery sequencing for fault runs: retransmission can
  /// reorder or replay a (src, dst) message stream, but programs are
  /// promised FIFO per (src, dst) — so arrivals pass through a per-source
  /// reorder buffer keyed by Message::seq.  Returns the messages that
  /// become releasable once `msg` lands, in sequence order: empty when the
  /// message is early (held until the gap fills; a predecessor always
  /// arrives because final attempts are never dropped) or a duplicate
  /// (`duplicate` set, message discarded).  Only called for messages
  /// carrying a sequence number, so fault-free runs never touch this.
  std::vector<Message> sequence(Message msg, bool& duplicate);

  bool empty() const { return inbox_.empty(); }
  std::size_t size() const { return inbox_.size(); }

 private:
  struct SeqState {
    std::uint32_t next = 0;                 // next seq to release
    std::map<std::uint32_t, Message> held;  // early arrivals
  };

  std::deque<Message> inbox_;  // arrival order
  std::unordered_map<Rank, SeqState> seq_;  // fault runs only, per source
};

}  // namespace spb::mp
