// The message-passing runtime: p logical ranks, each executing a coroutine
// program, exchanging Payloads over a contention-aware NetworkModel.
//
// Programming model (MPI-flavoured, but simulated):
//
//   sim::Task program(mp::Comm& comm) {
//     co_await comm.send(dst, payload);            // eager, buffered
//     mp::Message m = co_await comm.recv(src);     // blocks until arrival
//     co_await comm.merge(mine, std::move(m.payload));  // combine + CPU cost
//     comm.mark_iteration();                       // metrics bucket boundary
//   }
//
// Semantics:
//  * send() is *eager*: it blocks the sender only for its software overhead
//    plus the time its injection channel (and the reserved path) serializes
//    the bytes, never for a matching receive.  Pairwise exchanges are
//    therefore deadlock-free by construction.
//  * recv() blocks until a matching message has fully arrived, then costs
//    the receive software overhead.
//  * All ranks start at simulated time 0 (the paper's algorithms begin
//    after one global synchronization).
//  * If the simulation drains with unfinished programs, run() throws
//    DeadlockError naming every rank and the source it is stuck waiting on.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "mp/mailbox.h"
#include "mp/message.h"
#include "mp/metrics.h"
#include "mp/payload.h"
#include "mp/schedule.h"
#include "mp/trace.h"
#include "net/mapping.h"
#include "net/network.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace spb::mp {

/// Software-layer costs, distinct from the wire-level net::NetParams.
struct CommParams {
  /// Sender-side software overhead per message, microseconds.
  double send_overhead_us = 20.0;
  /// Receiver-side software overhead per message, microseconds.
  double recv_overhead_us = 20.0;
  /// Extra software cost per send and per recv when the algorithm runs on
  /// the (heavier) portable MPI layer instead of the native one.
  double mpi_extra_us = 0.0;
  /// Message combining: fixed cost plus per-byte copy cost.
  double combine_fixed_us = 2.0;
  double combine_per_byte_us = 0.008;
  /// Envelope sizes added to the payload on the wire.
  Bytes header_bytes = 32;
  Bytes chunk_header_bytes = 8;
};

/// Thrown when programs are blocked forever.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Sharded-engine statistics of one run (see Runtime::enable_parallel).
/// Every field is independent of the worker-thread count — reports built
/// from it diff clean across SPB_SIM_THREADS settings — so the requested
/// thread count itself is deliberately absent.
struct ParallelStats {
  /// Region/shard count the event space was partitioned into; 0 means the
  /// run used the classic serial loop (default, or fallback).
  int shards = 0;
  /// Self-lookahead: the conservative window floor (Runtime::lookahead_us
  /// at run time).
  double window_us = 0;
  /// Narrowest / widest region-to-region sub-window delay from the
  /// topology's hop distances (both equal window_us when the machine gives
  /// no cross-region slack).
  double lookahead_min_us = 0;
  double lookahead_max_us = 0;
  /// Windows executed.
  std::uint64_t windows = 0;
  /// Shard-window slots that executed nothing (stall measure).
  std::uint64_t idle_shard_windows = 0;
  /// Cross-shard transfers staged through window barriers over the run.
  std::uint64_t staged_xfers = 0;
  /// Barrier occurrences of a staged transfer held past the safe horizon
  /// (sub-window hold-back pressure; each transfer counts once per barrier
  /// that holds it).
  std::uint64_t held_xfers = 0;
  struct Shard {
    std::uint64_t events = 0;
    std::uint64_t peak_queue_depth = 0;
    std::uint64_t busy_windows = 0;
    std::uint64_t idle_windows = 0;
  };
  std::vector<Shard> per_shard;

  bool parallel() const { return shards > 0; }
};

/// Result of Runtime::run().
struct RunOutcome {
  /// Completion time of the slowest rank (the paper's reported time).
  SimTime makespan_us = 0;
  RunMetrics metrics;
  net::NetworkStats network;
  /// Busy time of every directed network link, indexed by LinkId — the
  /// raw material of contention heatmaps (see examples/link_heatmap).
  std::vector<double> link_busy_us;
  std::uint64_t events = 0;
  /// High-water mark of the simulator's pending-event queue.
  std::size_t peak_queue_depth = 0;
  /// Per-phase table (empty unless the algorithm annotated phases through
  /// Comm::begin_phase); rows are indexed by interned phase id and carry
  /// the phase names.
  std::vector<PhaseTotals> phases;
  /// Sharded-engine statistics (par.parallel() is false for serial runs).
  ParallelStats par;
};

class Runtime;

/// Per-rank communication endpoint handed to rank programs.
class Comm {
 public:
  Rank rank() const { return rank_; }
  int size() const;
  SimTime now() const;

  /// Wire size of a payload under the configured envelope overheads.
  Bytes wire_bytes(const Payload& p) const;

  /// Wire size of a hypothetical payload of `payload_bytes` in `chunks`
  /// chunks (used to size segmented transfers before the data exists).
  Bytes wire_bytes_for(Bytes payload_bytes, std::size_t chunks) const;

  /// CPU cost of merging `bytes` of received data into a local buffer.
  double combine_cost_us(Bytes bytes) const;

  // --- awaitables -------------------------------------------------------

  struct [[nodiscard]] SendAwaiter {
    Comm* comm;
    Rank dst;
    Payload payload;
    int tag;
    /// 0 = compute from the payload; otherwise the explicit wire size used
    /// by send_sized (segment traffic).
    Bytes wire_override = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct [[nodiscard]] RecvAwaiter {
    Comm* comm;
    Rank src;
    int tag;
    Message result;
    bool blocked = false;
    SimTime called_at = 0;
    /// Schedule-recording stamp of this receive post (-1 = not recording).
    int sched_op = -1;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Message await_resume();
  };

  struct [[nodiscard]] ComputeAwaiter {
    Comm* comm;
    double us;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct [[nodiscard]] MergeAwaiter {
    Comm* comm;
    Payload* into;
    Payload add;
    bool dedup;
    ComputeAwaiter compute;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      compute.await_suspend(h);
    }
    void await_resume();
  };

  /// Sends `payload` to rank dst (dst != rank()).  Completes when the
  /// sender's side of the transfer is done (injection finished).
  SendAwaiter send(Rank dst, Payload payload, int tag = tags::kData);

  /// Sends a message with an explicit wire size, independent of the
  /// payload (which may be empty).  Segmented transfers move their bytes
  /// as sized filler messages and ship the symbolic payload on the last
  /// segment.
  SendAwaiter send_sized(Rank dst, Payload payload, Bytes wire_bytes,
                         int tag = tags::kData);

  /// Receives the next message matching `src` (or any source) and `tag`
  /// (or any tag).  Any-source receives should pin a tag — see mp/message.h.
  RecvAwaiter recv(Rank src = kAnySource, int tag = kAnyTag);

  /// Spends `us` microseconds of CPU time.
  ComputeAwaiter compute(double us);

  /// Merges `add` into `into`, charging the combining CPU cost.  With
  /// dedup, duplicate sources collapse (PersAlltoAll-style redundancy).
  MergeAwaiter merge(Payload& into, Payload add, bool dedup = false);

  /// Starts a new metrics iteration (see mp/metrics.h).
  void mark_iteration();

  // --- phase annotation -------------------------------------------------
  // Algorithms bracket their stages ("gather", "bcast", per-dimension
  // rounds ...) so metrics and exported timelines break down by stage.
  // Phases nest; operations are attributed to the innermost open phase.
  // Names are interned runtime-wide, so every rank calling
  // begin_phase("gather") lands in the same table row.  Phases left open
  // when a program finishes are closed automatically at its completion
  // time.

  void begin_phase(std::string_view name);
  void end_phase();
  /// Interned id of the innermost open phase (-1 = outside any phase).
  int current_phase() const {
    return phase_stack_.empty() ? -1 : phase_stack_.back().id;
  }

  const RankMetrics& metrics() const { return metrics_; }

 private:
  friend class Runtime;
  Comm(Runtime& rt, Rank rank) : rt_(&rt), rank_(rank) {}

  Runtime* rt_;
  Rank rank_;
  Mailbox mailbox_;
  RankMetrics metrics_;

  struct OpenPhase {
    int id;
    SimTime began;
  };
  std::vector<OpenPhase> phase_stack_;

  /// The single receive this rank's coroutine may be parked on.
  struct PendingRecv {
    Rank src = kAnySource;
    int tag = kAnyTag;
    RecvAwaiter* awaiter = nullptr;
    std::coroutine_handle<> handle;
  };
  std::optional<PendingRecv> pending_;
};

class Runtime {
 public:
  /// Builds a runtime for `mapping.rank_count()` ranks over the given
  /// network.  The mapping must fit inside the topology.
  Runtime(std::shared_ptr<const net::Topology> topo, net::NetParams net,
          CommParams comm, net::RankMapping mapping);

  int size() const { return mapping_.rank_count(); }
  Comm& comm(Rank r);

  /// Registers rank r's program.  Every rank needs exactly one program
  /// before run().
  void spawn(Rank r, sim::Task task);

  /// Runs all programs from simulated time 0 until completion.  One-shot.
  RunOutcome run();

  /// Installs a fault plan (before run()): degraded links slow the network
  /// model, stragglers stretch software overheads, and message faults turn
  /// on per-send retransmission with duplicate suppression.  All delivery
  /// guarantees hold under any plan — the final attempt always lands.  A
  /// null plan (the default) leaves every fault hook on its zero-cost path.
  void set_fault_plan(fault::FaultPlanPtr plan);
  const fault::FaultPlanPtr& fault_plan() const { return plan_; }

  /// Software-overhead multiplier of rank r (1.0 except for stragglers).
  double slowdown(Rank r) const {
    return plan_ == nullptr ? 1.0 : plan_->rank_slowdown(r);
  }

  /// Requests the sharded conservative-window engine (sim/sharded.h) with
  /// up to `threads` drain workers for run(); `threads == -1` sizes the
  /// pool automatically from the host's core count (clamped to the shard
  /// count — per-window engagement then follows the engine's live
  /// occupancy stats, so idle shards never cost wakeups).  Outcomes are
  /// byte-identical for every accepted value — the shard partition, the
  /// per-region sub-window plan, and the barrier's canonical reserve order
  /// depend only on machine and parameters, never on the worker count.
  /// run() silently falls back to the classic serial loop when an
  /// order-sensitive observer is on (tracing, schedule recording), when
  /// the lookahead collapses to zero (e.g. zero-overhead test fixtures),
  /// or when p < 2; the fallback decision is itself thread-count
  /// independent.
  void enable_parallel(int threads);

  /// The conservative window width for this runtime's parameters: the
  /// earliest a cross-region event produced at the window barrier can land
  /// after its cause.  Sends release nothing before the sender's software
  /// overhead (send_overhead_us + mpi_extra_us, stragglers only stretch
  /// it); under message faults, barrier-ordered retransmission also bounds
  /// the window by the network latency floor (alpha + one hop) and the
  /// retransmit timeout.  <= 0 means no lookahead: parallel mode falls
  /// back to the serial loop.
  double lookahead_us() const;

  /// Enables event tracing (before run()); see mp/trace.h.
  void enable_trace() { trace_enabled_ = true; }
  const Trace& trace() const { return trace_; }

  /// Installs a per-link usage accumulator on the network model (before
  /// run()); see net::LinkUsageProbe.  Null (the default) keeps the
  /// zero-cost path — mirror of the fault-plan hook.
  void set_link_probe(net::LinkUsageProbe* probe) {
    net_.set_usage_probe(probe);
  }

  /// Phase names interned by Comm::begin_phase, indexed by phase id.
  const std::vector<std::string>& phase_names() const { return phase_names_; }

  /// Enables symbolic schedule recording (before run()); see mp/schedule.h.
  /// The schedule survives a DeadlockError thrown by run(), which is what
  /// the static analyzer inspects for hung programs.
  void enable_schedule_recording();
  bool schedule_recording() const { return schedule_enabled_; }
  const Schedule& schedule() const { return schedule_; }

  sim::Simulator& simulator() { return sim_; }
  const net::NetworkModel& network() const { return net_; }
  const CommParams& comm_params() const { return params_; }
  const net::RankMapping& mapping() const { return mapping_; }

 private:
  friend class Comm;

  /// Called at a message's arrival time.  Fault-run messages (seq >= 0)
  /// first pass the mailbox's reorder buffer, which suppresses duplicates
  /// and restores FIFO per (src, dst) despite retransmission; whatever it
  /// releases is handed to a parked recv or buffered.
  void deliver(Message msg);
  void deliver_now(Message msg);

  /// Fault-run send path: decides the fate of one transmission attempt of
  /// the stashed message (delivered, delivered-but-ack-lost, or dropped
  /// with a scheduled retransmit) from the reserved transfer's timing.
  /// Serial path: runs inline at reserve time.  Parallel path: runs at the
  /// window barrier only (it touches the network model).
  void after_reserve(std::uint32_t slot, int attempt, const net::Transfer& t);
  /// Re-injects a stashed message for transmission attempt `attempt`,
  /// ready to inject at `ready`.  Parallel path: barrier only.
  void retransmit(std::uint32_t slot, int attempt, SimTime ready);

  // In-flight message pool.  Delivery events used to capture the whole
  // Message inside their callback, forcing a heap allocation per event;
  // parking the message in a slot-reusing pool lets the callback capture
  // just (runtime, slot) and stay inside EventFn's inline buffer.
  std::uint32_t stash_inflight(Message msg);
  Message unstash_inflight(std::uint32_t slot);

  /// Interns a phase name.  Serial path: runtime-wide, so ids agree across
  /// ranks.  Parallel path: per-shard tables (interning from concurrent
  /// drains must not share state); run() merges them into the canonical
  /// runtime-wide table and remaps every rank's metrics.
  int phase_id(std::string_view name);

  // --- parallel engine plumbing (see sim/sharded.h) ---------------------
  //
  // The network model is zero-lookahead shared state: reserve() claims
  // whole paths globally and its results depend on reservation *order*.
  // Shards therefore never call it.  A send (or retransmit) event only
  // stages a transfer request into its shard's staging vector; the window
  // barrier — single-threaded, all drains quiescent — executes every
  // staged reserve in the canonical (initiate time, staging shard,
  // staging order) order and schedules the resulting delivery and
  // sender-resume events into the next window, which the lookahead
  // guarantees they cannot precede.

  /// One staged transfer request (per-shard SPSC: written by the shard's
  /// drain inside the window, consumed by the barrier).
  struct StagedXfer {
    /// Time of the staging event — the canonical order's major key.
    SimTime initiate = 0;
    /// Earliest injection time passed to NetworkModel::reserve.
    SimTime ready = 0;
    /// kSend: the message (stashed into the in-flight pool at the
    /// barrier, where pool growth is single-threaded).
    Message msg;
    /// kRetransmit: in-flight pool slot of the stashed message.
    std::uint32_t slot = 0;
    /// kRetransmit: transmission attempt number.
    int attempt = 0;
    /// kSend: sender coroutine, resumed at injection completion.
    std::coroutine_handle<> h;
    enum class Kind : std::uint8_t { kSend, kRetransmit };
    Kind kind = Kind::kSend;
  };

  bool parallel_active() const { return engine_ != nullptr; }
  /// Clock of the calling context: the draining shard's clock under the
  /// engine, the global simulator clock otherwise.
  SimTime now_us() const;
  /// Schedules fn at t on rank r's home shard (parallel) or the simulator
  /// (serial).
  void sched_at_rank(SimTime t, Rank r, sim::EventFn fn);
  /// Schedules a retransmit-staging event for the stashed message in slot
  /// `slot` at time t (barrier context under the engine).
  void sched_retransmit(SimTime t, std::uint32_t slot, int attempt);
  /// Stages a send request from the current drain (parallel path only).
  void stage_send(Message msg, SimTime ready, std::coroutine_handle<> h);
  /// The window barrier: executes all staged requests in canonical order.
  void sequencer_flush();
  /// Merges the per-shard phase tables into phase_names_ and remaps every
  /// rank's shard-local phase ids to the canonical ones.
  void merge_shard_phases();

  sim::Simulator sim_;
  net::NetworkModel net_;
  CommParams params_;
  net::RankMapping mapping_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::vector<sim::Task> tasks_;
  std::vector<SimTime> done_at_;
  std::vector<Message> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  fault::FaultPlanPtr plan_;      // null = no faults
  std::vector<std::uint32_t> seq_;  // next seq per (src * p + dst); empty
                                    // unless the plan has message faults
  bool ran_ = false;
  bool trace_enabled_ = false;
  Trace trace_;
  std::vector<std::string> phase_names_;
  bool schedule_enabled_ = false;
  Schedule schedule_;

  // Parallel-engine state; all empty/null on the serial path (the default),
  // so serial runs pay nothing beyond a null check per dispatch.
  int par_threads_ = 0;  // 0 = serial loop; -1 = auto-size from the host
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<int> shard_of_rank_;
  std::vector<std::vector<StagedXfer>> staged_;  // indexed by shard
  /// Consumed prefix of each staging vector: entries initiated at or past
  /// the engine's safe horizon stay parked across barriers (sub-window
  /// hold-back) until the horizon passes them.
  std::vector<std::size_t> staged_cursor_;
  /// Per-shard in-flight free lists: a delivery event frees its slot into
  /// the executing shard's list (no shared mutation inside a window); the
  /// barrier's stash scans them in shard order (deterministic reuse).
  std::vector<std::vector<std::uint32_t>> inflight_free_par_;
  std::vector<std::vector<std::string>> phase_names_par_;  // per shard
};

}  // namespace spb::mp
