// Symbolic message payloads.
//
// A broadcast message is represented as a set of chunks, each "the original
// message of source rank s, b bytes long".  Transfer times depend only on
// byte counts, so carrying real buffers would add memory traffic (up to
// p * s * L ~ 1 GB at the largest experiment sizes) without changing any
// simulated number.  Chunk algebra gives us exact correctness checking
// instead: after a run, every rank must hold precisely one chunk per source
// with the right size.
//
// Payloads keep their chunks sorted by source rank and reject duplicate
// sources on merge with a CheckError — a duplicate means an algorithm sent
// the same source's data to the same rank twice, which the paper's
// combining model never does.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace spb::mp {

/// One source's original message.
struct Chunk {
  Rank source = kNoRank;
  Bytes bytes = 0;
  bool operator==(const Chunk&) const = default;
};

class Payload {
 public:
  Payload() = default;

  /// The initial payload of a source rank: one chunk of `bytes` bytes.
  static Payload original(Rank source, Bytes bytes);

  /// Builds from arbitrary chunks (sorted and validated).
  static Payload of(std::vector<Chunk> chunks);

  bool empty() const { return chunks_.empty(); }
  std::size_t chunk_count() const { return chunks_.size(); }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// Sum of chunk sizes.
  Bytes total_bytes() const;

  /// True iff a chunk from `source` is present.
  bool has_source(Rank source) const;

  /// Merges `other` into this payload.  The chunk sets must be disjoint —
  /// receiving the same source twice indicates an algorithm bug.
  void merge(const Payload& other);

  /// Like merge() but silently keeps one copy of duplicated sources
  /// (duplicate sizes must agree).  PersAlltoAll-style algorithms that
  /// deliberately send originals redundantly use this.
  void merge_dedup(const Payload& other);

  /// Removes all chunks (used when a rank forwards its data away during
  /// repositioning).
  void clear() { chunks_.clear(); }

  bool operator==(const Payload&) const = default;

  /// "{0:4096, 7:4096}" — diagnostics.
  std::string to_string() const;

 private:
  std::vector<Chunk> chunks_;  // sorted by source, unique sources
};

}  // namespace spb::mp
