// Symbolic message payloads.
//
// A broadcast message is represented as a set of chunks, each "the original
// message of source rank s, b bytes long".  Transfer times depend only on
// byte counts, so carrying real buffers would add memory traffic (up to
// p * s * L ~ 1 GB at the largest experiment sizes) without changing any
// simulated number.  Chunk algebra gives us exact correctness checking
// instead: after a run, every rank must hold precisely one chunk per source
// with the right size.
//
// Payloads keep their chunks sorted by source rank and reject duplicate
// sources on merge with a CheckError — a duplicate means an algorithm sent
// the same source's data to the same rank twice, which the paper's
// combining model never does.
//
// Storage is a SmallVec with a four-chunk inline buffer (most messages in
// the halving algorithms carry a handful of chunks), merges happen in
// place reusing existing capacity, and the total byte count is cached —
// wire_bytes() is called once per send, which made the O(chunks) sum a
// measurable cost in large sweeps.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/small_vec.h"
#include "common/types.h"

namespace spb::mp {

/// One source's original message.
struct Chunk {
  Rank source = kNoRank;
  Bytes bytes = 0;
  bool operator==(const Chunk&) const = default;
};

class Payload {
 public:
  /// Inline chunk capacity: payloads at or below this size never touch the
  /// heap.
  static constexpr std::size_t kInlineChunks = 4;

  Payload() = default;

  /// The initial payload of a source rank: one chunk of `bytes` bytes.
  static Payload original(Rank source, Bytes bytes);

  /// Builds from arbitrary chunks (sorted and validated).
  static Payload of(std::vector<Chunk> chunks);

  bool empty() const { return chunks_.empty(); }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::span<const Chunk> chunks() const {
    return {chunks_.data(), chunks_.size()};
  }

  /// Current chunk storage capacity (tests assert that merges reuse it).
  std::size_t chunk_capacity() const { return chunks_.capacity(); }

  /// Sum of chunk sizes (cached; O(1)).
  Bytes total_bytes() const { return total_bytes_; }

  /// True iff a chunk from `source` is present.
  bool has_source(Rank source) const;

  /// Merges `other` into this payload, in place.  The chunk sets must be
  /// disjoint — receiving the same source twice indicates an algorithm bug.
  void merge(const Payload& other);

  /// Like merge() but silently keeps one copy of duplicated sources
  /// (duplicate sizes must agree).  PersAlltoAll-style algorithms that
  /// deliberately send originals redundantly use this.
  void merge_dedup(const Payload& other);

  /// Removes all chunks (used when a rank forwards its data away during
  /// repositioning).
  void clear() {
    chunks_.clear();
    total_bytes_ = 0;
  }

  bool operator==(const Payload&) const = default;

  /// "{0:4096, 7:4096}" — diagnostics.
  std::string to_string() const;

 private:
  void merge_impl(const Payload& other, bool allow_dup);
  void undo_partial_merge(const Chunk* b, std::size_t n, std::size_t m,
                          std::size_t j, std::size_t k);

  SmallVec<Chunk, kInlineChunks> chunks_;  // sorted by source, unique
  Bytes total_bytes_ = 0;
};

}  // namespace spb::mp
