#include "mp/schedule.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "mp/mailbox.h"
#include "mp/message.h"

namespace spb::mp {

std::string ScheduleOp::to_string() const {
  std::ostringstream os;
  os << "rank " << rank << " step " << step << ": ";
  if (is_send()) {
    os << "send(dst=" << peer << ", tag=" << tag << ", " << wire_bytes
       << "B";
  } else {
    os << "recv(src=";
    if (peer == kAnySource) {
      os << "any";
    } else {
      os << peer;
    }
    os << ", tag=";
    if (tag == kAnyTag) {
      os << "any";
    } else {
      os << tag;
    }
  }
  if (!chunk_sources.empty()) {
    os << ", chunks={";
    for (std::size_t i = 0; i < chunk_sources.size(); ++i) {
      if (i > 0) os << ",";
      os << chunk_sources[i];
    }
    os << "}";
  }
  os << ")";
  if (is_recv() && !completed) os << " [never completed]";
  return os.str();
}

Schedule::Schedule(int rank_count) : rank_count_(rank_count) {
  SPB_REQUIRE(rank_count >= 1, "schedule needs >= 1 rank");
  by_rank_.resize(static_cast<std::size_t>(rank_count));
}

Schedule Schedule::from_ops(int rank_count, std::vector<ScheduleOp> ops) {
  Schedule s(rank_count);
  // Old id -> new id (-1 for ids not present any more).
  int max_old = -1;
  for (const ScheduleOp& op : ops) max_old = std::max(max_old, op.id);
  std::vector<int> remap(static_cast<std::size_t>(max_old + 1), -1);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    SPB_REQUIRE(ops[i].rank >= 0 && ops[i].rank < rank_count,
                "op rank " << ops[i].rank << " outside 0.." << rank_count - 1);
    SPB_REQUIRE(ops[i].id >= 0, "op " << i << " has no id; assign distinct "
                                      << "ids before from_ops()");
    remap[static_cast<std::size_t>(ops[i].id)] = static_cast<int>(i);
  }
  std::vector<int> next_step(static_cast<std::size_t>(rank_count), 0);
  s.ops_ = std::move(ops);
  for (std::size_t i = 0; i < s.ops_.size(); ++i) {
    ScheduleOp& op = s.ops_[i];
    op.id = static_cast<int>(i);
    op.step = next_step[static_cast<std::size_t>(op.rank)]++;
    if (op.match >= 0) {
      op.match = remap[static_cast<std::size_t>(op.match)];
      // A recv whose matched send was removed is no longer completed: the
      // static checks must re-derive its fate.
      if (op.match < 0 && op.is_recv()) op.completed = false;
    }
    s.by_rank_[static_cast<std::size_t>(op.rank)].push_back(op.id);
  }
  return s;
}

const std::vector<int>& Schedule::ops_of_rank(Rank r) const {
  SPB_REQUIRE(r >= 0 && r < rank_count_, "rank " << r << " out of range");
  return by_rank_[static_cast<std::size_t>(r)];
}

int Schedule::record_send(Rank rank, Rank dst, int tag, Bytes wire_bytes,
                          std::vector<Rank> chunk_sources,
                          Bytes payload_bytes) {
  ScheduleOp op;
  op.kind = ScheduleOp::Kind::kSend;
  op.id = static_cast<int>(ops_.size());
  op.rank = rank;
  op.step = static_cast<int>(by_rank_[static_cast<std::size_t>(rank)].size());
  op.peer = dst;
  op.tag = tag;
  op.wire_bytes = wire_bytes;
  op.chunk_sources = std::move(chunk_sources);
  op.payload_bytes = payload_bytes;
  by_rank_[static_cast<std::size_t>(rank)].push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int Schedule::record_recv_post(Rank rank, Rank src_filter, int tag_filter) {
  ScheduleOp op;
  op.kind = ScheduleOp::Kind::kRecv;
  op.id = static_cast<int>(ops_.size());
  op.rank = rank;
  op.step = static_cast<int>(by_rank_[static_cast<std::size_t>(rank)].size());
  op.peer = src_filter;
  op.tag = tag_filter;
  by_rank_[static_cast<std::size_t>(rank)].push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void Schedule::record_recv_match(int recv_id, int send_id, Bytes wire_bytes,
                                 std::vector<Rank> chunk_sources,
                                 Bytes payload_bytes) {
  SPB_REQUIRE(recv_id >= 0 && recv_id < static_cast<int>(ops_.size()),
              "recv op " << recv_id << " out of range");
  ScheduleOp& recv = ops_[static_cast<std::size_t>(recv_id)];
  SPB_CHECK(recv.is_recv());
  recv.completed = true;
  recv.match = send_id;
  recv.wire_bytes = wire_bytes;
  recv.chunk_sources = std::move(chunk_sources);
  recv.payload_bytes = payload_bytes;
  if (send_id >= 0) {
    ScheduleOp& send = ops_[static_cast<std::size_t>(send_id)];
    SPB_CHECK(send.is_send());
    SPB_CHECK_MSG(send.match < 0,
                  "send op " << send_id << " consumed twice");
    send.match = recv_id;
  }
}

}  // namespace spb::mp
