// Symbolic communication-schedule recording.
//
// When enabled on a Runtime, every send and every posted receive is
// recorded as a ScheduleOp — who, to/from whom, which tag, which source
// chunks, and at which per-rank program step — together with the match
// edge (which send a receive actually consumed).  Unlike mp::Trace, which
// captures *timing*, a Schedule captures the *logical* communication
// structure, so it can be checked statically without advancing the
// simulator: send/recv matching, deadlock-freedom of the wait-for graph,
// chunk coverage, and round/volume bounds (see src/analyze).
//
// Recv ops are recorded when the receive is *posted*, not when it
// completes; a receive that never matches (a deadlocked program) is still
// in the schedule, flagged as incomplete — which is exactly what the
// static deadlock analysis needs.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace spb::mp {

struct ScheduleOp {
  enum class Kind { kSend, kRecv };

  Kind kind = Kind::kSend;
  /// Index of this op in Schedule::ops(); stable identifier for match
  /// edges and reports.
  int id = -1;
  /// The rank that issued the operation.
  Rank rank = kNoRank;
  /// Program step of the op on its rank: 0, 1, 2, ... over that rank's
  /// sends and receive posts, in program order.
  int step = -1;
  /// kSend: destination rank.  kRecv: source filter (kAnySource allowed).
  Rank peer = kNoRank;
  /// kSend: message tag.  kRecv: tag filter (kAnyTag allowed).
  int tag = 0;
  /// kSend: bytes on the wire.  kRecv: wire size of the matched message
  /// (0 while unmatched).
  Bytes wire_bytes = 0;
  /// Source ranks of the chunks carried (kSend) or delivered (kRecv,
  /// matched).  Empty for sized filler segments, which move bytes only.
  std::vector<Rank> chunk_sources;
  /// Payload bytes summed over the carried chunks (the wire size also
  /// counts envelope and filler bytes).
  Bytes payload_bytes = 0;
  /// kSend: id of the recv op that consumed this message (-1 = never
  /// received).  kRecv: id of the matched send (-1 = never matched).
  int match = -1;
  /// kRecv only: the receive completed during the recorded run.
  bool completed = false;

  bool is_send() const { return kind == Kind::kSend; }
  bool is_recv() const { return kind == Kind::kRecv; }

  /// "rank 3 step 2: send(dst=7, tag=0, 4128B, chunks={0,5})" — reports.
  std::string to_string() const;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int rank_count);

  /// Rebuilds a schedule from a transformed op list (the mutation harness
  /// in src/analyze uses this).  Ops keep their relative order; ids, steps
  /// and match edges are recomputed/remapped, with match edges to removed
  /// ops cleared.
  static Schedule from_ops(int rank_count, std::vector<ScheduleOp> ops);

  int rank_count() const { return rank_count_; }
  bool empty() const { return ops_.empty(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<ScheduleOp>& ops() const { return ops_; }
  const ScheduleOp& op(int id) const { return ops_[static_cast<std::size_t>(id)]; }

  /// Ids of one rank's ops, in program order.
  const std::vector<int>& ops_of_rank(Rank r) const;

  // --- recording hooks (called by mp::Runtime) -------------------------

  /// Records a send; returns its op id.
  int record_send(Rank rank, Rank dst, int tag, Bytes wire_bytes,
                  std::vector<Rank> chunk_sources, Bytes payload_bytes);

  /// Records a posted receive (not yet matched); returns its op id.
  int record_recv_post(Rank rank, Rank src_filter, int tag_filter);

  /// Marks recv op `recv_id` as completed by send op `send_id` (-1 when
  /// the consumed message predates recording) and fills in what arrived.
  void record_recv_match(int recv_id, int send_id, Bytes wire_bytes,
                         std::vector<Rank> chunk_sources,
                         Bytes payload_bytes);

 private:
  int rank_count_ = 0;
  std::vector<ScheduleOp> ops_;
  std::vector<std::vector<int>> by_rank_;  // per-rank op ids, program order
};

}  // namespace spb::mp
