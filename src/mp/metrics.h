// Per-rank and per-run counters matching the parameters of the paper's
// Figure 2:
//
//   congestion   max sends+receives handled by one processor in a single
//                iteration,
//   wait         number of times a processor blocked for data,
//   #send/rec    total send and receive operations per processor,
//   av_msg_lgth  average length of the messages a processor sends/receives,
//   av_act_proc  average number of active processors per iteration.
//
// Iterations are marked explicitly by the algorithms through
// Comm::mark_iteration(); a rank is "active" in an iteration if it sent or
// received at least one message during it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace spb::mp {

/// Counters for one iteration of one rank.
struct IterationCounters {
  std::uint32_t sends = 0;
  std::uint32_t recvs = 0;
  Bytes bytes = 0;  // sum of message sizes sent + received

  bool active() const { return sends + recvs > 0; }
};

/// Counters for one annotated algorithm phase of one rank (see
/// Comm::begin_phase).  Operations are attributed to the innermost open
/// phase only, so per-phase numbers sum to the rank totals plus whatever
/// happened outside any phase.
struct PhaseCounters {
  std::uint64_t entries = 0;  // begin_phase() calls for this phase name
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t waits = 0;
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
  SimTime wait_us = 0;
  SimTime compute_us = 0;
  SimTime span_us = 0;  // wall-clock begin..end, summed over entries
};

/// Counters for one rank over a whole run.
class RankMetrics {
 public:
  void on_send(Bytes message_bytes, int phase = -1);
  void on_recv(Bytes message_bytes, bool blocked, SimTime wait_us,
               int phase = -1);
  void on_compute(SimTime us, int phase = -1);
  void mark_iteration();

  // Phase bookkeeping (driven by Comm::begin_phase/end_phase; phase ids are
  // interned runtime-wide, see Runtime::phase_id).
  void phase_begin(int phase);
  void phase_span(int phase, SimTime span_us);

  // Fault-injection bookkeeping (sender side for drops/retransmits,
  // receiver side for suppressed duplicates); all stay zero without faults.
  void on_transit_drop() { ++transit_drops_; }
  void on_retransmit() { ++retransmits_; }
  void on_duplicate() { ++duplicates_; }

  std::uint64_t sends() const { return sends_; }
  std::uint64_t recvs() const { return recvs_; }
  std::uint64_t send_recv_total() const { return sends_ + recvs_; }
  Bytes bytes_sent() const { return bytes_sent_; }
  Bytes bytes_received() const { return bytes_received_; }
  /// Times a recv had to block because the message had not arrived yet.
  std::uint64_t waits() const { return waits_; }
  /// Transmission attempts this rank lost in transit (fault runs only).
  std::uint64_t transit_drops() const { return transit_drops_; }
  /// Retransmissions this rank issued (fault runs only).
  std::uint64_t retransmits() const { return retransmits_; }
  /// Duplicate deliveries this rank suppressed (fault runs only).
  std::uint64_t duplicates() const { return duplicates_; }
  /// Total time spent blocked in recv.
  SimTime wait_us() const { return wait_us_; }
  SimTime compute_us() const { return compute_us_; }

  /// Max sends+recvs within one iteration (the paper's "congestion").
  std::uint32_t congestion() const;
  /// Mean message length over all messages this rank touched (bytes).
  double avg_message_bytes() const;

  /// Completed iterations, plus the trailing partial one if non-empty.
  const std::vector<IterationCounters>& iterations() const { return iters_; }

  /// Per-phase counters, indexed by interned phase id (may be shorter than
  /// the runtime's phase table if this rank never entered later phases).
  const std::vector<PhaseCounters>& phases() const { return phases_; }

  /// Closes the trailing iteration; called by the runtime at the end.
  void finalize();

  /// Reindexes the per-phase table: counters recorded under local phase id
  /// `i` move to global id `to_global[i]`.  Used by the parallel runtime,
  /// where shards intern phase names independently and the shard-local ids
  /// must be folded into one canonical table after the run.
  void remap_phases(const std::vector<int>& to_global);

 private:
  IterationCounters& current();
  PhaseCounters& phase_at(int phase);

  std::uint64_t sends_ = 0;
  std::uint64_t recvs_ = 0;
  Bytes bytes_sent_ = 0;
  Bytes bytes_received_ = 0;
  std::uint64_t waits_ = 0;
  std::uint64_t transit_drops_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t duplicates_ = 0;
  SimTime wait_us_ = 0;
  SimTime compute_us_ = 0;
  std::vector<IterationCounters> iters_;
  std::vector<PhaseCounters> phases_;
  bool finalized_ = false;
};

/// One row of the per-run phase table: PhaseCounters aggregated over all
/// ranks, carrying the interned phase name so consumers (spb_report, the
/// obs exporters) need no access to the runtime.
struct PhaseTotals {
  std::string name;
  std::uint64_t entries = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t waits = 0;
  Bytes bytes_sent = 0;
  Bytes bytes_received = 0;
  SimTime wait_us = 0;
  SimTime compute_us = 0;
  /// Sum over ranks of per-rank phase spans (busy-time view).
  SimTime total_span_us = 0;
  /// Max over ranks of per-rank phase span (critical-path view).
  SimTime max_span_us = 0;

  static std::vector<PhaseTotals> aggregate(
      const std::vector<RankMetrics>& ranks,
      const std::vector<std::string>& names);
};

/// Whole-run aggregation over all ranks.
struct RunMetrics {
  std::uint64_t total_sends = 0;
  std::uint64_t total_recvs = 0;
  Bytes total_bytes_sent = 0;
  /// Max over ranks of per-iteration sends+recvs (Figure 2 "congestion").
  std::uint32_t congestion = 0;
  /// Max over ranks of blocking-recv count (Figure 2 "wait").
  std::uint64_t max_waits = 0;
  /// Max over ranks of total send+recv operations (Figure 2 "#send/rec").
  std::uint64_t max_send_recv = 0;
  /// Max over ranks of the mean message length (Figure 2 "av_msg_lgth").
  double av_msg_lgth = 0;
  /// Average number of active ranks per iteration ("av_act_proc"), using
  /// the longest rank-local iteration sequence as the global axis.
  double av_act_proc = 0;
  /// Number of iterations of the longest rank.
  std::size_t iterations = 0;
  /// Fault-injection totals over all ranks (zero without faults).
  std::uint64_t transit_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;

  static RunMetrics aggregate(const std::vector<RankMetrics>& ranks);
};

}  // namespace spb::mp
