// An in-flight or delivered message.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "mp/payload.h"

namespace spb::mp {

/// Matches any tag in recv().
inline constexpr int kAnyTag = -1;

/// Conventional tags used by the algorithm phases; any-source receives
/// always pin a tag so a later phase's traffic cannot be stolen by an
/// earlier phase still draining.
namespace tags {
inline constexpr int kData = 0;      // broadcast payload traffic
inline constexpr int kExchange = 1;  // Part_* final inter-group exchange
inline constexpr int kPermute = 2;   // repositioning permutation
inline constexpr int kGather = 3;    // Hier_* leader-gather phase: keeps the
                                     // leaders' any-source gather from
                                     // matching kData halving traffic that
                                     // arrives early from other leaders
}  // namespace tags

struct Message {
  Rank src = kNoRank;
  Rank dst = kNoRank;
  int tag = tags::kData;
  Payload payload;
  /// Bytes on the wire (payload + envelope), what timing was computed from.
  Bytes wire_bytes = 0;
  /// When the sender issued the send.
  SimTime sent_at = 0;
  /// When the complete message reached the destination node.
  SimTime arrived_at = 0;
  /// Schedule-recording stamp: id of the originating send op when the
  /// runtime records a Schedule (see mp/schedule.h), -1 otherwise.
  int sched_send_op = -1;
  /// Fault-injection sequence number within (src, dst); -1 when the run has
  /// no message faults, and then no suppression bookkeeping happens at all.
  std::int32_t seq = -1;
  /// True for the extra transmission provoked by a lost acknowledgement;
  /// the receiver's duplicate suppression discards it on arrival.
  bool duplicate = false;
};

}  // namespace spb::mp
