#include "mp/runtime.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "net/regions.h"

namespace spb::mp {

namespace {

std::vector<Rank> chunk_sources_of(const Payload& p) {
  std::vector<Rank> srcs;
  srcs.reserve(p.chunk_count());
  for (const Chunk& c : p.chunks()) srcs.push_back(c.source);
  return srcs;
}

}  // namespace

// ----------------------------------------------------------------- Comm

int Comm::size() const { return rt_->size(); }

SimTime Comm::now() const { return rt_->now_us(); }

Bytes Comm::wire_bytes(const Payload& p) const {
  return wire_bytes_for(p.total_bytes(), p.chunk_count());
}

Bytes Comm::wire_bytes_for(Bytes payload_bytes, std::size_t chunks) const {
  const CommParams& cp = rt_->params_;
  return cp.header_bytes + cp.chunk_header_bytes * chunks + payload_bytes;
}

double Comm::combine_cost_us(Bytes bytes) const {
  const CommParams& cp = rt_->params_;
  return cp.combine_fixed_us +
         cp.combine_per_byte_us * static_cast<double>(bytes);
}

Comm::SendAwaiter Comm::send(Rank dst, Payload payload, int tag) {
  SPB_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  SPB_REQUIRE(dst != rank_, "rank " << rank_ << " sending to itself");
  SPB_REQUIRE(tag >= 0, "message tags must be non-negative");
  return SendAwaiter{this, dst, std::move(payload), tag, 0};
}

Comm::SendAwaiter Comm::send_sized(Rank dst, Payload payload,
                                   Bytes wire_bytes, int tag) {
  SPB_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  SPB_REQUIRE(dst != rank_, "rank " << rank_ << " sending to itself");
  SPB_REQUIRE(tag >= 0, "message tags must be non-negative");
  SPB_REQUIRE(wire_bytes > 0, "send_sized needs a positive wire size");
  return SendAwaiter{this, dst, std::move(payload), tag, wire_bytes};
}

Comm::RecvAwaiter Comm::recv(Rank src, int tag) {
  SPB_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
              "recv from invalid rank " << src);
  SPB_REQUIRE(src != rank_, "rank " << rank_ << " receiving from itself");
  SPB_REQUIRE(tag == kAnyTag || tag >= 0, "invalid tag " << tag);
  return RecvAwaiter{this, src, tag, {}};
}

Comm::ComputeAwaiter Comm::compute(double us) {
  SPB_REQUIRE(us >= 0, "negative compute time");
  return ComputeAwaiter{this, us};
}

Comm::MergeAwaiter Comm::merge(Payload& into, Payload add, bool dedup) {
  const double cost = combine_cost_us(add.total_bytes());
  return MergeAwaiter{this, &into, std::move(add), dedup,
                      ComputeAwaiter{this, cost}};
}

void Comm::mark_iteration() { metrics_.mark_iteration(); }

void Comm::begin_phase(std::string_view name) {
  const int id = rt_->phase_id(name);
  metrics_.phase_begin(id);
  phase_stack_.push_back(OpenPhase{id, rt_->now_us()});
  if (rt_->trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kPhaseBegin;
    e.rank = rank_;
    e.begin_us = e.end_us = rt_->now_us();
    e.phase = id;
    rt_->trace_.record(e);
  }
}

void Comm::end_phase() {
  SPB_REQUIRE(!phase_stack_.empty(),
              "rank " << rank_ << ": end_phase() without begin_phase()");
  const OpenPhase open = phase_stack_.back();
  phase_stack_.pop_back();
  const SimTime now = rt_->now_us();
  metrics_.phase_span(open.id, now - open.began);
  if (rt_->trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kPhaseEnd;
    e.rank = rank_;
    e.begin_us = open.began;  // the exporter emits one complete event
    e.end_us = now;
    e.phase = open.id;
    rt_->trace_.record(e);
  }
}

void Comm::SendAwaiter::await_suspend(std::coroutine_handle<> h) {
  Comm& c = *comm;
  Runtime& rt = *c.rt_;
  const CommParams& cp = rt.params_;

  Message msg;
  msg.src = c.rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.wire_bytes = wire_override > 0 ? wire_override : c.wire_bytes(payload);
  msg.payload = std::move(payload);
  msg.sent_at = rt.now_us();

  if (rt.schedule_enabled_) {
    msg.sched_send_op = rt.schedule_.record_send(
        c.rank_, dst, tag, msg.wire_bytes, chunk_sources_of(msg.payload),
        msg.payload.total_bytes());
  }

  c.metrics_.on_send(msg.wire_bytes, c.current_phase());

  // Message faults need a per-(src, dst) sequence number for duplicate
  // suppression; seq_ is only sized when the plan asks for them.
  const bool message_faults = !rt.seq_.empty();
  if (message_faults) {
    std::uint32_t& next =
        rt.seq_[static_cast<std::size_t>(c.rank_) *
                    static_cast<std::size_t>(rt.size()) +
                static_cast<std::size_t>(dst)];
    msg.seq = static_cast<std::int32_t>(next++);
  }

  const SimTime ready =
      rt.now_us() +
      (cp.send_overhead_us + cp.mpi_extra_us) * rt.slowdown(c.rank_);

  if (rt.parallel_active()) {
    // Parallel path: the network model is barrier-only shared state.  Park
    // the message in the shard's staging buffer; the sequencer reserves in
    // canonical order and schedules delivery + sender resume — which the
    // lookahead (ready >= now + window) proves land in a later window.
    rt.stage_send(std::move(msg), ready, h);
    return;
  }

  const net::Transfer t =
      rt.net_.reserve(rt.mapping_.node_of(c.rank_), rt.mapping_.node_of(dst),
                      msg.wire_bytes, ready);
  msg.arrived_at = t.arrive;

  if (rt.trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kSend;
    e.rank = c.rank_;
    e.peer = dst;
    e.tag = tag;
    e.wire_bytes = msg.wire_bytes;
    e.begin_us = rt.sim_.now();
    e.end_us = t.inject_done;
    e.arrive_us = t.arrive;
    e.phase = c.current_phase();
    rt.trace_.record(e);
  }

  // Delivery happens at the arrival time regardless of receiver state.
  // The message parks in the in-flight pool so this callback stays small
  // enough for the event queue's inline storage (no per-event allocation).
  const std::uint32_t slot = rt.stash_inflight(std::move(msg));
  if (message_faults) {
    // The fault path decides whether this attempt lands, duplicates or is
    // retransmitted; the sender is released at attempt 0's injection time
    // either way (retries run NIC-style in the background, so algorithms
    // stay fault-oblivious).
    rt.after_reserve(slot, 0, t);
  } else {
    rt.sim_.at(t.arrive, [rtp = &rt, slot]() {
      rtp->deliver(rtp->unstash_inflight(slot));
    });
  }
  // The sender regains control once its injection is complete.
  rt.sim_.at(t.inject_done, [h]() { h.resume(); });
}

void Comm::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  Comm& c = *comm;
  Runtime& rt = *c.rt_;
  const CommParams& cp = rt.params_;
  called_at = rt.now_us();

  if (rt.schedule_enabled_)
    sched_op = rt.schedule_.record_recv_post(c.rank_, src, tag);

  Message msg;
  if (c.mailbox_.try_take(src, tag, msg)) {
    blocked = false;
    result = std::move(msg);
    rt.sched_at_rank(
        called_at +
            (cp.recv_overhead_us + cp.mpi_extra_us) * rt.slowdown(c.rank_),
        c.rank_, [h]() { h.resume(); });
    return;
  }
  blocked = true;
  SPB_CHECK_MSG(!c.pending_.has_value(),
                "rank " << c.rank_ << " has two receives in flight");
  c.pending_ = Comm::PendingRecv{src, tag, this, h};
}

Message Comm::RecvAwaiter::await_resume() {
  Comm& c = *comm;
  if (c.rt_->schedule_enabled_ && sched_op >= 0) {
    c.rt_->schedule_.record_recv_match(
        sched_op, result.sched_send_op, result.wire_bytes,
        chunk_sources_of(result.payload), result.payload.total_bytes());
  }
  c.metrics_.on_recv(result.wire_bytes, blocked,
                     blocked ? result.arrived_at - called_at : 0.0,
                     c.current_phase());
  if (c.rt_->trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRecv;
    e.rank = c.rank_;
    e.peer = result.src;
    e.tag = result.tag;
    e.wire_bytes = result.wire_bytes;
    e.begin_us = called_at;
    e.end_us = c.rt_->now_us();
    e.blocked = blocked;
    e.phase = c.current_phase();
    c.rt_->trace_.record(e);
  }
  return std::move(result);
}

void Comm::ComputeAwaiter::await_suspend(std::coroutine_handle<> h) {
  Runtime& rt = *comm->rt_;
  const double actual = us * rt.slowdown(comm->rank_);
  const SimTime now = rt.now_us();
  comm->metrics_.on_compute(actual, comm->current_phase());
  if (rt.trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kCompute;
    e.rank = comm->rank_;
    e.begin_us = now;
    e.end_us = now + actual;
    e.phase = comm->current_phase();
    rt.trace_.record(e);
  }
  rt.sched_at_rank(now + actual, comm->rank_, [h]() { h.resume(); });
}

void Comm::MergeAwaiter::await_resume() {
  if (dedup) {
    into->merge_dedup(add);
  } else {
    into->merge(add);
  }
}

// -------------------------------------------------------------- Runtime

Runtime::Runtime(std::shared_ptr<const net::Topology> topo,
                 net::NetParams net, CommParams comm,
                 net::RankMapping mapping)
    : net_(std::move(topo), net),
      params_(comm),
      mapping_(std::move(mapping)) {
  const int p = mapping_.rank_count();
  for (Rank r = 0; r < p; ++r) {
    SPB_REQUIRE(mapping_.node_of(r) < net_.topology().node_count(),
                "rank " << r << " mapped outside the topology");
  }
  comms_.reserve(static_cast<std::size_t>(p));
  // Comm's constructor is private (only the runtime mints endpoints), so
  // make_unique cannot reach it; the raw new goes straight into the
  // unique_ptr.
  for (Rank r = 0; r < p; ++r)
    comms_.push_back(std::unique_ptr<Comm>(new Comm(*this, r)));
  tasks_.resize(static_cast<std::size_t>(p));
  done_at_.assign(static_cast<std::size_t>(p), -1.0);
}

Comm& Runtime::comm(Rank r) {
  SPB_REQUIRE(r >= 0 && r < size(), "rank " << r << " out of range");
  return *comms_[static_cast<std::size_t>(r)];
}

void Runtime::spawn(Rank r, sim::Task task) {
  SPB_REQUIRE(r >= 0 && r < size(), "rank " << r << " out of range");
  SPB_REQUIRE(!ran_, "spawn() after run()");
  SPB_REQUIRE(!tasks_[static_cast<std::size_t>(r)].valid(),
              "rank " << r << " already has a program");
  SPB_REQUIRE(task.valid(), "spawn() needs a valid task");
  tasks_[static_cast<std::size_t>(r)] = std::move(task);
}

void Runtime::enable_schedule_recording() {
  SPB_REQUIRE(!ran_, "enable_schedule_recording() after run()");
  schedule_enabled_ = true;
  schedule_ = Schedule(size());
}

void Runtime::set_fault_plan(fault::FaultPlanPtr plan) {
  SPB_REQUIRE(!ran_, "set_fault_plan() after run()");
  plan_ = plan;
  net_.set_fault_plan(std::move(plan));
  if (plan_ != nullptr && plan_->spec().message_faults()) {
    seq_.assign(static_cast<std::size_t>(size()) *
                    static_cast<std::size_t>(size()),
                0);
  } else {
    seq_.clear();
  }
}

std::uint32_t Runtime::stash_inflight(Message msg) {
  if (parallel_active()) {
    // Barrier-only under the engine: pool growth must be single-threaded.
    // Scan the per-shard free lists in shard order so slot reuse is
    // deterministic regardless of which shard freed what.
    for (std::vector<std::uint32_t>& free : inflight_free_par_) {
      if (free.empty()) continue;
      const std::uint32_t slot = free.back();
      free.pop_back();
      inflight_[slot] = std::move(msg);
      return slot;
    }
    inflight_.push_back(std::move(msg));
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  if (!inflight_free_.empty()) {
    const std::uint32_t slot = inflight_free_.back();
    inflight_free_.pop_back();
    inflight_[slot] = std::move(msg);
    return slot;
  }
  inflight_.push_back(std::move(msg));
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

Message Runtime::unstash_inflight(std::uint32_t slot) {
  Message m = std::move(inflight_[slot]);
  if (parallel_active()) {
    // Delivery events run inside windows: freeing into the executing
    // shard's own list keeps the free lists single-writer.
    inflight_free_par_[static_cast<std::size_t>(engine_->current_shard())]
        .push_back(slot);
  } else {
    inflight_free_.push_back(slot);
  }
  return m;
}

int Runtime::phase_id(std::string_view name) {
  SPB_REQUIRE(!name.empty(), "phase names must be non-empty");
  // Runs annotate a handful of phases; a linear scan beats a map here.
  // Parallel path: interning happens inside concurrent drains, so each
  // shard keeps its own table (ids are shard-local until run() merges
  // them via merge_shard_phases).
  std::vector<std::string>& names =
      parallel_active()
          ? phase_names_par_[static_cast<std::size_t>(
                engine_->current_shard())]
          : phase_names_;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<int>(i);
  names.emplace_back(name);
  return static_cast<int>(names.size() - 1);
}

void Runtime::enable_parallel(int threads) {
  SPB_REQUIRE(!ran_, "enable_parallel() after run()");
  SPB_REQUIRE(threads >= 1 || threads == -1,
              "enable_parallel() needs threads >= 1 or -1 for auto (got "
                  << threads << "); 0 means the serial loop "
                  << "— simply do not call it");
  par_threads_ = threads;
}

double Runtime::lookahead_us() const {
  double w = params_.send_overhead_us + params_.mpi_extra_us;
  if (plan_ != nullptr && plan_->spec().message_faults()) {
    // Retransmit staging events reserve with ready == their own time, so
    // their deliveries are only a network-latency floor away; their
    // retries are a backoff (>= one timeout) away.
    w = std::min(w, net_.params().alpha_us + net_.params().per_hop_us);
    w = std::min(w, plan_->spec().retransmit_timeout_us);
  }
  return w;
}

SimTime Runtime::now_us() const {
  return parallel_active() && engine_->current_shard() >= 0 ? engine_->now()
                                                           : sim_.now();
}

void Runtime::sched_at_rank(SimTime t, Rank r, sim::EventFn fn) {
  if (parallel_active()) {
    engine_->at(t, shard_of_rank_[static_cast<std::size_t>(r)],
                std::move(fn));
  } else {
    sim_.at(t, std::move(fn));
  }
}

void Runtime::stage_send(Message msg, SimTime ready,
                         std::coroutine_handle<> h) {
  const int shard = engine_->current_shard();
  StagedXfer x;
  x.initiate = engine_->now();
  x.ready = ready;
  x.msg = std::move(msg);
  x.h = h;
  x.kind = StagedXfer::Kind::kSend;
  staged_[static_cast<std::size_t>(shard)].push_back(std::move(x));
  engine_->note_stage(engine_->now());
}

void Runtime::sched_retransmit(SimTime t, std::uint32_t slot, int attempt) {
  if (parallel_active()) {
    // The staging event lives on the sender's shard (the simulated NIC);
    // when it fires it parks a request that the next barrier reserves.
    const Rank src = inflight_[slot].src;
    engine_->at(t, shard_of_rank_[static_cast<std::size_t>(src)],
                [this, slot, attempt]() {
                  StagedXfer x;
                  x.initiate = engine_->now();
                  x.ready = x.initiate;
                  x.slot = slot;
                  x.attempt = attempt;
                  x.kind = StagedXfer::Kind::kRetransmit;
                  staged_[static_cast<std::size_t>(engine_->current_shard())]
                      .push_back(std::move(x));
                  engine_->note_stage(engine_->now());
                });
  } else {
    sim_.at(t, [this, slot, attempt]() {
      retransmit(slot, attempt, sim_.now());
    });
  }
}

void Runtime::sequencer_flush() {
  // Canonical order: (initiate time, staging shard, staging order) — the
  // same global order PR 7 produced with a sort, maintained incrementally:
  // each shard's staging vector is already initiate-ordered (drains are
  // time-ordered, and a shard's frontier separates the windows), so the
  // barrier k-way-merges the unconsumed vector tails.  Because per-region
  // sub-windows let shards drain ahead of each other, a staged transfer
  // may only be executed once no shard can possibly stage an earlier one
  // — initiate below the engine's safe horizon; later entries stay parked
  // (cursor not advanced) for a future barrier, which keeps the reserve
  // order identical to the serial run's.
  const SimTime safe = engine_->safe_horizon();
  const std::size_t shards = staged_.size();
  for (;;) {
    std::size_t best = shards;
    SimTime best_t = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      if (staged_cursor_[s] >= staged_[s].size()) continue;
      const SimTime t = staged_[s][staged_cursor_[s]].initiate;
      if (t >= safe) continue;  // held back for a later barrier
      if (best == shards || t < best_t) {
        best = s;
        best_t = t;
      }
    }
    if (best == shards) break;
    StagedXfer& x = staged_[best][staged_cursor_[best]++];
    if (x.kind == StagedXfer::Kind::kSend) {
      const Rank src = x.msg.src;
      const Rank dst = x.msg.dst;
      const Bytes wire = x.msg.wire_bytes;
      const net::Transfer t = net_.reserve(
          mapping_.node_of(src), mapping_.node_of(dst), wire, x.ready);
      x.msg.arrived_at = t.arrive;
      const std::uint32_t slot = stash_inflight(std::move(x.msg));
      if (!seq_.empty()) {
        after_reserve(slot, 0, t);
      } else {
        sched_at_rank(t.arrive, dst, [this, slot]() {
          deliver(unstash_inflight(slot));
        });
      }
      sched_at_rank(t.inject_done, src, [h = x.h]() { h.resume(); });
    } else {
      retransmit(x.slot, x.attempt, x.ready);
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (staged_cursor_[s] == staged_[s].size()) {
      staged_[s].clear();
      staged_cursor_[s] = 0;
    }
  }
}

void Runtime::merge_shard_phases() {
  // Canonical global table: shard 0's names in order, then every name a
  // later shard saw first.  Ranks then remap their shard-local ids.
  std::vector<std::vector<int>> to_global(phase_names_par_.size());
  for (std::size_t s = 0; s < phase_names_par_.size(); ++s) {
    to_global[s].reserve(phase_names_par_[s].size());
    for (const std::string& name : phase_names_par_[s]) {
      int id = -1;
      for (std::size_t g = 0; g < phase_names_.size(); ++g)
        if (phase_names_[g] == name) {
          id = static_cast<int>(g);
          break;
        }
      if (id < 0) {
        phase_names_.push_back(name);
        id = static_cast<int>(phase_names_.size() - 1);
      }
      to_global[s].push_back(id);
    }
  }
  for (Rank r = 0; r < size(); ++r) {
    const auto shard = static_cast<std::size_t>(
        shard_of_rank_[static_cast<std::size_t>(r)]);
    comms_[static_cast<std::size_t>(r)]->metrics_.remap_phases(
        to_global[shard]);
  }
}

void Runtime::after_reserve(std::uint32_t slot, int attempt,
                            const net::Transfer& t) {
  Message& m = inflight_[slot];
  const auto seq = static_cast<std::uint32_t>(m.seq);

  if (!m.duplicate && plan_->transit_dropped(m.src, m.dst, seq, attempt)) {
    // Attempt lost in transit; the (simulated) NIC times out and re-injects
    // with exponential backoff.  The plan never drops the final attempt, so
    // this recursion always terminates in a delivery.
    comm(m.src).metrics_.on_transit_drop();
    if (trace_enabled_) {
      TraceEvent e;
      e.kind = TraceEvent::Kind::kDrop;
      e.rank = m.src;
      e.peer = m.dst;
      e.tag = m.tag;
      e.wire_bytes = m.wire_bytes;
      e.begin_us = t.start;
      e.end_us = t.inject_done;
      trace_.record(e);
    }
    sched_retransmit(t.inject_done + plan_->backoff_us(attempt), slot,
                     attempt + 1);
    return;
  }

  m.arrived_at = t.arrive;
  const Rank dst = m.dst;

  if (!m.duplicate && plan_->ack_dropped(m.src, dst, seq, attempt)) {
    // The attempt landed but its acknowledgement was lost: the sender
    // times out and re-sends once more.  The copy is flagged so it skips
    // the drop/ack rolls (at most one duplicate per lost ack) and so the
    // receiver's suppression discards it.
    // `stash_inflight` may grow the pool and invalidate `m` — nothing
    // below may touch it (hence the `dst` copy above).
    Message dup = m;
    dup.duplicate = true;
    const std::uint32_t dup_slot = stash_inflight(std::move(dup));
    sched_retransmit(t.inject_done + plan_->backoff_us(attempt), dup_slot,
                     attempt + 1);
  }

  sched_at_rank(t.arrive, dst,
                [this, slot]() { deliver(unstash_inflight(slot)); });
}

void Runtime::retransmit(std::uint32_t slot, int attempt, SimTime ready) {
  Message& m = inflight_[slot];
  comm(m.src).metrics_.on_retransmit();
  const net::Transfer t =
      net_.reserve(mapping_.node_of(m.src), mapping_.node_of(m.dst),
                   m.wire_bytes, ready);
  if (trace_enabled_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRetransmit;
    e.rank = m.src;
    e.peer = m.dst;
    e.tag = m.tag;
    e.wire_bytes = m.wire_bytes;
    e.begin_us = ready;
    e.end_us = t.inject_done;
    e.arrive_us = t.arrive;
    trace_.record(e);
  }
  after_reserve(slot, attempt, t);
}

void Runtime::deliver(Message msg) {
  if (msg.seq >= 0) {
    Comm& dst = comm(msg.dst);
    bool duplicate = false;
    std::vector<Message> ready =
        dst.mailbox_.sequence(std::move(msg), duplicate);
    if (duplicate) dst.metrics_.on_duplicate();
    for (Message& m : ready) deliver_now(std::move(m));
    return;
  }
  deliver_now(std::move(msg));
}

void Runtime::deliver_now(Message msg) {
  Comm& dst = comm(msg.dst);
  if (dst.pending_.has_value()) {
    auto& p = *dst.pending_;
    const bool src_ok = p.src == kAnySource || p.src == msg.src;
    const bool tag_ok = p.tag == kAnyTag || p.tag == msg.tag;
    if (src_ok && tag_ok) {
      Comm::RecvAwaiter* aw = p.awaiter;
      const std::coroutine_handle<> h = p.handle;
      dst.pending_.reset();
      const Rank r = msg.dst;
      aw->result = std::move(msg);
      sched_at_rank(
          now_us() +
              (params_.recv_overhead_us + params_.mpi_extra_us) * slowdown(r),
          r, [h]() { h.resume(); });
      return;
    }
  }
  dst.mailbox_.deliver(std::move(msg));
}

RunOutcome Runtime::run() {
  SPB_REQUIRE(!ran_, "Runtime::run() is one-shot");
  ran_ = true;
  const int p = size();
  for (Rank r = 0; r < p; ++r)
    SPB_REQUIRE(tasks_[static_cast<std::size_t>(r)].valid(),
                "rank " << r << " has no program");

  // The sharded engine only pays off (and only stays simple) when ranks are
  // plural, there is positive lookahead, and nothing needs the serial loop's
  // global event order (tracing and schedule recording both do: their
  // records interleave across ranks in execution order).  The fallback is
  // automatic so callers can set sim_threads unconditionally.
  const double window = lookahead_us();
  const bool use_par = par_threads_ != 0 && p >= 2 && window > 0 &&
                       !trace_enabled_ && !schedule_enabled_;
  if (use_par) {
    const int nodes = net_.topology().node_count();
    const int shards = net::region_count(nodes);
    int threads = par_threads_;
    if (threads < 0) {
      // Auto mode: size the pool to the host (capped by the shard count —
      // more workers than shards can never engage).  The per-window worker
      // engagement inside the engine then follows live window occupancy.
      threads = std::clamp(
          static_cast<int>(std::thread::hardware_concurrency()), 1, shards);
    }
    engine_ = std::make_unique<sim::ShardedEngine>(shards, window, threads);
    // Per-region sub-windows: a transfer initiated in region r cannot
    // produce an event in region s before the sender-side software floor
    // (zero under message faults — retransmits inject with ready ==
    // initiate) plus the wire floor over the regions' minimum hop
    // distance.  The matrix is a pure function of topology and parameters,
    // so the sub-window plan — like everything else — is thread-count
    // independent.
    const net::RegionMap& rmap = net::RegionMap::of(net_.topology(), shards);
    const bool faulty = plan_ != nullptr && plan_->spec().message_faults();
    const double base =
        (faulty ? 0.0 : params_.send_overhead_us + params_.mpi_extra_us) +
        net_.params().alpha_us;
    std::vector<double> delays(
        static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards),
        window);
    for (int r = 0; r < shards; ++r)
      for (int s = 0; s < shards; ++s)
        if (r != s)
          delays[static_cast<std::size_t>(r * shards + s)] = std::max(
              window,
              base + rmap.min_hops(r, s) * net_.params().per_hop_us);
    engine_->set_cross_delays(delays);
    shard_of_rank_.resize(static_cast<std::size_t>(p));
    for (Rank r = 0; r < p; ++r)
      shard_of_rank_[static_cast<std::size_t>(r)] =
          net::region_of_node(mapping_.node_of(r), nodes, shards);
    staged_.resize(static_cast<std::size_t>(shards));
    staged_cursor_.assign(static_cast<std::size_t>(shards), 0);
    inflight_free_par_.resize(static_cast<std::size_t>(shards));
    phase_names_par_.resize(static_cast<std::size_t>(shards));
  }

  for (Rank r = 0; r < p; ++r) {
    sched_at_rank(0.0, r, [this, r]() {
      tasks_[static_cast<std::size_t>(r)].start(
          [this, r]() { done_at_[static_cast<std::size_t>(r)] = now_us(); });
    });
  }
  if (use_par) {
    engine_->run([this]() { sequencer_flush(); });
  } else {
    sim_.run();
  }

  // Surface program exceptions first: a CheckError inside a rank program is
  // more informative than the secondary deadlock it may have caused.
  for (const auto& t : tasks_) t.rethrow_if_failed();

  std::ostringstream stuck;
  int stuck_count = 0;
  for (Rank r = 0; r < p; ++r) {
    if (tasks_[static_cast<std::size_t>(r)].done()) continue;
    ++stuck_count;
    if (stuck_count <= 8) {
      stuck << "\n  rank " << r;
      const auto& pending = comms_[static_cast<std::size_t>(r)]->pending_;
      if (pending.has_value()) {
        stuck << " blocked in recv(";
        if (pending->src == kAnySource) {
          stuck << "any";
        } else {
          stuck << pending->src;
        }
        if (pending->tag != kAnyTag) stuck << ", tag=" << pending->tag;
        stuck << ")";
        const std::size_t parked =
            comms_[static_cast<std::size_t>(r)]->mailbox_.size();
        if (parked > 0)
          stuck << " while " << parked
                << " non-matching message(s) sit in its mailbox";
      } else {
        stuck << " suspended outside a receive";
      }
    }
  }
  if (stuck_count > 0) {
    std::ostringstream os;
    os << "deadlock: " << stuck_count << " of " << p
       << " rank programs never finished" << stuck.str();
    if (stuck_count > 8) os << "\n  ... and " << (stuck_count - 8) << " more";
    throw DeadlockError(os.str());
  }

  RunOutcome out;
  for (Rank r = 0; r < p; ++r) {
    out.makespan_us =
        std::max(out.makespan_us, done_at_[static_cast<std::size_t>(r)]);
    // Close phases a program left open, crediting them up to its own
    // completion time, so the phase table is total even for algorithms
    // that end mid-phase.
    Comm& c = *comms_[static_cast<std::size_t>(r)];
    while (!c.phase_stack_.empty()) {
      const Comm::OpenPhase open = c.phase_stack_.back();
      c.phase_stack_.pop_back();
      const SimTime end = done_at_[static_cast<std::size_t>(r)];
      c.metrics_.phase_span(open.id, end - open.began);
      if (trace_enabled_) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kPhaseEnd;
        e.rank = r;
        e.begin_us = open.began;
        e.end_us = end;
        e.phase = open.id;
        trace_.record(e);
      }
    }
    c.metrics_.finalize();
  }
  // Shard-local phase ids (including the leftover spans just closed) fold
  // into the canonical global table only after every span is recorded.
  if (use_par) merge_shard_phases();

  std::vector<RankMetrics> per_rank;
  per_rank.reserve(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r)
    per_rank.push_back(comms_[static_cast<std::size_t>(r)]->metrics_);
  out.metrics = RunMetrics::aggregate(per_rank);
  out.phases = PhaseTotals::aggregate(per_rank, phase_names_);
  if (trace_enabled_) trace_.set_phase_names(phase_names_);
  out.network = net_.stats();
  const int links = net_.topology().link_space();
  out.link_busy_us.reserve(static_cast<std::size_t>(links));
  for (LinkId l = 0; l < links; ++l)
    out.link_busy_us.push_back(net_.link_busy_us(l));
  if (use_par) {
    out.events = engine_->events_executed();
    out.peak_queue_depth = engine_->peak_queue_depth();
    const sim::EngineStats es = engine_->stats();
    out.par.shards = engine_->shard_count();
    out.par.window_us = engine_->window_us();
    out.par.lookahead_min_us = engine_->min_cross_delay_us();
    out.par.lookahead_max_us = engine_->max_cross_delay_us();
    out.par.windows = es.windows;
    out.par.idle_shard_windows = es.idle_shard_windows;
    out.par.staged_xfers = es.staged_xfers;
    out.par.held_xfers = es.held_xfers;
    out.par.per_shard.reserve(es.shards.size());
    for (const sim::ShardStats& s : es.shards)
      out.par.per_shard.push_back(ParallelStats::Shard{
          s.events, s.peak_queue_depth, s.busy_windows, s.idle_windows});
  } else {
    out.events = sim_.events_executed();
    out.peak_queue_depth = sim_.peak_queue_depth();
  }
  return out;
}

}  // namespace spb::mp
