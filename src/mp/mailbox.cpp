#include "mp/mailbox.h"

#include <utility>

namespace spb::mp {

void Mailbox::deliver(Message msg) { inbox_.push_back(std::move(msg)); }

bool Mailbox::try_take(Rank src, int tag, Message& out) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    const bool src_ok = src == kAnySource || it->src == src;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (src_ok && tag_ok) {
      out = std::move(*it);
      inbox_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace spb::mp
