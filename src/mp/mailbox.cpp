#include "mp/mailbox.h"

#include <utility>

namespace spb::mp {

void Mailbox::deliver(Message msg) { inbox_.push_back(std::move(msg)); }

std::vector<Message> Mailbox::sequence(Message msg, bool& duplicate) {
  duplicate = false;
  SeqState& st = seq_[msg.src];
  const auto seq = static_cast<std::uint32_t>(msg.seq);
  if (seq < st.next || st.held.contains(seq)) {
    duplicate = true;
    return {};
  }
  std::vector<Message> ready;
  if (seq != st.next) {
    st.held.emplace(seq, std::move(msg));  // early: wait for the gap
    return ready;
  }
  ready.push_back(std::move(msg));
  ++st.next;
  for (auto it = st.held.find(st.next); it != st.held.end();
       it = st.held.find(st.next)) {
    ready.push_back(std::move(it->second));
    st.held.erase(it);
    ++st.next;
  }
  return ready;
}

bool Mailbox::try_take(Rank src, int tag, Message& out) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    const bool src_ok = src == kAnySource || it->src == src;
    const bool tag_ok = tag == kAnyTag || it->tag == tag;
    if (src_ok && tag_ok) {
      out = std::move(*it);
      inbox_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace spb::mp
