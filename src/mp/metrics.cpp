#include "mp/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace spb::mp {

IterationCounters& RankMetrics::current() {
  SPB_CHECK(!finalized_);
  if (iters_.empty()) iters_.emplace_back();
  return iters_.back();
}

PhaseCounters& RankMetrics::phase_at(int phase) {
  SPB_CHECK(phase >= 0);
  if (phases_.size() <= static_cast<std::size_t>(phase))
    phases_.resize(static_cast<std::size_t>(phase) + 1);
  return phases_[static_cast<std::size_t>(phase)];
}

void RankMetrics::on_send(Bytes message_bytes, int phase) {
  ++sends_;
  bytes_sent_ += message_bytes;
  auto& it = current();
  ++it.sends;
  it.bytes += message_bytes;
  if (phase >= 0) {
    auto& ph = phase_at(phase);
    ++ph.sends;
    ph.bytes_sent += message_bytes;
  }
}

void RankMetrics::on_recv(Bytes message_bytes, bool blocked, SimTime wait_us,
                          int phase) {
  ++recvs_;
  bytes_received_ += message_bytes;
  if (blocked) {
    ++waits_;
    wait_us_ += wait_us;
  }
  auto& it = current();
  ++it.recvs;
  it.bytes += message_bytes;
  if (phase >= 0) {
    auto& ph = phase_at(phase);
    ++ph.recvs;
    ph.bytes_received += message_bytes;
    if (blocked) {
      ++ph.waits;
      ph.wait_us += wait_us;
    }
  }
}

void RankMetrics::on_compute(SimTime us, int phase) {
  compute_us_ += us;
  if (phase >= 0) phase_at(phase).compute_us += us;
}

void RankMetrics::phase_begin(int phase) { ++phase_at(phase).entries; }

void RankMetrics::phase_span(int phase, SimTime span_us) {
  phase_at(phase).span_us += span_us;
}

void RankMetrics::mark_iteration() {
  current();  // materialize the iteration even if it stayed silent
  iters_.emplace_back();
}

void RankMetrics::finalize() {
  if (finalized_) return;
  // Drop a trailing empty iteration created by the last mark_iteration().
  if (!iters_.empty() && !iters_.back().active()) iters_.pop_back();
  finalized_ = true;
}

void RankMetrics::remap_phases(const std::vector<int>& to_global) {
  SPB_CHECK(phases_.size() <= to_global.size());
  int max_id = -1;
  for (std::size_t i = 0; i < phases_.size(); ++i)
    max_id = std::max(max_id, to_global[i]);
  std::vector<PhaseCounters> remapped(static_cast<std::size_t>(max_id + 1));
  for (std::size_t i = 0; i < phases_.size(); ++i)
    remapped[static_cast<std::size_t>(to_global[i])] = phases_[i];
  phases_ = std::move(remapped);
}

std::uint32_t RankMetrics::congestion() const {
  std::uint32_t worst = 0;
  for (const auto& it : iters_) worst = std::max(worst, it.sends + it.recvs);
  return worst;
}

double RankMetrics::avg_message_bytes() const {
  const std::uint64_t n = sends_ + recvs_;
  if (n == 0) return 0;
  return static_cast<double>(bytes_sent_ + bytes_received_) /
         static_cast<double>(n);
}

std::vector<PhaseTotals> PhaseTotals::aggregate(
    const std::vector<RankMetrics>& ranks,
    const std::vector<std::string>& names) {
  std::vector<PhaseTotals> out(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) out[i].name = names[i];
  for (const auto& r : ranks) {
    const auto& phases = r.phases();
    for (std::size_t i = 0; i < phases.size() && i < out.size(); ++i) {
      const PhaseCounters& c = phases[i];
      PhaseTotals& t = out[i];
      t.entries += c.entries;
      t.sends += c.sends;
      t.recvs += c.recvs;
      t.waits += c.waits;
      t.bytes_sent += c.bytes_sent;
      t.bytes_received += c.bytes_received;
      t.wait_us += c.wait_us;
      t.compute_us += c.compute_us;
      t.total_span_us += c.span_us;
      t.max_span_us = std::max(t.max_span_us, c.span_us);
    }
  }
  return out;
}

RunMetrics RunMetrics::aggregate(const std::vector<RankMetrics>& ranks) {
  RunMetrics m;
  std::size_t max_iters = 0;
  for (const auto& r : ranks) {
    m.total_sends += r.sends();
    m.total_recvs += r.recvs();
    m.total_bytes_sent += r.bytes_sent();
    m.congestion = std::max(m.congestion, r.congestion());
    m.max_waits = std::max(m.max_waits, r.waits());
    m.max_send_recv = std::max(m.max_send_recv, r.send_recv_total());
    m.av_msg_lgth = std::max(m.av_msg_lgth, r.avg_message_bytes());
    m.transit_drops += r.transit_drops();
    m.retransmits += r.retransmits();
    m.duplicates += r.duplicates();
    max_iters = std::max(max_iters, r.iterations().size());
  }
  m.iterations = max_iters;
  if (max_iters > 0) {
    std::uint64_t active_sum = 0;
    for (const auto& r : ranks)
      for (const auto& it : r.iterations())
        if (it.active()) ++active_sum;
    m.av_act_proc =
        static_cast<double>(active_sum) / static_cast<double>(max_iters);
  }
  return m;
}

}  // namespace spb::mp
