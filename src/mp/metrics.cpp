#include "mp/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace spb::mp {

IterationCounters& RankMetrics::current() {
  SPB_CHECK(!finalized_);
  if (iters_.empty()) iters_.emplace_back();
  return iters_.back();
}

void RankMetrics::on_send(Bytes message_bytes) {
  ++sends_;
  bytes_sent_ += message_bytes;
  auto& it = current();
  ++it.sends;
  it.bytes += message_bytes;
}

void RankMetrics::on_recv(Bytes message_bytes, bool blocked,
                          SimTime wait_us) {
  ++recvs_;
  bytes_received_ += message_bytes;
  if (blocked) {
    ++waits_;
    wait_us_ += wait_us;
  }
  auto& it = current();
  ++it.recvs;
  it.bytes += message_bytes;
}

void RankMetrics::mark_iteration() {
  current();  // materialize the iteration even if it stayed silent
  iters_.emplace_back();
}

void RankMetrics::finalize() {
  if (finalized_) return;
  // Drop a trailing empty iteration created by the last mark_iteration().
  if (!iters_.empty() && !iters_.back().active()) iters_.pop_back();
  finalized_ = true;
}

std::uint32_t RankMetrics::congestion() const {
  std::uint32_t worst = 0;
  for (const auto& it : iters_) worst = std::max(worst, it.sends + it.recvs);
  return worst;
}

double RankMetrics::avg_message_bytes() const {
  const std::uint64_t n = sends_ + recvs_;
  if (n == 0) return 0;
  return static_cast<double>(bytes_sent_ + bytes_received_) /
         static_cast<double>(n);
}

RunMetrics RunMetrics::aggregate(const std::vector<RankMetrics>& ranks) {
  RunMetrics m;
  std::size_t max_iters = 0;
  for (const auto& r : ranks) {
    m.total_sends += r.sends();
    m.total_recvs += r.recvs();
    m.total_bytes_sent += r.bytes_sent();
    m.congestion = std::max(m.congestion, r.congestion());
    m.max_waits = std::max(m.max_waits, r.waits());
    m.max_send_recv = std::max(m.max_send_recv, r.send_recv_total());
    m.av_msg_lgth = std::max(m.av_msg_lgth, r.avg_message_bytes());
    m.transit_drops += r.transit_drops();
    m.retransmits += r.retransmits();
    m.duplicates += r.duplicates();
    max_iters = std::max(max_iters, r.iterations().size());
  }
  m.iterations = max_iters;
  if (max_iters > 0) {
    std::uint64_t active_sum = 0;
    for (const auto& r : ranks)
      for (const auto& it : r.iterations())
        if (it.active()) ++active_sum;
    m.av_act_proc =
        static_cast<double>(active_sum) / static_cast<double>(max_iters);
  }
  return m;
}

}  // namespace spb::mp
