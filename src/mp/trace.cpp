#include "mp/trace.h"

#include <algorithm>

#include "common/check.h"

namespace spb::mp {

std::vector<TraceEvent> Trace::for_rank(Rank r) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.rank == r) out.push_back(e);
  return out;
}

SimTime Trace::horizon_us() const {
  SimTime h = 0;
  for (const TraceEvent& e : events_)
    h = std::max(h, std::max(e.end_us, e.arrive_us));
  return h;
}

std::string Trace::render_timeline(int ranks, int columns) const {
  SPB_REQUIRE(ranks >= 1 && columns >= 1, "timeline needs a positive grid");
  const SimTime horizon = std::max(horizon_us(), 1e-9);
  const double per_bucket = horizon / columns;

  std::vector<std::string> rows(static_cast<std::size_t>(ranks),
                                std::string(static_cast<std::size_t>(columns),
                                            '.'));
  // Events painting the same bucket must not erase rarer, more informative
  // marks: a single dropped attempt ('x') spans far less time than the
  // surrounding sends, so at coarse columns whichever event was recorded
  // last used to win the bucket.  Rank the marks and only overwrite upward.
  const auto priority = [](char mark) -> int {
    switch (mark) {
      case '.': return 0;
      case 'c': return 1;
      case 'r': return 2;
      case 'w': return 3;
      case 'S': return 4;
      case 'R': return 5;
      case 'x': return 6;
      default: return 0;
    }
  };
  const auto paint = [&](Rank r, SimTime from, SimTime to, char mark) {
    if (r < 0 || r >= ranks || to <= from) return;
    int lo = static_cast<int>(from / per_bucket);
    int hi = static_cast<int>((to - 1e-12) / per_bucket);
    lo = std::clamp(lo, 0, columns - 1);
    hi = std::clamp(hi, 0, columns - 1);
    for (int c = lo; c <= hi; ++c) {
      char& cell =
          rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      if (priority(mark) >= priority(cell)) cell = mark;
    }
  };

  for (const TraceEvent& e : events_) {
    switch (e.kind) {
      case TraceEvent::Kind::kSend:
        paint(e.rank, e.begin_us, e.end_us, 'S');
        break;
      case TraceEvent::Kind::kRecv:
        if (e.blocked) paint(e.rank, e.begin_us, e.end_us, 'w');
        // The trailing slice of a receive is software processing; mark the
        // final bucket as 'r' so arrivals are visible even when short.
        paint(e.rank, std::max(e.begin_us, e.end_us - per_bucket), e.end_us,
              'r');
        break;
      case TraceEvent::Kind::kCompute:
        paint(e.rank, e.begin_us, e.end_us, 'c');
        break;
      case TraceEvent::Kind::kDrop:
        paint(e.rank, e.begin_us, e.end_us, 'x');
        break;
      case TraceEvent::Kind::kRetransmit:
        paint(e.rank, e.begin_us, e.end_us, 'R');
        break;
      case TraceEvent::Kind::kPhaseBegin:
      case TraceEvent::Kind::kPhaseEnd:
        break;  // zero-width markers; the Chrome exporter renders them
    }
  }

  std::string out;
  for (int r = 0; r < ranks; ++r) {
    out += "rank ";
    const std::string id = std::to_string(r);
    out += std::string(3 - std::min<std::size_t>(3, id.size()), ' ') + id;
    out += " |";
    out += rows[static_cast<std::size_t>(r)];
    out += "|\n";
  }
  return out;
}

}  // namespace spb::mp
