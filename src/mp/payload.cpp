#include "mp/payload.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace spb::mp {

Payload Payload::original(Rank source, Bytes bytes) {
  SPB_REQUIRE(source >= 0, "source rank must be non-negative");
  SPB_REQUIRE(bytes > 0, "an original message must have positive size");
  Payload p;
  p.chunks_.push_back({source, bytes});
  p.total_bytes_ = bytes;
  return p;
}

Payload Payload::of(std::vector<Chunk> chunks) {
  std::sort(chunks.begin(), chunks.end(),
            [](const Chunk& a, const Chunk& b) { return a.source < b.source; });
  for (std::size_t i = 1; i < chunks.size(); ++i)
    SPB_REQUIRE(chunks[i - 1].source != chunks[i].source,
                "duplicate source " << chunks[i].source << " in payload");
  Payload p;
  p.chunks_.reserve(chunks.size());
  for (const Chunk& c : chunks) {
    p.chunks_.push_back(c);
    p.total_bytes_ += c.bytes;
  }
  return p;
}

bool Payload::has_source(Rank source) const {
  return std::binary_search(
      chunks_.begin(), chunks_.end(), Chunk{source, 0},
      [](const Chunk& a, const Chunk& b) { return a.source < b.source; });
}

// Merges other.chunks_ into chunks_ in place, reusing existing capacity so
// a payload that accumulates chunks over several receives settles into one
// buffer.  Three shapes, fastest first:
//  * disjoint source ranges (the halving algorithms merge contiguous rank
//    ranges, so nearly every simulated merge lands here): pure append or
//    prepend-shift, no per-element comparisons;
//  * result outgrows capacity: one fused validate-and-merge pass into the
//    replacement buffer (this payload stays untouched until the final
//    swap, preserving the strong exception guarantee);
//  * result fits in place: a read-only validate/count pass, then a
//    backward merge that writes each element exactly once.
void Payload::merge_impl(const Payload& other, bool allow_dup) {
  const std::size_t n = chunks_.size();
  const std::size_t m = other.chunks_.size();
  if (m == 0) return;
  if (n == 0) {
    chunks_ = other.chunks_;  // copy-assign reuses our capacity
    total_bytes_ = other.total_bytes_;
    return;
  }

  const Chunk* a = chunks_.data();
  const Chunk* b = other.chunks_.data();

  if (a[n - 1].source < b[0].source) {  // append
    chunks_.reserve(n + m);
    chunks_.resize_within_capacity(n + m);
    std::memcpy(chunks_.data() + n, b, m * sizeof(Chunk));
    total_bytes_ += other.total_bytes_;
    return;
  }
  if (b[m - 1].source < a[0].source) {  // prepend
    chunks_.reserve(n + m);
    chunks_.resize_within_capacity(n + m);
    Chunk* out = chunks_.data();
    std::memmove(out + m, out, n * sizeof(Chunk));
    std::memcpy(out, b, m * sizeof(Chunk));
    total_bytes_ += other.total_bytes_;
    return;
  }

  if (n + m > chunks_.capacity()) {
    // Growing anyway: validate and merge in one forward pass straight into
    // the replacement buffer.  A CheckError mid-pass discards the
    // temporary and leaves this payload untouched.
    SmallVec<Chunk, kInlineChunks> merged;
    merged.reserve(n + m);
    merged.resize_within_capacity(n + m);
    Chunk* out = merged.data();
    std::size_t i = 0, j = 0, k = 0;
    Bytes dup_bytes = 0;
    while (i < n && j < m) {
      if (a[i].source < b[j].source) {
        out[k++] = a[i++];
      } else if (b[j].source < a[i].source) {
        out[k++] = b[j++];
      } else {
        SPB_CHECK_MSG(allow_dup, "source " << a[i].source << " received twice");
        SPB_CHECK_MSG(a[i].bytes == b[j].bytes,
                      "source " << a[i].source << " has conflicting sizes "
                                << a[i].bytes << " vs " << b[j].bytes);
        dup_bytes += a[i].bytes;
        out[k++] = a[i++];
        ++j;
      }
    }
    while (i < n) out[k++] = a[i++];
    while (j < m) out[k++] = b[j++];
    merged.resize_within_capacity(k);
    chunks_ = std::move(merged);
    total_bytes_ += other.total_bytes_ - dup_bytes;
    return;
  }

  if (!allow_dup) {
    // Duplicates are an error here, so the final size is n + m and no
    // count pass is needed: one backward merge, branchless in the steady
    // state (i + j == k throughout, so writes never clobber unread
    // elements).  A duplicate aborts mid-merge; undo_partial_merge
    // reconstructs the original contents, so the CheckError still leaves
    // the payload untouched.
    chunks_.resize_within_capacity(n + m);  // fits: n + m <= capacity
    Chunk* out = chunks_.data();
    std::size_t i = n;
    std::size_t j = m;
    std::size_t k = n + m;
    while (i > 0 && j > 0) {
      const Rank as = out[i - 1].source;
      const Rank bs = b[j - 1].source;
      if (as == bs) {
        undo_partial_merge(b, n, m, j, k);
        SPB_CHECK_MSG(false, "source " << as << " received twice");
      }
      const bool take_a = as > bs;
      const Chunk* src = take_a ? &out[i - 1] : &b[j - 1];
      out[--k] = *src;
      i -= static_cast<std::size_t>(take_a);
      j -= static_cast<std::size_t>(!take_a);
    }
    while (j > 0) out[--k] = b[--j];
    // Remaining prefix of `a` is already in place (i == k when j == 0).
    total_bytes_ += other.total_bytes_;
    return;
  }

  // Dedup merge: duplicates shrink the result, so a validate/count pass
  // (read-only — a CheckError leaves the payload untouched) determines
  // the final size before the backward merge.
  std::size_t dups = 0;
  Bytes dup_bytes = 0;
  for (std::size_t i = 0, j = 0; i < n && j < m;) {
    if (a[i].source < b[j].source) {
      ++i;
    } else if (b[j].source < a[i].source) {
      ++j;
    } else {
      SPB_CHECK_MSG(a[i].bytes == b[j].bytes,
                    "source " << a[i].source << " has conflicting sizes "
                              << a[i].bytes << " vs " << b[j].bytes);
      ++dups;
      dup_bytes += a[i].bytes;
      ++i;
      ++j;
    }
  }

  const std::size_t total = n + m - dups;
  chunks_.resize_within_capacity(total);  // fits: n + m <= capacity
  Chunk* out = chunks_.data();

  // Backward merge: the tail of the destination is free space, so writing
  // from the end never clobbers unread source elements.
  std::size_t i = n;
  std::size_t j = m;
  std::size_t k = total;
  while (j > 0) {
    if (i > 0 && out[i - 1].source > b[j - 1].source) {
      out[--k] = out[--i];
    } else if (i > 0 && out[i - 1].source == b[j - 1].source) {
      out[--k] = out[--i];  // duplicate collapses to one copy
      --j;
    } else {
      out[--k] = b[--j];
    }
  }
  // Remaining prefix of `a` is already in place (i == k when j == 0).

  total_bytes_ += other.total_bytes_ - dup_bytes;
}

// Rolls an aborted in-place backward merge back to the original contents.
// State on entry: the merged tail [k, n+m) holds the sorted union of the
// consumed suffixes a[i..n) and b[j..m); positions [min(k, n), n) of the
// original contents were overwritten by it.  Every consumed a-element
// still exists inside that tail, so walking the tail backward and
// skipping the elements that came from b (unambiguous: the suffixes are
// duplicate-free — the offending pair was never copied) restores the
// overwritten slots exactly.  Cold path: runs only when an algorithm bug
// delivered the same source twice.
void Payload::undo_partial_merge(const Chunk* b, std::size_t n,
                                 std::size_t m, std::size_t j,
                                 std::size_t k) {
  Chunk* out = chunks_.data();
  // The restore region [k, n) overlaps the tail the originals are read
  // back from, and the scan can reach a slot after the restore rewrote it
  // — so scan a snapshot of the tail instead.  The copy is fine here: this
  // path runs only on the way to a CheckError.
  const std::vector<Chunk> tail(out + k, out + n + m);
  std::size_t q = tail.size();  // scans the snapshot backward
  std::size_t bj = m;           // scans b's consumed suffix backward
  for (std::size_t p = n; p > k;) {
    --q;
    if (bj > j && tail[q].source == b[bj - 1].source) {
      --bj;  // b's copy, not ours
      continue;
    }
    out[--p] = tail[q];
  }
  chunks_.resize_within_capacity(n);
}

void Payload::merge(const Payload& other) {
  merge_impl(other, /*allow_dup=*/false);
}

void Payload::merge_dedup(const Payload& other) {
  merge_impl(other, /*allow_dup=*/true);
}

std::string Payload::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (i > 0) os << ", ";
    os << chunks_[i].source << ':' << chunks_[i].bytes;
  }
  os << '}';
  return os.str();
}

}  // namespace spb::mp
