#include "mp/payload.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace spb::mp {

Payload Payload::original(Rank source, Bytes bytes) {
  SPB_REQUIRE(source >= 0, "source rank must be non-negative");
  SPB_REQUIRE(bytes > 0, "an original message must have positive size");
  Payload p;
  p.chunks_.push_back({source, bytes});
  return p;
}

Payload Payload::of(std::vector<Chunk> chunks) {
  std::sort(chunks.begin(), chunks.end(),
            [](const Chunk& a, const Chunk& b) { return a.source < b.source; });
  for (std::size_t i = 1; i < chunks.size(); ++i)
    SPB_REQUIRE(chunks[i - 1].source != chunks[i].source,
                "duplicate source " << chunks[i].source << " in payload");
  Payload p;
  p.chunks_ = std::move(chunks);
  return p;
}

Bytes Payload::total_bytes() const {
  Bytes total = 0;
  for (const Chunk& c : chunks_) total += c.bytes;
  return total;
}

bool Payload::has_source(Rank source) const {
  return std::binary_search(
      chunks_.begin(), chunks_.end(), Chunk{source, 0},
      [](const Chunk& a, const Chunk& b) { return a.source < b.source; });
}

namespace {

// Merge two sorted chunk vectors.  If allow_dup, identical sources collapse
// to one chunk (sizes must agree); otherwise duplicates are an error.
std::vector<Chunk> merge_sorted(const std::vector<Chunk>& a,
                                const std::vector<Chunk>& b, bool allow_dup) {
  std::vector<Chunk> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].source < b[j].source) {
      out.push_back(a[i++]);
    } else if (b[j].source < a[i].source) {
      out.push_back(b[j++]);
    } else {
      SPB_CHECK_MSG(allow_dup,
                    "source " << a[i].source << " received twice");
      SPB_CHECK_MSG(a[i].bytes == b[j].bytes,
                    "source " << a[i].source << " has conflicting sizes "
                              << a[i].bytes << " vs " << b[j].bytes);
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
  return out;
}

}  // namespace

void Payload::merge(const Payload& other) {
  chunks_ = merge_sorted(chunks_, other.chunks_, /*allow_dup=*/false);
}

void Payload::merge_dedup(const Payload& other) {
  chunks_ = merge_sorted(chunks_, other.chunks_, /*allow_dup=*/true);
}

std::string Payload::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (i > 0) os << ", ";
    os << chunks_[i].source << ':' << chunks_[i].bytes;
  }
  os << '}';
  return os.str();
}

}  // namespace spb::mp
