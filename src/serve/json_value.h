// Minimal recursive-descent JSON reader for the serve protocol — the
// parsing counterpart of obs::JsonWriter, equally dependency-free.  Parses
// one document into a small value tree; object members keep their source
// order (a vector of pairs, no hashing) because protocol requests are tiny
// and deterministic iteration matters more than lookup speed.
//
// Strictness matches tests/obs/mini_json.h: full string-escape grammar
// (\uXXXX decoded to UTF-8), numbers via strtod, no trailing garbage.
// Errors come back as a position + message instead of an exception so a
// serving loop can turn a malformed line into a structured error response
// and keep going.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spb::serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First member with this name, or nullptr (objects only).
  const JsonValue* find(std::string_view name) const;
};

struct JsonParseResult {
  bool ok = false;
  std::size_t error_pos = 0;  // byte offset of the failure
  std::string error;          // "" when ok
};

/// Parses exactly one JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error).
JsonParseResult parse_json(std::string_view text, JsonValue& out);

}  // namespace spb::serve
