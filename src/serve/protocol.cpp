#include "serve/protocol.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "serve/json_value.h"

namespace spb::serve {

namespace {

/// True when the number is a non-negative integer that fits `max`.
bool as_u64(const JsonValue& v, std::uint64_t max, std::uint64_t& out) {
  if (!v.is_number()) return false;
  const double d = v.number_value;
  if (d < 0 || std::floor(d) != d ||
      d > static_cast<double>(max))
    return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

/// Fixed-point with 3 decimals, matching obs::JsonWriter::value(double, 3).
void append_us(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.3f", v);
  out.append(buf, static_cast<std::size_t>(n));
}

/// JSON string literal with obs::JsonWriter's escaping (quote, backslash,
/// control characters; UTF-8 passes through).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string parse_request(std::string_view line, Request& out) {
  out = Request{};
  JsonValue doc;
  const JsonParseResult parsed = parse_json(line, doc);
  if (!parsed.ok)
    return "malformed JSON at byte " + std::to_string(parsed.error_pos) +
           ": " + parsed.error;
  if (!doc.is_object()) return "request must be a JSON object";

  bool saw_op = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "op") {
      if (!value.is_string()) return "\"op\" must be a string";
      if (value.string_value == "plan")
        out.op = Op::kPlan;
      else if (value.string_value == "execute")
        out.op = Op::kExecute;
      else if (value.string_value == "stats")
        out.op = Op::kStats;
      else
        return "unknown op \"" + value.string_value +
               "\" (expected plan, execute or stats)";
      saw_op = true;
    } else if (key == "id") {
      if (!as_u64(value, UINT64_MAX, out.id))
        return "\"id\" must be a non-negative integer";
      out.has_id = true;
    } else if (key == "machine") {
      if (!value.is_string()) return "\"machine\" must be a string";
      out.machine = value.string_value;
    } else if (key == "dist") {
      if (!value.is_string()) return "\"dist\" must be a string";
      out.dist = value.string_value;
    } else if (key == "sources") {
      std::uint64_t n = 0;
      if (!as_u64(value, 1u << 20, n))
        return "\"sources\" must be a non-negative integer";
      out.sources = static_cast<int>(n);
    } else if (key == "len") {
      std::uint64_t n = 0;
      if (!as_u64(value, 1ull << 40, n) || n == 0)
        return "\"len\" must be a positive integer";
      out.len = static_cast<Bytes>(n);
    } else if (key == "seed") {
      if (!as_u64(value, UINT64_MAX, out.seed))
        return "\"seed\" must be a non-negative integer";
    } else if (key == "faults") {
      if (!value.is_string()) return "\"faults\" must be a string";
      out.faults = value.string_value;
    } else if (key == "ranked") {
      if (!value.is_bool()) return "\"ranked\" must be a boolean";
      out.ranked = value.bool_value;
    } else if (key == "deterministic") {
      if (!value.is_bool()) return "\"deterministic\" must be a boolean";
      out.deterministic = value.bool_value;
    } else {
      return "unknown field \"" + key + "\"";
    }
  }
  if (!saw_op) return "missing required field \"op\"";
  return "";
}

std::string signature_hex(const plan::Signature& sig) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, sig.key());
  return buf;
}

void write_plan_response(std::string& out, std::uint64_t id,
                         const Request& req, const plan::Plan& plan) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"ok\":true,\"op\":\"plan\",\"signature\":\"";
  out += signature_hex(plan.signature);
  out += "\",\"best\":";
  append_json_string(out, plan.best());
  out += ",\"predicted_us\":";
  append_us(out, plan.ranked.front().predicted_us);
  out += ",\"planned_bytes\":";
  append_u64(out, static_cast<std::uint64_t>(plan.planned_bytes));
  if (req.ranked) {
    out += ",\"ranked\":[";
    bool first = true;
    for (const plan::Plan::Entry& e : plan.ranked) {
      if (!first) out += ',';
      first = false;
      out += "{\"algorithm\":";
      append_json_string(out, e.algorithm);
      out += ",\"predicted_us\":";
      append_us(out, e.predicted_us);
      out += '}';
    }
    out += ']';
  }
  out += "}\n";
}

void write_execute_response(std::string& out, std::uint64_t id,
                            const Request& req, const std::string& algorithm,
                            const stop::RunResult& result) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"ok\":true,\"op\":\"execute\",\"algorithm\":";
  append_json_string(out, algorithm);
  out += ",\"dist\":";
  append_json_string(out, req.dist);
  out += ",\"time_us\":";
  append_us(out, result.time_us);
  out += ",\"total_sends\":";
  append_u64(out, result.outcome.metrics.total_sends);
  out += ",\"total_bytes_sent\":";
  append_u64(out,
             static_cast<std::uint64_t>(result.outcome.metrics.total_bytes_sent));
  out += "}\n";
}

void write_error_response(std::string& out, std::uint64_t id,
                          std::string_view error) {
  out += "{\"id\":";
  append_u64(out, id);
  out += ",\"ok\":false,\"error\":";
  append_json_string(out, error);
  out += "}\n";
}

void write_overloaded_response(std::string& out, std::uint64_t id) {
  write_error_response(out, id, "overloaded");
}

}  // namespace spb::serve
