#include "serve/json_value.h"

#include <cctype>
#include <cstdlib>

namespace spb::serve {

const JsonValue* JsonValue::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : members)
    if (key == name) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run(JsonValue& out) {
    skip_ws();
    if (!value(out)) return fail_result();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after the JSON value";
      return fail_result();
    }
    return {.ok = true, .error_pos = 0, .error = ""};
  }

 private:
  JsonParseResult fail_result() const {
    return {.ok = false,
            .error_pos = pos_,
            .error = error_.empty() ? "malformed JSON" : error_};
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string_value);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string name;
      if (!string(name)) return set_error("expected an object key");
      skip_ws();
      if (peek() != ':') return set_error("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.members.emplace_back(std::move(name), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']' in array");
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return set_error("expected a string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return set_error("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size())
          return set_error("unterminated escape sequence");
        if (!escape(out)) return false;
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return set_error("unterminated string");
  }

  bool escape(std::string& out) {
    const char esc = text_[pos_];
    ++pos_;
    switch (esc) {
      case '"':
      case '\\':
      case '/':
        out.push_back(esc);
        return true;
      case 'b':
        out.push_back('\b');
        return true;
      case 'f':
        out.push_back('\f');
        return true;
      case 'n':
        out.push_back('\n');
        return true;
      case 'r':
        out.push_back('\r');
        return true;
      case 't':
        out.push_back('\t');
        return true;
      case 'u': {
        std::uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
          if (pos_ >= text_.size()) return set_error("truncated \\u escape");
          const char h = text_[pos_];
          ++pos_;
          code <<= 4;
          if (h >= '0' && h <= '9')
            code |= static_cast<std::uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<std::uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<std::uint32_t>(h - 'A' + 10);
          else
            return set_error("bad hex digit in \\u escape");
        }
        append_utf8(out, code);
        return true;
      }
      default:
        return set_error("unknown escape character");
    }
  }

  /// BMP code point -> UTF-8 (surrogate pairs are passed through as two
  /// 3-byte sequences; the protocol never carries non-BMP text).
  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start ||
        std::isdigit(static_cast<unsigned char>(text_[pos_ - 1])) == 0) {
      pos_ = start;
      return set_error("expected a value");
    }
    const std::string digits(text_.substr(start, pos_ - start));
    out.kind = JsonValue::Kind::kNumber;
    out.number_value = std::strtod(digits.c_str(), nullptr);
    return true;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != 0; ++c, ++pos_)
      if (pos_ >= text_.size() || text_[pos_] != *c)
        return set_error("bad literal");
    return true;
  }

  bool set_error(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text, JsonValue& out) {
  out = JsonValue{};
  Parser parser(text);
  return parser.run(out);
}

}  // namespace spb::serve
