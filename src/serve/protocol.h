// The spb_serve JSONL wire protocol.
//
// Requests, one JSON object per line:
//   {"op":"plan","dist":"R","sources":8,"len":1024,"seed":1}
//   {"op":"execute","dist":"B","sources":16,"len":6144,"faults":"drop=0.1"}
//   {"op":"stats"}                      // barrier: flushes earlier requests
//   {"op":"stats","deterministic":true} // timing-dependent fields omitted
//
// Optional on every request: "id" (non-negative integer, echoed back;
// defaults to the server-assigned sequence number), "machine" (defaults to
// the server's machine).  Plan requests also accept "ranked":true to
// include the full ranked algorithm table in the response.
//
// Responses, one JSON object per line, in request order regardless of how
// many workers served them:
//   {"id":0,"ok":true,"op":"plan","signature":"…","best":"…",…}
//   {"id":1,"ok":true,"op":"execute","algorithm":"…","time_us":…,…}
//   {"id":2,"ok":false,"error":"…"}            // malformed / failed request
//   {"id":3,"ok":false,"error":"overloaded"}   // load-shed, never silent
//
// Plan and execute responses are pure functions of the request (the
// simulator is deterministic and plans are priced at bucket
// representatives), which is what makes serve output byte-identical across
// worker counts.  Parsing never throws: malformed input comes back as an
// error string so the session can answer and continue.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/types.h"
#include "plan/planner.h"
#include "stop/run.h"

namespace spb::serve {

enum class Op { kPlan, kExecute, kStats };

struct Request {
  Op op = Op::kPlan;
  bool has_id = false;
  std::uint64_t id = 0;  // valid when has_id
  std::string machine;   // "" = the server's default machine
  std::string dist = "R";
  int sources = 0;  // 0 = p/4 (at least 2), matching spb_plan
  Bytes len = 2048;
  std::uint64_t seed = 1;
  std::string faults;         // fault-spec text; refines the plan signature
  bool ranked = false;        // plan: include the full ranked table
  bool deterministic = false; // stats: omit timing-dependent sections
};

/// Parses one request line.  Returns "" and fills `out` on success, or a
/// one-line error message (unknown op, wrong field type, unknown field,
/// malformed JSON with its byte offset).
std::string parse_request(std::string_view line, Request& out);

/// Canonical "%016x" rendering of a plan signature key.
std::string signature_hex(const plan::Signature& sig);

// Response writers append one newline-terminated JSON line to `out`.
// They build the line with direct formatting (no ostream) because the
// serve hot path emits one per request; the JSON they produce matches
// obs::JsonWriter's conventions (fixed-point doubles, full escaping).
void write_plan_response(std::string& out, std::uint64_t id,
                         const Request& req, const plan::Plan& plan);
void write_execute_response(std::string& out, std::uint64_t id,
                            const Request& req, const std::string& algorithm,
                            const stop::RunResult& result);
void write_error_response(std::string& out, std::uint64_t id,
                          std::string_view error);
/// The explicit load-shed response ({"ok":false,"error":"overloaded"}).
void write_overloaded_response(std::string& out, std::uint64_t id);

}  // namespace spb::serve
