// The concurrent broadcast-planning server behind spb_serve.
//
// One Server owns a fixed worker pool, a bounded FIFO admission queue, a
// ShardedPlanCache (misses coalesce: concurrent identical signatures plan
// once), a per-machine planner memo, and a latency histogram.  Lines go in
// through submit_line(); JSONL responses come out on the ostream, always
// in submission order — an internal reorder buffer holds responses that
// finish early, so output is byte-identical no matter how many workers
// served the session (the ext_serve gate pins this for plan traffic).
//
// Admission control is explicit: when the queue is at max_queue, the line
// is answered immediately with {"ok":false,"error":"overloaded"} — the
// protocol never drops a request silently.  Malformed lines are answered
// in place with a structured error and the session continues.
//
// A stats request is a *fence*: workers leave it at the front of the queue
// until every earlier request has been answered and flushed, and no later
// request starts before it completes.  Its snapshot therefore covers
// exactly the requests submitted before it, which — together with
// coalesced misses counting once — makes "deterministic":true stats
// responses a pure function of the request trace (timing-dependent
// sections: latency, queue depth, coalesced counts, are omitted there).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/report.h"
#include "plan/sharded_cache.h"
#include "serve/histogram.h"
#include "serve/protocol.h"

namespace spb::serve {

struct ServerOptions {
  /// Default machine for requests that do not name one.
  std::string machine = "paragon8x8";
  int workers = 4;
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = plan::ShardedPlanCache::kDefaultShards;
  /// Pending-request bound; submissions beyond it are load-shed with an
  /// explicit "overloaded" response.
  std::size_t max_queue = 1024;

  /// Test instrumentation, both null in production: `job_hook` runs at the
  /// start of every worker job (lets tests stall the pool to force
  /// saturation or simultaneous arrivals); `plan_hook` runs inside the
  /// cache's compute callback, i.e. exactly once per actual planner
  /// invocation (lets tests count invocations under coalescing).
  std::function<void()> job_hook;
  std::function<void()> plan_hook;
};

/// Request counters, by outcome of the response actually emitted.
struct RequestCounters {
  std::uint64_t plan = 0;
  std::uint64_t execute = 0;
  std::uint64_t stats = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;

  std::uint64_t total() const {
    return plan + execute + stats + errors + shed;
  }
};

class Server {
 public:
  /// Responses are written to `out` (one JSON object per line, submission
  /// order).  The default machine's planner is built eagerly so the first
  /// request does not pay for it.
  Server(ServerOptions options, std::ostream& out);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses and admits one request line (without trailing newline).
  /// Never throws on bad input: malformed lines and overload are answered
  /// through the response stream.
  void submit_line(std::string_view line);

  /// Like submit_line, but blocks for queue space instead of load-shedding
  /// — cooperative in-process drivers (spb_serve --demo, bench/ext_serve)
  /// use this so their traffic is never answered "overloaded" and the
  /// response stream stays a pure function of the request stream.
  void submit_line_wait(std::string_view line);

  /// Blocks until every submitted line has been answered and flushed.
  void drain();

  const ServerOptions& options() const { return options_; }
  std::uint64_t submitted() const;

  plan::CacheStats cache_stats() const { return cache_.stats(); }
  std::vector<plan::CacheStats> cache_shard_stats() const {
    return cache_.shard_stats();
  }
  const plan::ShardedPlanCache& cache() const { return cache_; }
  RequestCounters counters() const;
  LatencyHistogram::Snapshot latency() const { return latency_.snapshot(); }
  std::uint64_t queue_max_depth() const;

  /// The obs serve-report section for this session (throughput fields are
  /// left zero; timing drivers fill them).
  obs::ServeSection report_section() const;

 private:
  struct Job {
    std::uint64_t seq = 0;
    Request req;
    std::chrono::steady_clock::time_point t0;
    /// A stats fence being processed in place (stays at the front so no
    /// later job starts underneath the snapshot).
    bool claimed = false;
  };
  enum class Outcome { kPlan, kExecute, kStats, kError, kShed };

  void submit_internal(std::string_view line, bool block);
  void worker_loop();
  bool can_take_front() const;  // queue_mu_ held
  void process(const Job& job);
  std::string handle_plan(const Job& job, std::uint64_t rid);
  std::string handle_execute(const Job& job, std::uint64_t rid);
  std::string handle_stats(const Job& job, std::uint64_t rid);
  const plan::Planner& planner_for(const std::string& machine_name);
  void emit(std::uint64_t seq, std::string text, Outcome outcome);

  ServerOptions options_;
  std::ostream& out_;

  plan::ShardedPlanCache cache_;
  LatencyHistogram latency_;

  mutable std::mutex planners_mu_;
  std::map<std::string, std::unique_ptr<plan::Planner>> planners_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable space_cv_;  // signaled when a job is popped
  std::deque<Job> queue_;
  std::uint64_t queue_max_depth_ = 0;
  bool stopping_ = false;

  mutable std::mutex out_mu_;
  std::condition_variable out_cv_;
  std::map<std::uint64_t, std::pair<std::string, Outcome>> reorder_;
  std::atomic<std::uint64_t> next_out_{0};  // first seq not yet flushed
  std::atomic<std::uint64_t> submitted_{0};
  RequestCounters counters_;  // bumped at flush, under out_mu_

  std::vector<std::thread> workers_;
};

}  // namespace spb::serve
