#include "serve/server.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/parse.h"
#include "dist/distribution.h"
#include "dist/grid.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "obs/json.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb::serve {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// CheckError carries "<kind> failed: (<expr>) at <file>:<line> — <msg>".
/// The wire protocol reports just <msg>: the expression and source location
/// are build-tree details, and an absolute path in a response would make
/// transcripts differ between checkouts.
std::string_view public_error(std::string_view what) {
  if (what.find(" failed: (") == std::string_view::npos) return what;
  const std::size_t dash = what.find(" \xe2\x80\x94 ");
  return dash == std::string_view::npos ? what : what.substr(dash + 5);
}

}  // namespace

Server::Server(ServerOptions options, std::ostream& out)
    : options_(std::move(options)),
      out_(out),
      cache_(options_.cache_capacity, options_.cache_shards) {
  SPB_REQUIRE(options_.workers >= 1, "serve needs at least one worker");
  SPB_REQUIRE(options_.max_queue >= 1, "serve needs max_queue >= 1");
  planner_for(options_.machine);  // resolve the default machine eagerly
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Server::submit_line(std::string_view line) {
  submit_internal(line, /*block=*/false);
}

void Server::submit_line_wait(std::string_view line) {
  submit_internal(line, /*block=*/true);
}

void Server::submit_internal(std::string_view line, bool block) {
  const std::uint64_t seq = submitted_.fetch_add(1);
  Request req;
  const std::string parse_error = parse_request(line, req);
  const std::uint64_t rid = req.has_id ? req.id : seq;

  if (!parse_error.empty()) {
    std::string text;
    write_error_response(text, rid, parse_error);
    emit(seq, std::move(text), Outcome::kError);
    return;
  }

  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.max_queue) {
      if (!block) {
        // Load-shed: answer now, explicitly — never a silent drop.
        std::string text;
        write_overloaded_response(text, rid);
        emit(seq, std::move(text), Outcome::kShed);
        return;
      }
      space_cv_.wait(
          lock, [this] { return queue_.size() < options_.max_queue; });
    }
    queue_.push_back(Job{.seq = seq,
                         .req = std::move(req),
                         .t0 = std::chrono::steady_clock::now(),
                         .claimed = false});
    if (queue_.size() > queue_max_depth_) queue_max_depth_ = queue_.size();
  }
  queue_cv_.notify_one();
}

bool Server::can_take_front() const {
  if (queue_.empty()) return false;
  const Job& front = queue_.front();
  if (front.claimed) return false;  // a stats fence is in progress
  if (front.req.op == Op::kStats)
    // Fence: only runnable once every earlier response has been flushed.
    return next_out_.load(std::memory_order_acquire) == front.seq;
  return true;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    bool fence = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || can_take_front(); });
      if (!can_take_front()) {
        if (stopping_ && queue_.empty()) return;
        continue;  // fence pending or spurious wake; re-evaluate
      }
      fence = queue_.front().req.op == Op::kStats;
      if (fence) {
        // Leave the fence at the front (claimed) so no later job starts
        // while the stats snapshot is taken.
        queue_.front().claimed = true;
        job = queue_.front();
      } else {
        job = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!fence) space_cv_.notify_one();
    process(job);
    if (fence) {
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.pop_front();
      }
      queue_cv_.notify_all();
      space_cv_.notify_one();
    }
  }
}

void Server::process(const Job& job) {
  if (options_.job_hook) options_.job_hook();
  const std::uint64_t rid = job.req.has_id ? job.req.id : job.seq;
  std::string text;
  Outcome outcome = Outcome::kError;
  try {
    switch (job.req.op) {
      case Op::kPlan:
        text = handle_plan(job, rid);
        outcome = Outcome::kPlan;
        break;
      case Op::kExecute:
        text = handle_execute(job, rid);
        outcome = Outcome::kExecute;
        break;
      case Op::kStats:
        text = handle_stats(job, rid);
        outcome = Outcome::kStats;
        break;
    }
  } catch (const std::exception& e) {
    text.clear();
    write_error_response(text, rid, public_error(e.what()));
    outcome = Outcome::kError;
  }
  if (outcome == Outcome::kPlan || outcome == Outcome::kExecute)
    latency_.record(elapsed_us(job.t0));
  emit(job.seq, std::move(text), outcome);
}

std::string Server::handle_plan(const Job& job, std::uint64_t rid) {
  const Request& req = job.req;
  const plan::Planner& planner = planner_for(req.machine);
  const machine::MachineConfig& mc = planner.machine();
  const dist::Kind kind = dist::kind_from_name(req.dist);
  const int s = req.sources != 0 ? req.sources : std::max(2, mc.p / 4);
  const std::vector<Rank> sources =
      dist::generate(kind, dist::Grid{mc.rows, mc.cols}, s, req.seed);
  const plan::Signature sig =
      plan::make_signature(mc, sources, req.len, req.dist, req.faults);
  const std::shared_ptr<const plan::Plan> plan = cache_.plan_shared(sig, [&] {
    if (options_.plan_hook) options_.plan_hook();
    return planner.plan(sources, req.len, req.dist, req.faults);
  });
  std::string text;
  write_plan_response(text, rid, req, *plan);
  return text;
}

std::string Server::handle_execute(const Job& job, std::uint64_t rid) {
  const Request& req = job.req;
  const plan::Planner& planner = planner_for(req.machine);
  const machine::MachineConfig& mc = planner.machine();
  const dist::Kind kind = dist::kind_from_name(req.dist);
  const int s = req.sources != 0 ? req.sources : std::max(2, mc.p / 4);
  const std::vector<Rank> sources =
      dist::generate(kind, dist::Grid{mc.rows, mc.cols}, s, req.seed);
  const plan::Signature sig =
      plan::make_signature(mc, sources, req.len, req.dist, req.faults);
  const std::shared_ptr<const plan::Plan> plan = cache_.plan_shared(sig, [&] {
    if (options_.plan_hook) options_.plan_hook();
    return planner.plan(sources, req.len, req.dist, req.faults);
  });

  // "[SEED:]SPEC", as in spb_plan --faults; the full text is the signature
  // context, the split parts drive the injected run.
  fault::FaultSpec spec;
  std::uint64_t fault_seed = 1;
  if (!req.faults.empty()) {
    std::string text = req.faults;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
      fault_seed = parse_u64_or_throw("fault seed in \"faults\"",
                                      text.substr(0, colon));
      text = text.substr(colon + 1);
    }
    spec = fault::FaultSpec::parse(text);
  }

  const stop::AlgorithmPtr algorithm = stop::find_algorithm(plan->best());
  const stop::Problem problem = stop::make_problem(mc, sources, req.len);
  const stop::RunResult result = stop::run(
      *algorithm, problem, stop::RunConfig{}.faults(spec, fault_seed));
  std::string text;
  write_execute_response(text, rid, req, algorithm->name(), result);
  return text;
}

std::string Server::handle_stats(const Job& job, std::uint64_t rid) {
  // The fence in worker_loop() guarantees requests [0, seq) are flushed
  // and no later job is running: every snapshot below covers exactly the
  // requests submitted before this one.
  const bool det = job.req.deterministic;
  const RequestCounters counts = counters();
  const std::vector<plan::CacheStats> shards = cache_.shard_stats();
  plan::CacheStats total;
  for (const plan::CacheStats& s : shards) total += s;

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("id", rid);
  w.field("ok", true);
  w.field("op", "stats");

  w.key("requests");
  w.begin_object();
  w.field("plan", counts.plan);
  w.field("execute", counts.execute);
  w.field("stats", counts.stats);
  w.field("errors", counts.errors);
  w.field("shed", counts.shed);
  w.end_object();

  w.key("cache");
  w.begin_object();
  w.field("shards", static_cast<std::uint64_t>(shards.size()));
  w.field("capacity", static_cast<std::uint64_t>(cache_.capacity()));
  w.field("size", static_cast<std::uint64_t>(cache_.size()));
  w.field("hits", total.hits);
  w.field("misses", total.misses);
  w.field("evictions", total.evictions);
  if (!det) w.field("coalesced", total.coalesced);
  w.field("hit_rate", total.hit_rate(), 4);
  w.key("per_shard");
  w.begin_array();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    w.begin_object();
    w.field("hits", shards[i].hits);
    w.field("misses", shards[i].misses);
    w.field("evictions", shards[i].evictions);
    if (!det) w.field("coalesced", shards[i].coalesced);
    w.field("size", static_cast<std::uint64_t>(cache_.shard_size(i)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (!det) {
    std::uint64_t max_depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      max_depth = queue_max_depth_;
    }
    w.key("queue");
    w.begin_object();
    w.field("limit", static_cast<std::uint64_t>(options_.max_queue));
    w.field("max_depth", max_depth);
    w.end_object();

    const LatencyHistogram::Snapshot lat = latency_.snapshot();
    w.key("latency");
    w.begin_object();
    w.field("count", lat.total);
    w.field("p50_us", lat.percentile_us(50), 3);
    w.field("p95_us", lat.percentile_us(95), 3);
    w.field("p99_us", lat.percentile_us(99), 3);
    w.field("max_us", lat.max_us, 3);
    w.end_object();
  }
  w.end_object();
  os << "\n";
  return os.str();
}

const plan::Planner& Server::planner_for(const std::string& machine_name) {
  const std::string& key =
      machine_name.empty() ? options_.machine : machine_name;
  std::lock_guard<std::mutex> lock(planners_mu_);
  const auto it = planners_.find(key);
  if (it != planners_.end()) return *it->second;
  // machine::from_name throws CheckError on unknown machines; the caller
  // turns it into a structured error response.
  auto planner = std::make_unique<plan::Planner>(machine::from_name(key));
  return *planners_.emplace(key, std::move(planner)).first->second;
}

void Server::emit(std::uint64_t seq, std::string text, Outcome outcome) {
  bool advanced = false;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    reorder_.emplace(seq, std::make_pair(std::move(text), outcome));
    for (auto it = reorder_.find(next_out_.load(std::memory_order_relaxed));
         it != reorder_.end();
         it = reorder_.find(next_out_.load(std::memory_order_relaxed))) {
      out_ << it->second.first;
      switch (it->second.second) {
        case Outcome::kPlan:
          ++counters_.plan;
          break;
        case Outcome::kExecute:
          ++counters_.execute;
          break;
        case Outcome::kStats:
          ++counters_.stats;
          break;
        case Outcome::kError:
          ++counters_.errors;
          break;
        case Outcome::kShed:
          ++counters_.shed;
          break;
      }
      reorder_.erase(it);
      next_out_.fetch_add(1, std::memory_order_release);
      advanced = true;
    }
    if (advanced) out_.flush();
  }
  if (advanced) {
    out_cv_.notify_all();    // drain() and stats fences watch next_out_
    queue_cv_.notify_all();  // a stats fence may be runnable now
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(out_mu_);
  out_cv_.wait(lock, [this] {
    return next_out_.load(std::memory_order_relaxed) ==
           submitted_.load(std::memory_order_relaxed);
  });
}

std::uint64_t Server::submitted() const {
  return submitted_.load(std::memory_order_relaxed);
}

RequestCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(out_mu_);
  return counters_;
}

std::uint64_t Server::queue_max_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_max_depth_;
}

obs::ServeSection Server::report_section() const {
  obs::ServeSection section;
  section.machine = options_.machine;
  section.workers = options_.workers;

  const RequestCounters counts = counters();
  section.requests_plan = counts.plan;
  section.requests_execute = counts.execute;
  section.requests_stats = counts.stats;
  section.requests_error = counts.errors;
  section.requests_shed = counts.shed;

  section.queue_limit = options_.max_queue;
  section.queue_max_depth = queue_max_depth();

  const std::vector<plan::CacheStats> shards = cache_.shard_stats();
  section.cache_shards.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i)
    section.cache_shards.push_back(
        {.hits = shards[i].hits,
         .misses = shards[i].misses,
         .evictions = shards[i].evictions,
         .coalesced = shards[i].coalesced,
         .size = static_cast<std::uint64_t>(cache_.shard_size(i))});
  section.cache_capacity = static_cast<std::uint64_t>(cache_.capacity());

  const LatencyHistogram::Snapshot lat = latency_.snapshot();
  section.latency_count = lat.total;
  section.latency_p50_us = lat.percentile_us(50);
  section.latency_p95_us = lat.percentile_us(95);
  section.latency_p99_us = lat.percentile_us(99);
  section.latency_max_us = lat.max_us;
  return section;
}

}  // namespace spb::serve
