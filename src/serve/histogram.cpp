#include "serve/histogram.h"

#include <bit>
#include <cmath>

namespace spb::serve {

int LatencyHistogram::bucket_of(double latency_us) {
  if (!(latency_us > kBaseUs)) return 0;
  // Half-octave index: two buckets per doubling.
  const int idx =
      static_cast<int>(std::floor(2.0 * std::log2(latency_us / kBaseUs)));
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

double LatencyHistogram::bucket_upper_us(int bucket) {
  return kBaseUs * std::exp2(0.5 * (bucket + 1));
}

void LatencyHistogram::record(double latency_us) {
  if (latency_us < 0 || std::isnan(latency_us)) latency_us = 0;
  buckets_[static_cast<std::size_t>(bucket_of(latency_us))].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_bits_.load(std::memory_order_relaxed);
  const std::uint64_t mine = std::bit_cast<std::uint64_t>(latency_us);
  // Non-negative doubles order like their bit patterns.
  while (std::bit_cast<double>(seen) < latency_us &&
         !max_bits_.compare_exchange_weak(seen, mine,
                                          std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    snap.total += snap.counts[static_cast<std::size_t>(i)];
  }
  snap.max_us =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

double LatencyHistogram::Snapshot::percentile_us(double p) const {
  if (total == 0) return 0;
  if (p > 100) p = 100;
  if (p <= 0) p = 0.0001;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      const double edge = bucket_upper_us(i);
      return edge < max_us ? edge : max_us;
    }
  }
  return max_us;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
}

}  // namespace spb::serve
