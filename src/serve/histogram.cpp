#include "serve/histogram.h"

#include <bit>
#include <cmath>

namespace spb::serve {

int LatencyHistogram::bucket_of(double latency_us) {
  if (!(latency_us > kBaseUs)) return 0;
  // Half-octave index: two buckets per doubling.
  const int idx =
      static_cast<int>(std::floor(2.0 * std::log2(latency_us / kBaseUs)));
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

double LatencyHistogram::bucket_upper_us(int bucket) {
  return kBaseUs * std::exp2(0.5 * (bucket + 1));
}

void LatencyHistogram::record(double latency_us) {
  // Normalize to strictly non-negative, non-NaN values.  The old clamp
  // (`< 0`) let -0.0 through; its bit pattern (0x8000...) is the *largest*
  // unsigned value, so a -0.0 sample would wedge a bit-pattern-compared
  // maximum at "zero" forever.  The comparison below is done on doubles,
  // so -0.0 is only a correctness hazard for the stored initial state —
  // but normalizing keeps every stored pattern canonical and the invariant
  // trivially checkable.
  if (!(latency_us > 0)) latency_us = 0;
  buckets_[static_cast<std::size_t>(bucket_of(latency_us))].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free running maximum.  Ordering argument: the CAS loop compares
  // *as doubles* (never as bit patterns) and only ever replaces a strictly
  // smaller value.  Every stored pattern is a normalized non-negative
  // double (+0.0 initial state, reset, and the clamp above), so there is
  // no -0.0/NaN pattern that could mis-order.  On CAS failure `seen` is
  // reloaded, so the loop terminates as soon as some thread has published
  // a value >= ours; relaxed ordering suffices because the histogram
  // promises only that max >= every recorded sample once the recording
  // threads are quiescent (ServeStats uses its own fence for that).
  std::uint64_t seen = max_bits_.load(std::memory_order_relaxed);
  const std::uint64_t mine = std::bit_cast<std::uint64_t>(latency_us);
  while (std::bit_cast<double>(seen) < latency_us &&
         !max_bits_.compare_exchange_weak(seen, mine,
                                          std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    snap.total += snap.counts[static_cast<std::size_t>(i)];
  }
  snap.max_us =
      std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

double LatencyHistogram::Snapshot::percentile_us(double p) const {
  if (total == 0) return 0;
  if (p > 100) p = 100;
  if (p <= 0) p = 0.0001;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      const double edge = bucket_upper_us(i);
      return edge < max_us ? edge : max_us;
    }
  }
  return max_us;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
}

}  // namespace spb::serve
