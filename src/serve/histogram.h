// Fixed-bucket latency histogram for the serve layer's per-request
// percentiles.  64 geometric buckets (half-octave resolution) spanning
// 0.25us to ~20 minutes; record() is two relaxed atomic ops, so worker
// threads share one histogram without contention, and percentile queries
// walk a snapshot of the counters.
//
// Percentiles are reported as the upper edge of the bucket holding the
// requested rank — a <= 41% overestimate by construction (sqrt(2) bucket
// ratio), which is the usual trade for a lock-free fixed-size histogram
// (HdrHistogram makes the same one with finer buckets).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace spb::serve {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;
  /// Lower edge of bucket 0; bucket i spans [kBaseUs*2^(i/2),
  /// kBaseUs*2^((i+1)/2)), with bucket 0 absorbing everything below.
  static constexpr double kBaseUs = 0.25;

  void record(double latency_us);

  /// Immutable counter snapshot for consistent multi-percentile queries.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double max_us = 0;

    /// Upper bucket edge holding the p-th percentile (p in (0, 100]);
    /// 0 when the histogram is empty.  Clamped to max_us so the tail
    /// bucket's edge never overstates an observed maximum.
    double percentile_us(double p) const;
  };
  Snapshot snapshot() const;

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  void reset();

  /// Bucket index for a latency (exposed for the unit tests).
  static int bucket_of(double latency_us);
  /// Upper edge of a bucket, microseconds.
  static double bucket_upper_us(int bucket);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_{0};
  /// Exact observed maximum, CAS-maintained on the raw double bits.
  std::atomic<std::uint64_t> max_bits_{0};
};

}  // namespace spb::serve
