#include "common/math.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

namespace {

// Shared skeleton: i = ceil(s/r) diagonals, the anchor diagonal first, the
// rest evenly spaced in the column dimension (with wraparound), each filled
// top row to bottom row, the last possibly partial.  `col_at(row, offset)`
// distinguishes right diagonals from left ones.
template <typename ColAt>
std::vector<Rank> diagonals(const Grid& grid, int s, ColAt col_at) {
  detail::require_valid_s(grid, s);
  const int i = static_cast<int>(ceil_div(s, grid.rows));
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  int placed = 0;
  for (int k = 0; k < i && placed < s; ++k) {
    const int offset = detail::spaced(k, i, grid.cols);
    for (int row = 0; row < grid.rows && placed < s; ++row, ++placed)
      out.push_back(grid.rank_of(row, col_at(row, offset)));
  }
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace

std::vector<Rank> diag_right_distribution(const Grid& grid, int s) {
  // Dr: anchor runs (0,0), (1,1), ..., wrapping columns.
  return diagonals(grid, s, [&grid](int row, int offset) {
    return (row + offset) % grid.cols;
  });
}

std::vector<Rank> diag_left_distribution(const Grid& grid, int s) {
  // Dl: anchor runs (0,c-1), (1,c-2), ..., wrapping columns.
  return diagonals(grid, s, [&grid](int row, int offset) {
    const int c = grid.cols;
    return ((grid.cols - 1 - row - offset) % c + c) % c;
  });
}

}  // namespace spb::dist
