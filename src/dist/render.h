// ASCII rendering of a source distribution on its grid ('S' = source,
// '.' = empty), used by examples and failure messages — a misplaced
// diagonal is obvious at a glance.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "dist/grid.h"

namespace spb::dist {

std::string render(const Grid& grid, const std::vector<Rank>& sources);

}  // namespace spb::dist
