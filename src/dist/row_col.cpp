#include "common/math.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> row_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  const int i = static_cast<int>(ceil_div(s, grid.cols));
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  int placed = 0;
  for (int j = 0; j < i && placed < s; ++j) {
    const int row = detail::spaced(j, i, grid.rows);
    for (int col = 0; col < grid.cols && placed < s; ++col, ++placed)
      out.push_back(grid.rank_of(row, col));
  }
  return detail::finalize(grid, std::move(out), s);
}

std::vector<Rank> column_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  const int i = static_cast<int>(ceil_div(s, grid.rows));
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  int placed = 0;
  for (int j = 0; j < i && placed < s; ++j) {
    const int col = detail::spaced(j, i, grid.cols);
    for (int row = 0; row < grid.rows && placed < s; ++row, ++placed)
      out.push_back(grid.rank_of(row, col));
  }
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
