#include <vector>

#include "common/math.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> band_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  const int b = static_cast<int>(ceil_div(grid.cols, grid.rows));

  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  std::vector<bool> offset_used(static_cast<std::size_t>(grid.cols), false);
  int placed = 0;
  // Layer m widens every band by one right diagonal; the nominal width is
  // ceil(s/(b*r)) but we simply keep layering until s sources are placed,
  // which also covers degenerate shapes where neighbouring bands collide.
  for (int m = 0; placed < s && m < grid.cols; ++m) {
    for (int k = 0; k < b && placed < s; ++k) {
      const int offset = (detail::spaced(k, b, grid.cols) + m) % grid.cols;
      if (offset_used[static_cast<std::size_t>(offset)]) continue;
      offset_used[static_cast<std::size_t>(offset)] = true;
      for (int row = 0; row < grid.rows && placed < s; ++row, ++placed)
        out.push_back(grid.rank_of(row, (row + offset) % grid.cols));
    }
  }
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
