#include "common/math.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> square_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  // ceil(sqrt(s)) x ceil(sqrt(s)) block anchored at (0,0), filled column by
  // column.  If the mesh is shorter than the nominal side the block leans
  // wider, and on very narrow meshes it grows taller instead — always the
  // most compact block that fits.
  const int side = static_cast<int>(ceil_sqrt(s));
  const int height =
      std::min(grid.rows,
               std::max(side, static_cast<int>(ceil_div(s, grid.cols))));
  const int width = static_cast<int>(ceil_div(s, height));
  SPB_CHECK(width <= grid.cols);
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  int placed = 0;
  for (int col = 0; col < width && placed < s; ++col)
    for (int row = 0; row < height && placed < s; ++row, ++placed)
      out.push_back(grid.rank_of(row, col));
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
