// Ideal source distributions for the repositioning algorithms (paper
// Section 3).
//
// The paper observes that "the machine dimension effects the ideal
// distribution of sources" — e.g. R(20) on a 10x10 mesh is ideal with rows
// {0, 6} but not with rows {0, 5}, because rows 0 and 5 pair in Br_Lin's
// very first halving iteration and merge instead of spreading.  Rather
// than hard-coding patterns we *search* for ideal placements against the
// halving structure itself: a greedy construction adds one source at a
// time, maximizing the activity-growth profile (lexicographically), with
// ties broken towards the most spread-out placement (largest minimum
// distance — which also minimizes physical link contention on the mesh)
// and then the smallest index.  Results are memoized per (n, k).
#pragma once

#include <vector>

#include "common/types.h"
#include "dist/grid.h"

namespace spb::dist {

/// Greedy ideal placement of k sources on an n-position halving segment:
/// sorted positions such that the active set grows as fast as the merge
/// pattern allows (for k <= floor(n/2) it provably doubles every iteration
/// — the property tests assert this).  Memoized; thread-hostile like the
/// rest of the library (single simulation thread).
std::vector<int> ideal_positions(int n, int k);

/// Ideal placement of s sources for Br_Lin on the p-rank linear order.
std::vector<Rank> ideal_linear(const Grid& grid, int s);

/// Ideal placement for Br_xy_source: i = ceil(s/c) full rows (last
/// partial) at ideal_positions(rows, i), so the column phase doubles the
/// set of active rows every iteration.  Sorted.
std::vector<Rank> ideal_rows(const Grid& grid, int s);

/// Same construction along columns (used for Br_xy_dim when its fixed
/// dimension order makes columns the spreading dimension).
std::vector<Rank> ideal_cols(const Grid& grid, int s);

}  // namespace spb::dist
