#include "dist/ideal.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "coll/halving.h"
#include "common/check.h"
#include "common/math.h"
#include "dist/detail.h"

namespace spb::dist {

namespace {

/// Minimum circular distance from candidate c to the chosen set (the
/// spread tie-breaker; circular so the last and first rows of a wrapped
/// diagonal-ish layout count as close).
int min_distance(const std::vector<char>& chosen, int n, int c) {
  int best = n;
  for (int i = 0; i < n; ++i) {
    if (!chosen[static_cast<std::size_t>(i)]) continue;
    const int d = std::abs(i - c);
    best = std::min(best, std::min(d, n - d));
  }
  return best;
}

std::vector<int> greedy_ideal(int n, int k) {
  std::vector<char> chosen(static_cast<std::size_t>(n), 0);
  std::vector<int> result;
  result.reserve(static_cast<std::size_t>(k));
  for (int added = 0; added < k; ++added) {
    int best_cand = -1;
    std::vector<int> best_profile;
    int best_dist = -1;
    for (int c = 0; c < n; ++c) {
      if (chosen[static_cast<std::size_t>(c)]) continue;
      chosen[static_cast<std::size_t>(c)] = 1;
      std::vector<int> profile =
          coll::HalvingSchedule::activity_profile(chosen);
      chosen[static_cast<std::size_t>(c)] = 0;
      const int dist = min_distance(chosen, n, c);
      const bool better =
          best_cand < 0 || profile > best_profile ||
          (profile == best_profile && dist > best_dist);
      if (better) {
        best_cand = c;
        best_profile = std::move(profile);
        best_dist = dist;
      }
    }
    SPB_CHECK(best_cand >= 0);
    chosen[static_cast<std::size_t>(best_cand)] = 1;
    result.push_back(best_cand);
  }
  std::sort(result.begin(), result.end());
  return result;
}

// One-at-a-time greedy can paint itself into a corner (a set that was
// optimal for k-1 sources need not extend to an optimal k set); a few
// hill-climbing passes that try relocating each source to every free
// position recover the cases that matter.
std::vector<int> refine_ideal(int n, std::vector<int> positions) {
  const int k = static_cast<int>(positions.size());
  if (k == 0 || k == n) return positions;
  std::vector<char> chosen(static_cast<std::size_t>(n), 0);
  for (const int p : positions) chosen[static_cast<std::size_t>(p)] = 1;
  std::vector<int> profile = coll::HalvingSchedule::activity_profile(chosen);

  for (int pass = 0; pass < 4; ++pass) {
    bool improved = false;
    for (int i = 0; i < k; ++i) {
      const int from = positions[static_cast<std::size_t>(i)];
      for (int to = 0; to < n; ++to) {
        if (chosen[static_cast<std::size_t>(to)]) continue;
        chosen[static_cast<std::size_t>(from)] = 0;
        chosen[static_cast<std::size_t>(to)] = 1;
        std::vector<int> candidate =
            coll::HalvingSchedule::activity_profile(chosen);
        if (candidate > profile) {
          profile = std::move(candidate);
          positions[static_cast<std::size_t>(i)] = to;
          improved = true;
          break;  // re-evaluate this source from its new home
        }
        chosen[static_cast<std::size_t>(to)] = 0;
        chosen[static_cast<std::size_t>(from)] = 1;
      }
    }
    if (!improved) break;
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

}  // namespace

namespace {

std::vector<int> profile_of(int n, const std::vector<int>& positions) {
  std::vector<char> flags(static_cast<std::size_t>(n), 0);
  for (const int p : positions) flags[static_cast<std::size_t>(p)] = 1;
  return coll::HalvingSchedule::activity_profile(flags);
}

}  // namespace

std::vector<int> ideal_positions(int n, int k) {
  SPB_REQUIRE(n >= 1, "segment must have at least one position");
  SPB_REQUIRE(k >= 0 && k <= n, "source count " << k << " outside 0.." << n);
  if (k == 0) return {};
  // Process-wide memo shared by every concurrent sweep job; the parallel
  // runner calls generate() from worker threads, so the whole
  // lookup-or-compute is serialized.  Holding the mutex across the search
  // is deliberate: it also deduplicates the (expensive) computation when
  // several workers ask for the same (n, k) at once, and any combination
  // is computed at most once per process anyway.
  static std::mutex cache_mutex;
  static std::map<std::pair<int, int>, std::vector<int>> cache;
  const std::scoped_lock lock(cache_mutex);
  const auto key = std::make_pair(n, k);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  // Three seeds, each hill-climbed; the winner therefore dominates every
  // seed's raw profile.  The identity prefix is the provably clean one for
  // k <= each level's half (it recursively stays inside first halves); the
  // greedy seed wins the spread tie-breaks; evenly spaced covers the rest.
  std::vector<int> identity(static_cast<std::size_t>(k));
  std::vector<int> spaced(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    identity[static_cast<std::size_t>(j)] = j;
    spaced[static_cast<std::size_t>(j)] =
        static_cast<int>(static_cast<long long>(j) * n / k);
  }
  std::vector<std::vector<int>> seeds;
  seeds.push_back(greedy_ideal(n, k));
  seeds.push_back(std::move(identity));
  seeds.push_back(std::move(spaced));

  std::vector<int> best;
  std::vector<int> best_profile;
  for (std::vector<int>& seed : seeds) {
    std::vector<int> candidate = refine_ideal(n, std::move(seed));
    std::vector<int> profile = profile_of(n, candidate);
    if (best.empty() || profile > best_profile) {
      best = std::move(candidate);
      best_profile = std::move(profile);
    }
  }
  cache.emplace(key, best);
  return best;
}

std::vector<Rank> ideal_linear(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  const std::vector<int> positions = ideal_positions(grid.p(), s);
  std::vector<Rank> out(positions.begin(), positions.end());
  return detail::finalize(grid, std::move(out), s);
}

namespace {

// Shared skeleton of ideal_rows / ideal_cols: pick the ideal set of lines
// along the spreading dimension and fill each fully; the remainder goes to
// the line whose late activation hurts least — the last one added by the
// greedy search is as good as any, so we use the largest index.
std::vector<Rank> ideal_lines(const Grid& grid, int s, bool lines_are_rows) {
  const int line_count = lines_are_rows ? grid.rows : grid.cols;
  const int line_len = lines_are_rows ? grid.cols : grid.rows;
  const int lines = static_cast<int>(ceil_div(s, line_len));
  const std::vector<int> picks = ideal_positions(line_count, lines);

  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  int remaining = s;
  for (int j = 0; j < lines; ++j) {
    const int line = picks[static_cast<std::size_t>(j)];
    const int fill = std::min(remaining, line_len);
    for (int k = 0; k < fill; ++k)
      out.push_back(lines_are_rows ? grid.rank_of(line, k)
                                   : grid.rank_of(k, line));
    remaining -= fill;
  }
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace

std::vector<Rank> ideal_rows(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  return ideal_lines(grid, s, /*lines_are_rows=*/true);
}

std::vector<Rank> ideal_cols(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  return ideal_lines(grid, s, /*lines_are_rows=*/false);
}

}  // namespace spb::dist
