// Canonical hashing of source distributions, used by the plan-cache keys:
// two source lists describing the same multiset of ranks must hash alike
// regardless of the order they arrive in, and any single-rank difference
// should change the hash (to splitmix64 quality).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace spb::dist {

/// Order-independent hash of a source multiset: the input is copied,
/// sorted, and folded through a splitmix64 chain.  Duplicate ranks (not
/// produced by the generators, but accepted) contribute per occurrence.
std::uint64_t source_multiset_hash(std::vector<Rank> sources);

/// Hash-chaining step shared by the signature scheme: mixes `value` into
/// `seed` with a splitmix64 round (not commutative — order matters, which
/// is exactly what the canonicalized callers want).
std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value);

}  // namespace spb::dist
