#include "common/rng.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> random_distribution(const Grid& grid, int s,
                                      std::uint64_t seed) {
  detail::require_valid_s(grid, s);
  Rng rng(seed);
  std::vector<Rank> out = rng.sample_without_replacement(grid.p(), s);
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
