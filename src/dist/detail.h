// Internal helpers shared by the distribution family implementations.
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "dist/grid.h"

namespace spb::dist::detail {

inline void require_valid_s(const Grid& grid, int s) {
  SPB_REQUIRE(s >= 1 && s <= grid.p(),
              "source count " << s << " outside 1.." << grid.p());
}

/// Sorts, and verifies the generator produced exactly s distinct in-range
/// ranks — every family funnels through this.
inline std::vector<Rank> finalize(const Grid& grid, std::vector<Rank> v,
                                  int s) {
  std::sort(v.begin(), v.end());
  SPB_CHECK_MSG(static_cast<int>(v.size()) == s,
                "generator produced " << v.size() << " sources, wanted " << s);
  SPB_CHECK_MSG(std::adjacent_find(v.begin(), v.end()) == v.end(),
                "generator produced duplicate sources");
  SPB_CHECK(v.front() >= 0 && v.back() < grid.p());
  return v;
}

/// Evenly spaced index j of n picks over a dimension of size `size`
/// (floor(j*size/n)), the spacing rule the paper uses for rows, columns and
/// diagonals.
inline int spaced(int j, int n, int size) {
  return static_cast<int>((static_cast<long long>(j) * size) / n);
}

}  // namespace spb::dist::detail
