#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> equal_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  // Rank floor(j*p/s): processor (0,0) is a source and consecutive sources
  // are floor(p/s) or ceil(p/s) ranks apart, exactly the paper's E(s).
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  for (int j = 0; j < s; ++j)
    out.push_back(static_cast<Rank>(detail::spaced(j, s, grid.p())));
  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
