// The paper's source-distribution families (Section 4), defined on the
// logical r x c grid with row-major rank indexing, plus a seeded uniform
// random distribution.  Every generator returns a sorted vector of exactly
// s distinct ranks.
//
//   R(s)   i = ceil(s/c) evenly spaced rows, filled left to right; all but
//          the last full.
//   C(s)   analogous for columns.
//   E(s)   rank floor(j*p/s) for j = 0..s-1 — processor (0,0) plus every
//          floor(p/s)-th or ceil(p/s)-th processor.
//   Dr(s)  ceil(s/r) right diagonals (top-left to bottom-right, wrapping in
//          the column dimension), the main diagonal first, the rest evenly
//          spaced; the last possibly partial.
//   Dl(s)  left diagonals, starting with (0, c-1) .. (r-1, c-1-(r-1) mod c).
//   B(s)   b = ceil(c/r) evenly spaced bands of right diagonals, each of
//          width ceil(s/(b*r)).
//   Cr(s)  union of a row and a column pattern with roughly s/2 sources
//          each: ceil(s/(2c)) full rows, then evenly spaced columns filled
//          top-down (skipping cells that are already sources) until s.
//   Sq(s)  a ceil(sqrt(s)) x ceil(sqrt(s)) block anchored at (0,0), filled
//          column by column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "dist/grid.h"

namespace spb::dist {

enum class Kind {
  kRow,        // R(s)
  kColumn,     // C(s)
  kEqual,      // E(s)
  kDiagRight,  // Dr(s)
  kDiagLeft,   // Dl(s)
  kBand,       // B(s)
  kCross,      // Cr(s)
  kSquare,     // Sq(s)
  kRandom,     // uniform, seeded
};

/// The paper's abbreviation: "R", "C", "E", "Dr", "Dl", "B", "Cr", "Sq",
/// "Rand".
std::string kind_name(Kind kind);

/// Parses a kind_name() string back into a Kind (throws CheckError on
/// unknown names).
Kind kind_from_name(const std::string& name);

/// All kinds, in the paper's order.
const std::vector<Kind>& all_kinds();

/// Generates the distribution: s sorted distinct source ranks on the grid.
/// `seed` only affects kRandom.
std::vector<Rank> generate(Kind kind, const Grid& grid, int s,
                           std::uint64_t seed = 1);

// Individual families (exposed for direct use and focused tests).
std::vector<Rank> row_distribution(const Grid& grid, int s);
std::vector<Rank> column_distribution(const Grid& grid, int s);
std::vector<Rank> equal_distribution(const Grid& grid, int s);
std::vector<Rank> diag_right_distribution(const Grid& grid, int s);
std::vector<Rank> diag_left_distribution(const Grid& grid, int s);
std::vector<Rank> band_distribution(const Grid& grid, int s);
std::vector<Rank> cross_distribution(const Grid& grid, int s);
std::vector<Rank> square_distribution(const Grid& grid, int s);
std::vector<Rank> random_distribution(const Grid& grid, int s,
                                      std::uint64_t seed);

}  // namespace spb::dist
