// Logical mesh view of the rank space: rank = row * cols + col (row-major,
// matching the paper's processor indexing).  Source distributions and the
// Br_xy_* algorithms are defined in terms of this grid; on the Paragon it
// coincides with the physical mesh, on the T3D it is purely logical.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace spb::dist {

struct Grid {
  int rows = 1;
  int cols = 1;

  int p() const { return rows * cols; }

  Rank rank_of(int row, int col) const {
    SPB_CHECK(row >= 0 && row < rows && col >= 0 && col < cols);
    return row * cols + col;
  }
  int row_of(Rank r) const {
    SPB_CHECK(r >= 0 && r < p());
    return r / cols;
  }
  int col_of(Rank r) const {
    SPB_CHECK(r >= 0 && r < p());
    return r % cols;
  }

  /// All ranks of one row, left to right.
  std::vector<Rank> row_ranks(int row) const;
  /// All ranks of one column, top to bottom.
  std::vector<Rank> col_ranks(int col) const;

  /// Sources per row / per column for a source set (the max_r / max_c
  /// quantities driving Br_xy_source's dimension choice).
  std::vector<int> row_counts(const std::vector<Rank>& sources) const;
  std::vector<int> col_counts(const std::vector<Rank>& sources) const;
};

}  // namespace spb::dist
