#include "dist/render.h"

#include <algorithm>

namespace spb::dist {

std::string render(const Grid& grid, const std::vector<Rank>& sources) {
  std::vector<char> mark(static_cast<std::size_t>(grid.p()), 0);
  for (const Rank s : sources)
    if (s >= 0 && s < grid.p()) mark[static_cast<std::size_t>(s)] = 1;
  std::string out;
  out.reserve(static_cast<std::size_t>(grid.p() + grid.rows));
  for (int r = 0; r < grid.rows; ++r) {
    for (int c = 0; c < grid.cols; ++c)
      out += mark[static_cast<std::size_t>(grid.rank_of(r, c))] ? 'S' : '.';
    out += '\n';
  }
  return out;
}

}  // namespace spb::dist
