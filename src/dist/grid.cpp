#include "dist/grid.h"

namespace spb::dist {

std::vector<Rank> Grid::row_ranks(int row) const {
  SPB_REQUIRE(row >= 0 && row < rows, "row out of range");
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(cols));
  for (int c = 0; c < cols; ++c) out.push_back(rank_of(row, c));
  return out;
}

std::vector<Rank> Grid::col_ranks(int col) const {
  SPB_REQUIRE(col >= 0 && col < cols, "column out of range");
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) out.push_back(rank_of(r, col));
  return out;
}

std::vector<int> Grid::row_counts(const std::vector<Rank>& sources) const {
  std::vector<int> counts(static_cast<std::size_t>(rows), 0);
  for (const Rank s : sources) ++counts[static_cast<std::size_t>(row_of(s))];
  return counts;
}

std::vector<int> Grid::col_counts(const std::vector<Rank>& sources) const {
  std::vector<int> counts(static_cast<std::size_t>(cols), 0);
  for (const Rank s : sources) ++counts[static_cast<std::size_t>(col_of(s))];
  return counts;
}

}  // namespace spb::dist
