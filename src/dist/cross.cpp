#include <vector>

#include "common/math.h"
#include "dist/detail.h"
#include "dist/distribution.h"

namespace spb::dist {

std::vector<Rank> cross_distribution(const Grid& grid, int s) {
  detail::require_valid_s(grid, s);
  // Roughly half the sources in full rows, the rest poured into evenly
  // spaced columns top-down, skipping cells the rows already claimed.  For
  // Cr(30) on 10x10 this reproduces the paper's Figure 1 exactly: rows 0
  // and 5 full, column 0 full, column 5 holding 4 sources (2 of them row
  // overlaps).
  const int nr =
      std::max<int>(1, static_cast<int>(ceil_div(s, 2 * grid.cols)));
  const int nc =
      std::max<int>(1, static_cast<int>(ceil_div(s, 2 * grid.rows)));

  std::vector<bool> taken(static_cast<std::size_t>(grid.p()), false);
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(s));
  const auto place = [&](Rank r) {
    if (taken[static_cast<std::size_t>(r)]) return;
    taken[static_cast<std::size_t>(r)] = true;
    out.push_back(r);
  };

  for (int j = 0; j < nr && static_cast<int>(out.size()) < s; ++j) {
    const int row = detail::spaced(j, nr, grid.rows);
    for (int col = 0; col < grid.cols && static_cast<int>(out.size()) < s;
         ++col)
      place(grid.rank_of(row, col));
  }
  for (int k = 0; k < nc && static_cast<int>(out.size()) < s; ++k) {
    const int col = detail::spaced(k, nc, grid.cols);
    for (int row = 0; row < grid.rows && static_cast<int>(out.size()) < s;
         ++row)
      place(grid.rank_of(row, col));
  }
  // Near-full meshes can exhaust the planned cross; pour the remainder in
  // row-major order so the generator always yields exactly s sources.
  for (Rank r = 0; static_cast<int>(out.size()) < s && r < grid.p(); ++r)
    place(r);

  return detail::finalize(grid, std::move(out), s);
}

}  // namespace spb::dist
