#include "dist/signature.h"

#include <algorithm>

#include "common/rng.h"

namespace spb::dist {

std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t state = seed ^ (value * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

std::uint64_t source_multiset_hash(std::vector<Rank> sources) {
  std::sort(sources.begin(), sources.end());
  // Non-zero start so the empty multiset does not collide with {0}.
  std::uint64_t h = 0x5b7c6a4d3e2f1908ULL;
  h = hash_mix(h, static_cast<std::uint64_t>(sources.size()));
  for (const Rank r : sources)
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)));
  return h;
}

}  // namespace spb::dist
