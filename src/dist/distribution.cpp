#include "dist/distribution.h"

#include "common/check.h"

namespace spb::dist {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kRow:
      return "R";
    case Kind::kColumn:
      return "C";
    case Kind::kEqual:
      return "E";
    case Kind::kDiagRight:
      return "Dr";
    case Kind::kDiagLeft:
      return "Dl";
    case Kind::kBand:
      return "B";
    case Kind::kCross:
      return "Cr";
    case Kind::kSquare:
      return "Sq";
    case Kind::kRandom:
      return "Rand";
  }
  SPB_CHECK_MSG(false, "unreachable distribution kind");
  return {};
}

Kind kind_from_name(const std::string& name) {
  for (const Kind k : all_kinds())
    if (kind_name(k) == name) return k;
  SPB_REQUIRE(false, "unknown distribution name '" << name << "'");
  return Kind::kEqual;  // unreachable
}

const std::vector<Kind>& all_kinds() {
  static const std::vector<Kind> kinds = {
      Kind::kRow,      Kind::kColumn, Kind::kEqual,
      Kind::kDiagRight, Kind::kDiagLeft, Kind::kBand,
      Kind::kCross,    Kind::kSquare, Kind::kRandom,
  };
  return kinds;
}

std::vector<Rank> generate(Kind kind, const Grid& grid, int s,
                           std::uint64_t seed) {
  switch (kind) {
    case Kind::kRow:
      return row_distribution(grid, s);
    case Kind::kColumn:
      return column_distribution(grid, s);
    case Kind::kEqual:
      return equal_distribution(grid, s);
    case Kind::kDiagRight:
      return diag_right_distribution(grid, s);
    case Kind::kDiagLeft:
      return diag_left_distribution(grid, s);
    case Kind::kBand:
      return band_distribution(grid, s);
    case Kind::kCross:
      return cross_distribution(grid, s);
    case Kind::kSquare:
      return square_distribution(grid, s);
    case Kind::kRandom:
      return random_distribution(grid, s, seed);
  }
  SPB_CHECK_MSG(false, "unreachable distribution kind");
  return {};
}

}  // namespace spb::dist
