#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/parse.h"
#include "common/rng.h"

namespace spb::fault {

namespace {

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// Stateless decision hash: a splitmix64 chain over the seed and the event
/// identifiers, mapped to [0, 1).  Two calls with the same arguments agree
/// forever; unrelated events are independent to hash quality.
double decision_u01(std::uint64_t seed, std::uint64_t stream, Rank src,
                    Rank dst, std::uint32_t seq, int attempt) {
  std::uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  state ^= splitmix64(state) ^ (static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(src))
                                << 32 |
                                static_cast<std::uint32_t>(dst));
  state ^= splitmix64(state) ^ (static_cast<std::uint64_t>(seq) << 8 |
                                static_cast<std::uint64_t>(
                                    static_cast<unsigned>(attempt)));
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kDropStream = 1;
constexpr std::uint64_t kAckStream = 2;

double parse_double(const std::string& key, const std::string& value) {
  // Strict: "timeout=5x" (trailing junk) and "lat=1e999" (out of range)
  // fail here with the reason; "drop=-1" parses and is rejected by
  // FaultSpec::validate with the allowed range.
  double d = 0;
  std::string error;
  SPB_REQUIRE(try_parse_double(value, d, error),
              "fault spec " << key << "=" << value << ": " << error);
  return d;
}

}  // namespace

void FaultSpec::validate() const {
  SPB_REQUIRE(drop_rate >= 0 && drop_rate < 1,
              "drop rate must be in [0, 1), got " << drop_rate);
  SPB_REQUIRE(dup_rate >= 0 && dup_rate < 1,
              "dup rate must be in [0, 1), got " << dup_rate);
  SPB_REQUIRE(link_fraction >= 0 && link_fraction <= 1,
              "degraded link fraction must be in [0, 1]");
  SPB_REQUIRE(bandwidth_divisor >= 1.0,
              "bandwidth divisor must be >= 1, got " << bandwidth_divisor);
  SPB_REQUIRE(latency_factor >= 1.0,
              "latency factor must be >= 1, got " << latency_factor);
  SPB_REQUIRE(stragglers >= 0, "straggler count must be >= 0");
  SPB_REQUIRE(straggle_factor >= 1.0,
              "straggle factor must be >= 1, got " << straggle_factor);
  SPB_REQUIRE(window_us >= 0, "window must be >= 0");
  SPB_REQUIRE(retransmit_timeout_us > 0, "retransmit timeout must be > 0");
  SPB_REQUIRE(max_attempts >= 1 && max_attempts <= 32,
              "max attempts must be in [1, 32], got " << max_attempts);
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& part : split_commas(text)) {
    const std::size_t eq = part.find('=');
    SPB_REQUIRE(eq != std::string::npos && eq > 0,
                "fault spec entry '" << part << "' is not key=value");
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "drop") {
      spec.drop_rate = parse_double(key, value);
    } else if (key == "dup") {
      spec.dup_rate = parse_double(key, value);
    } else if (key == "links") {
      // FRACxDIV, e.g. 0.25x4: a quarter of the links at 4x slower.
      const std::size_t x = value.find('x');
      SPB_REQUIRE(x != std::string::npos,
                  "links wants FRACxDIV (e.g. 0.25x4), got '" << value << "'");
      spec.link_fraction = parse_double(key, value.substr(0, x));
      spec.bandwidth_divisor = parse_double(key, value.substr(x + 1));
    } else if (key == "lat") {
      spec.latency_factor = parse_double(key, value);
    } else if (key == "straggle") {
      // NxF, e.g. 1x3: one rank, three times slower.
      const std::size_t x = value.find('x');
      SPB_REQUIRE(x != std::string::npos,
                  "straggle wants NxF (e.g. 1x3), got '" << value << "'");
      spec.stragglers =
          static_cast<int>(parse_double(key, value.substr(0, x)));
      spec.straggle_factor = parse_double(key, value.substr(x + 1));
    } else if (key == "window") {
      spec.window_us = parse_double(key, value);
    } else if (key == "timeout") {
      spec.retransmit_timeout_us = parse_double(key, value);
    } else if (key == "attempts") {
      spec.max_attempts = static_cast<int>(parse_double(key, value));
    } else {
      SPB_REQUIRE(false, "unknown fault spec key '"
                             << key
                             << "' (drop, dup, links, lat, straggle, window, "
                                "timeout, attempts)");
    }
  }
  spec.validate();
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  const auto emit = [&os, &sep](auto&& write) {
    os << sep;
    write();
    sep = ",";
  };
  if (drop_rate > 0) emit([&] { os << "drop=" << drop_rate; });
  if (dup_rate > 0) emit([&] { os << "dup=" << dup_rate; });
  if (link_fraction > 0)
    emit([&] { os << "links=" << link_fraction << "x" << bandwidth_divisor; });
  if (latency_factor > 1.0) emit([&] { os << "lat=" << latency_factor; });
  if (stragglers > 0)
    emit([&] { os << "straggle=" << stragglers << "x" << straggle_factor; });
  if (window_us > 0) emit([&] { os << "window=" << window_us; });
  if (retransmit_timeout_us != 50.0)
    emit([&] { os << "timeout=" << retransmit_timeout_us; });
  if (max_attempts != 8) emit([&] { os << "attempts=" << max_attempts; });
  return os.str();
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  spec_.validate();
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t seed,
                     int link_space, int ranks)
    : FaultPlan(spec, seed) {
  SPB_REQUIRE(link_space >= 0, "negative link space");
  SPB_REQUIRE(ranks >= 1, "a fault plan needs at least one rank");
  if (spec_.degrades_links() && link_space > 0) {
    // Seeded distinct choice of ceil(fraction * links) degraded links.
    const int want = std::min(
        link_space,
        static_cast<int>(std::ceil(spec_.link_fraction *
                                   static_cast<double>(link_space))));
    Rng rng(seed_ ^ 0xdeadbeefULL);
    std::vector<std::int32_t> picks =
        rng.sample_without_replacement(link_space, want);
    std::vector<LinkId> links(picks.begin(), picks.end());
    set_degraded(std::move(links), link_space);
  }
  pick_stragglers(ranks);
}

FaultPlan FaultPlan::for_links(const FaultSpec& spec, std::uint64_t seed,
                               std::vector<LinkId> links, int link_space,
                               int ranks) {
  FaultPlan plan(spec, seed);
  SPB_REQUIRE(ranks >= 1, "a fault plan needs at least one rank");
  plan.set_degraded(std::move(links), link_space);
  plan.pick_stragglers(ranks);
  return plan;
}

void FaultPlan::set_degraded(std::vector<LinkId> links, int link_space) {
  degraded_.assign(static_cast<std::size_t>(link_space), 0);
  std::sort(links.begin(), links.end());
  for (const LinkId l : links) {
    SPB_REQUIRE(l >= 0 && l < link_space, "degraded link " << l
                                              << " outside the link space");
    degraded_[static_cast<std::size_t>(l)] = 1;
  }
  degraded_list_ = std::move(links);
  if (degraded_list_.empty()) degraded_.clear();
}

void FaultPlan::pick_stragglers(int ranks) {
  if (spec_.stragglers <= 0 || spec_.straggle_factor <= 1.0) return;
  const int count = std::min(spec_.stragglers, ranks);
  Rng rng(seed_ ^ 0x5717a66eULL);
  const std::vector<std::int32_t> picks =
      rng.sample_without_replacement(ranks, count);
  stragglers_.assign(picks.begin(), picks.end());
  slowdown_.assign(static_cast<std::size_t>(ranks), 1.0);
  for (const Rank r : stragglers_)
    slowdown_[static_cast<std::size_t>(r)] = spec_.straggle_factor;
}

std::uint64_t FaultPlan::window_index(SimTime t) const {
  if (spec_.window_us <= 0) return 0;
  return static_cast<std::uint64_t>(t / spec_.window_us);
}

bool FaultPlan::window_active(SimTime t) const {
  if (spec_.window_us <= 0) return true;
  return window_index(t) % 2 == 0;
}

bool FaultPlan::transit_dropped(Rank src, Rank dst, std::uint32_t seq,
                                int attempt) const {
  if (spec_.drop_rate <= 0) return false;
  if (attempt + 1 >= spec_.max_attempts) return false;  // transient faults
  return decision_u01(seed_, kDropStream, src, dst, seq, attempt) <
         spec_.drop_rate;
}

bool FaultPlan::ack_dropped(Rank src, Rank dst, std::uint32_t seq,
                            int attempt) const {
  if (spec_.dup_rate <= 0) return false;
  return decision_u01(seed_, kAckStream, src, dst, seq, attempt) <
         spec_.dup_rate;
}

SimTime FaultPlan::backoff_us(int attempt) const {
  const int capped = std::min(attempt, 5);  // 32x ceiling
  return spec_.retransmit_timeout_us * static_cast<double>(1 << capped);
}

FaultPlanPtr parse_plan(const std::string& text, int link_space, int ranks,
                        std::uint64_t default_seed) {
  std::uint64_t seed = default_seed;
  std::string spec_text = text;
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    // Strict: std::stoull would wrap a "-1" seed to 2^64-1 silently.
    seed = parse_u64_or_throw("fault seed", text.substr(0, colon));
    spec_text = text.substr(colon + 1);
  }
  const FaultSpec spec = FaultSpec::parse(spec_text);
  return std::make_shared<const FaultPlan>(spec, seed, link_space, ranks);
}

}  // namespace spb::fault
