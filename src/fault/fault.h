// Deterministic fault injection: what can go wrong on the machine, decided
// up front from a seed.
//
// A FaultSpec describes an adverse environment — degraded links (bandwidth
// divisor + per-hop latency multiplier on a seeded subset of the directed
// links), transient in-transit message drops, lost delivery acknowledgements
// (which provoke duplicate retransmissions), and straggler ranks whose
// software overheads run slow.  A FaultPlan freezes one concrete instance of
// that spec: which links, which ranks, and a pure decision function for
// every (src, dst, seq, attempt) message event.
//
// Every decision is a stateless hash of (seed, identifiers), never a stateful
// RNG draw, so the plan's answers do not depend on the order the simulator
// asks — identical seed + spec gives byte-identical simulations regardless
// of run count or sweep-thread count.
//
// The runtime machinery that consumes a plan (per-send retransmit timers
// with bounded exponential backoff, duplicate suppression, degraded-route
// bypass) lives in mp::Runtime and net::NetworkModel; this layer only
// answers questions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace spb::fault {

/// Fault intensity knobs.  The default-constructed spec is "no faults" and
/// every hook gated on it must cost nothing (see RunOptions in stop/run.h).
struct FaultSpec {
  /// Probability that one transmission attempt is lost in transit.
  double drop_rate = 0.0;
  /// Probability that a delivered attempt's acknowledgement is lost, making
  /// the sender retransmit a duplicate the receiver must suppress.
  double dup_rate = 0.0;
  /// Fraction of the directed links degraded (seeded choice).
  double link_fraction = 0.0;
  /// Serialization slowdown on degraded links (1 = no degradation).
  double bandwidth_divisor = 1.0;
  /// Per-hop latency multiplier on degraded links.
  double latency_factor = 1.0;
  /// Number of straggler ranks (seeded choice).
  int stragglers = 0;
  /// Software-overhead multiplier applied to straggler ranks.
  double straggle_factor = 1.0;
  /// 0 = link degradation is permanent; otherwise it alternates on/off with
  /// this period (on during even windows), modelling transient brown-outs.
  SimTime window_us = 0.0;
  /// Base retransmit timeout; attempt k retries backoff_us(k) after its
  /// injection finished, doubling per attempt.
  SimTime retransmit_timeout_us = 50.0;
  /// Transmission attempts per message, including the first.  Drops are
  /// transient: the final attempt always goes through, so every fault plan
  /// still delivers everything and stop::verify must pass.
  int max_attempts = 8;

  /// True when any knob is set — the runtime skips all fault machinery
  /// otherwise.  constexpr so bench/util.h can statically assert the
  /// default stays off.
  constexpr bool any() const {
    return drop_rate > 0 || dup_rate > 0 || degrades_links() || stragglers > 0;
  }
  /// True when individual message transmissions can be lost or duplicated.
  constexpr bool message_faults() const {
    return drop_rate > 0 || dup_rate > 0;
  }
  constexpr bool degrades_links() const {
    return link_fraction > 0 &&
           (bandwidth_divisor > 1.0 || latency_factor > 1.0);
  }

  /// Throws CheckError when a knob is out of range (rates in [0,1), factors
  /// >= 1, max_attempts >= 1, ...).
  void validate() const;

  /// Parses a comma-separated spec, e.g.
  ///   "drop=0.1,dup=0.05,links=0.25x4,lat=2,straggle=1x3,window=5000"
  /// Keys: drop=R, dup=R, links=FRACxDIV, lat=F, straggle=NxF, window=US,
  /// timeout=US, attempts=N.  Unknown keys throw CheckError.
  static FaultSpec parse(const std::string& text);

  /// Canonical spec string (parse round-trips it).
  std::string to_string() const;
};

/// One frozen instance of a FaultSpec on a concrete machine.
class FaultPlan {
 public:
  /// Seeds the degraded-link and straggler choices from `seed`.
  FaultPlan(const FaultSpec& spec, std::uint64_t seed, int link_space,
            int ranks);

  /// Test hook: a plan degrading exactly `links`, no seeded choice.
  static FaultPlan for_links(const FaultSpec& spec, std::uint64_t seed,
                             std::vector<LinkId> links, int link_space,
                             int ranks);

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

  // --- links ------------------------------------------------------------

  bool degrades_links() const { return !degraded_.empty(); }
  bool link_degraded(LinkId l) const {
    return !degraded_.empty() && degraded_[static_cast<std::size_t>(l)] != 0;
  }
  /// Serialization divisor of one link (1.0 when clean or windows off).
  double bandwidth_divisor(LinkId l) const {
    return link_degraded(l) ? spec_.bandwidth_divisor : 1.0;
  }
  double latency_factor(LinkId l) const {
    return link_degraded(l) ? spec_.latency_factor : 1.0;
  }
  const std::vector<LinkId>& degraded_links() const {
    return degraded_list_;
  }

  /// Which degradation window `t` falls into (0 when not windowed).
  std::uint64_t window_index(SimTime t) const;
  /// Degradation is live at `t`: always with window_us == 0, during even
  /// windows otherwise.
  bool window_active(SimTime t) const;

  // --- messages ---------------------------------------------------------

  /// Attempt `attempt` of message (src -> dst, seq) is lost in transit.
  /// Pure function of (seed, ids); the last attempt is never dropped.
  bool transit_dropped(Rank src, Rank dst, std::uint32_t seq,
                       int attempt) const;

  /// The acknowledgement of a delivered attempt is lost (sender will send
  /// one duplicate).
  bool ack_dropped(Rank src, Rank dst, std::uint32_t seq, int attempt) const;

  /// Bounded exponential backoff: timeout * 2^attempt, capped at 32x.
  SimTime backoff_us(int attempt) const;

  int max_attempts() const { return spec_.max_attempts; }

  // --- stragglers -------------------------------------------------------

  /// Software-overhead multiplier of one rank (1.0 for healthy ranks).
  double rank_slowdown(Rank r) const {
    return slowdown_.empty() ? 1.0 : slowdown_[static_cast<std::size_t>(r)];
  }
  const std::vector<Rank>& straggler_ranks() const { return stragglers_; }

 private:
  FaultPlan(const FaultSpec& spec, std::uint64_t seed);
  void pick_stragglers(int ranks);
  void set_degraded(std::vector<LinkId> links, int link_space);

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
  std::vector<std::uint8_t> degraded_;   // per LinkId, empty = none
  std::vector<LinkId> degraded_list_;    // sorted
  std::vector<double> slowdown_;         // per rank, empty = none
  std::vector<Rank> stragglers_;         // sorted
};

using FaultPlanPtr = std::shared_ptr<const FaultPlan>;

/// Parses the CLI form "seed:spec" (e.g. "42:drop=0.1,links=0.25x4"); a
/// bare spec without the colon keeps `default_seed`.
FaultPlanPtr parse_plan(const std::string& text, int link_space, int ranks,
                        std::uint64_t default_seed = 1);

}  // namespace spb::fault
