// One schedule-analysis combination as a pure function.
//
// The analyze_schedule CLI sweeps machine x algorithm x distribution; this
// header factors the per-combination work (record, optionally mutate,
// analyze, format the report lines) out of the CLI loop so that
//  * the CLI can fan combinations out over bench::SweepRunner, and
//  * tests can assert that a parallel sweep is byte-identical to a serial
//    one (the combo returns its output as text instead of printing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/checks.h"
#include "analyze/mutate.h"
#include "common/types.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "stop/algorithm.h"

namespace spb::analyze {

/// One point of the sweep grid.
struct SweepCombo {
  std::string machine_key;  // "paragon4x4" etc., used in report lines
  machine::MachineConfig machine;
  stop::AlgorithmPtr algorithm;
  dist::Kind kind = dist::Kind::kRow;
};

struct SweepOptions {
  int s = 0;  // source count; 0 = p/4 (at least 2), clamped to p
  Bytes bytes = 2048;
  std::uint64_t seed = 1;
  /// When non-empty, each mutation is seeded and the analyzer must flag it.
  std::vector<Mutation> mutations;
  /// Fault injection applied to every recorded run (default: none).  A
  /// fresh plan is built per machine from `fault_seed` — determinism of a
  /// parallel sweep is unaffected because plans are pure.
  fault::FaultSpec faults{};
  std::uint64_t fault_seed = 1;
  bool verbose = false;
  AnalysisOptions analysis;
};

/// What one combination contributed: the exact text a serial CLI would
/// have printed, and the counters for the final summary line.
struct ComboResult {
  std::string text;
  int combos = 0;   // analyzed sub-combos (mutation SKIPs don't count)
  int flagged = 0;  // sub-combos with violations
};

/// Analyzes one combination.  Self-contained and thread-safe: reads only
/// its inputs, touches no global state, and returns its report as text.
ComboResult analyze_combo(const SweepCombo& combo, const SweepOptions& opt);

}  // namespace spb::analyze
