// Seeded schedule mutations — the analyzer's own test harness.
//
// Each mutation seeds one classic algorithm bug into a recorded schedule;
// analyze_schedule() must flag every one of them with an actionable
// report.  The `analyze_schedule --mutate` CLI mode and
// tests/analyze/mutation_test.cpp drive these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mp/schedule.h"

namespace spb::analyze {

enum class Mutation {
  /// Removes one consumed send: its receiver hangs (unmatched recv) and
  /// downstream ranks lose chunk coverage.
  kDropSend,
  /// Rewrites one send's tag to a value no receive expects: the pinned
  /// receive starves and the send is never consumed.
  kTagMismatch,
  /// Duplicates one chunk inside a send's chunk set: the payload-algebra
  /// integrity check fires.
  kDuplicateChunk,
  /// Reorders a matched exchange pair so both ranks post their receive
  /// before the send the peer is waiting for: the wait-for graph gains a
  /// cycle (the classic send/recv ordering deadlock).
  kCyclicWait,
};

std::string mutation_name(Mutation m);
Mutation mutation_from_name(const std::string& name);
const std::vector<Mutation>& all_mutations();

struct MutationResult {
  mp::Schedule schedule;
  /// What was seeded, naming the op (rank/step/tag) — test oracles match
  /// the analyzer's report against this.
  std::string description;
  /// Id of the mutated/removed op in the *original* schedule.
  int target_op = -1;
};

/// Applies one seeded mutation.  Throws CheckError when the schedule has
/// no eligible op (e.g. tag mismatch needs a tag-pinned receive).
MutationResult apply_mutation(const mp::Schedule& schedule, Mutation m,
                              std::uint64_t seed);

}  // namespace spb::analyze
