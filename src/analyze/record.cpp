#include "analyze/record.h"

#include "common/check.h"
#include "stop/frame.h"

namespace spb::analyze {

RecordedRun record_run(const stop::Algorithm& algorithm,
                       const stop::Problem& problem,
                       fault::FaultPlanPtr fault_plan) {
  problem.validate();
  const stop::Frame frame = stop::Frame::whole(problem);
  const stop::ProgramFactory factory = algorithm.prepare(frame);

  mp::Runtime rt = problem.machine.make_runtime(algorithm.mpi_flavored());
  SPB_CHECK(rt.size() == problem.p());
  rt.enable_schedule_recording();
  if (fault_plan != nullptr) rt.set_fault_plan(std::move(fault_plan));

  RecordedRun out;
  out.final_payloads.assign(static_cast<std::size_t>(problem.p()),
                            mp::Payload{});
  for (std::size_t i = 0; i < problem.sources.size(); ++i) {
    const Rank s = problem.sources[i];
    out.final_payloads[static_cast<std::size_t>(s)] =
        mp::Payload::original(s, problem.bytes_of_source(i));
  }
  for (Rank r = 0; r < problem.p(); ++r)
    rt.spawn(r, factory(rt.comm(r),
                        out.final_payloads[static_cast<std::size_t>(r)]));

  try {
    rt.run();
    out.completed = true;
  } catch (const mp::DeadlockError& e) {
    out.deadlocked = true;
    out.failure = e.what();
  } catch (const CheckError& e) {
    out.failure = e.what();
  }
  out.schedule = rt.schedule();
  return out;
}

}  // namespace spb::analyze
