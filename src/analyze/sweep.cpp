#include "analyze/sweep.h"

#include <algorithm>
#include <sstream>

#include "analyze/record.h"
#include "common/check.h"
#include "stop/problem.h"
#include "stop/verify.h"

namespace spb::analyze {

// The formatting here is shared CLI output: analyze_schedule prints these
// strings verbatim, and the determinism test diffs them between serial and
// parallel sweeps — keep any format change in sync with both.
ComboResult analyze_combo(const SweepCombo& combo, const SweepOptions& opt) {
  const int p = combo.machine.p;
  const int s = opt.s > 0 ? opt.s : std::max(2, p / 4);
  const stop::Problem pb = stop::make_problem(
      combo.machine, combo.kind, std::min(s, p), opt.bytes, opt.seed);

  ComboResult result;
  std::ostringstream out;
  const std::string alg_name = combo.algorithm->name();
  const std::string dist_name = dist::kind_name(combo.kind);

  try {
    fault::FaultPlanPtr plan;
    if (opt.faults.any()) {
      plan = std::make_shared<const fault::FaultPlan>(
          opt.faults, opt.fault_seed, combo.machine.topology->link_space(),
          combo.machine.p);
    }
    const RecordedRun run = record_run(*combo.algorithm, pb, std::move(plan));

    std::vector<std::string> extra;
    if (!run.completed)
      extra.push_back("run did not complete: " + run.failure);

    if (opt.mutations.empty()) {
      ++result.combos;
      AnalysisReport report = analyze_schedule(run.schedule, pb, opt.analysis);
      if (run.completed) {
        const stop::VerifyResult v =
            stop::verify_broadcast(pb, run.final_payloads);
        if (!v.ok) extra.push_back("final payloads wrong: " + v.error);
      }
      const bool bad = !report.ok() || !extra.empty();
      if (bad) ++result.flagged;
      const auto& q = report.quality;
      out << (bad ? "FAIL " : "ok   ") << combo.machine_key << "  "
          << alg_name << "  " << dist_name << "  depth " << q.critical_depth
          << "/" << q.round_lower_bound << "  steps " << q.max_rank_steps
          << "  conflicts " << q.max_link_conflicts << "\n";
      if (bad || opt.verbose) {
        for (const std::string& e : extra) out << "  " << e << "\n";
        out << report.to_string() << "\n";
      }
    } else {
      for (const Mutation m : opt.mutations) {
        MutationResult mut;
        try {
          mut = apply_mutation(run.schedule, m, opt.seed);
        } catch (const CheckError&) {
          // No eligible op (e.g. tag mismatch on an all-wildcard
          // algorithm): nothing to seed, nothing to miss.
          out << "SKIP    " << combo.machine_key << "  " << alg_name << "  "
              << dist_name << "  [" << mutation_name(m)
              << "] no eligible op\n";
          continue;
        }
        ++result.combos;
        const AnalysisReport report =
            analyze_schedule(mut.schedule, pb, opt.analysis);
        const bool bad = !report.ok();
        if (bad) ++result.flagged;
        out << (bad ? "FLAGGED " : "MISSED  ") << combo.machine_key << "  "
            << alg_name << "  " << dist_name << "  [" << mutation_name(m)
            << "] " << mut.description << "\n";
        if (bad || opt.verbose) out << report.to_string() << "\n";
      }
    }
  } catch (const CheckError& e) {
    ++result.combos;
    ++result.flagged;
    out << "FAIL " << combo.machine_key << "  " << alg_name << "  "
        << dist_name << "  " << e.what() << "\n";
  }

  result.text = out.str();
  return result;
}

}  // namespace spb::analyze
