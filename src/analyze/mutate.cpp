#include "analyze/mutate.h"

#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "mp/mailbox.h"
#include "mp/message.h"

namespace spb::analyze {

namespace {

using mp::ScheduleOp;

/// A tag value no algorithm uses (tags are small non-negative ints).
constexpr int kBogusTag = 1 << 20;

int pick(const std::vector<int>& candidates, std::uint64_t seed,
         const char* what) {
  SPB_REQUIRE(!candidates.empty(),
              "schedule has no eligible op for a " << what << " mutation");
  Rng rng(seed);
  return candidates[static_cast<std::size_t>(
      rng.next_below(candidates.size()))];
}

}  // namespace

std::string mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kDropSend: return "drop-send";
    case Mutation::kTagMismatch: return "tag-mismatch";
    case Mutation::kDuplicateChunk: return "dup-chunk";
  }
  return "?";
}

Mutation mutation_from_name(const std::string& name) {
  for (const Mutation m : all_mutations())
    if (mutation_name(m) == name) return m;
  SPB_REQUIRE(false, "unknown mutation '" << name
                                          << "' (drop-send, tag-mismatch, "
                                             "dup-chunk)");
  return Mutation::kDropSend;  // unreachable
}

const std::vector<Mutation>& all_mutations() {
  static const std::vector<Mutation> kAll{
      Mutation::kDropSend, Mutation::kTagMismatch, Mutation::kDuplicateChunk};
  return kAll;
}

MutationResult apply_mutation(const mp::Schedule& schedule, Mutation m,
                              std::uint64_t seed) {
  const auto& ops = schedule.ops();
  std::vector<ScheduleOp> mutated(ops.begin(), ops.end());
  MutationResult out;
  std::ostringstream desc;

  switch (m) {
    case Mutation::kDropSend: {
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops)
        if (op.is_send() && op.match >= 0) candidates.push_back(op.id);
      const int id = pick(candidates, seed, "drop-send");
      out.target_op = id;
      desc << "dropped " << ops[static_cast<std::size_t>(id)].to_string();
      mutated.erase(mutated.begin() + id);
      break;
    }
    case Mutation::kTagMismatch: {
      // Only a send consumed by a tag-pinned receive is a guaranteed bug:
      // an any-tag receive would legitimately accept the new tag.
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops) {
        if (!op.is_send() || op.match < 0) continue;
        if (ops[static_cast<std::size_t>(op.match)].tag != mp::kAnyTag)
          candidates.push_back(op.id);
      }
      const int id = pick(candidates, seed, "tag-mismatch");
      out.target_op = id;
      ScheduleOp& op = mutated[static_cast<std::size_t>(id)];
      desc << "retagged " << op.to_string() << " to tag " << kBogusTag;
      op.tag = kBogusTag;
      break;
    }
    case Mutation::kDuplicateChunk: {
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops)
        if (op.is_send() && !op.chunk_sources.empty())
          candidates.push_back(op.id);
      const int id = pick(candidates, seed, "dup-chunk");
      out.target_op = id;
      ScheduleOp& op = mutated[static_cast<std::size_t>(id)];
      desc << "duplicated chunk of source " << op.chunk_sources.front()
           << " inside " << op.to_string();
      op.chunk_sources.push_back(op.chunk_sources.front());
      break;
    }
  }

  out.schedule =
      mp::Schedule::from_ops(schedule.rank_count(), std::move(mutated));
  out.description = desc.str();
  return out;
}

}  // namespace spb::analyze
