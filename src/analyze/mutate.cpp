#include "analyze/mutate.h"

#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "mp/mailbox.h"
#include "mp/message.h"

namespace spb::analyze {

namespace {

using mp::ScheduleOp;

/// A tag value no algorithm uses (tags are small non-negative ints).
constexpr int kBogusTag = 1 << 20;

int pick(const std::vector<int>& candidates, std::uint64_t seed,
         const char* what) {
  SPB_REQUIRE(!candidates.empty(),
              "schedule has no eligible op for a " << what << " mutation");
  Rng rng(seed);
  return candidates[static_cast<std::size_t>(
      rng.next_below(candidates.size()))];
}

}  // namespace

std::string mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kDropSend: return "drop-send";
    case Mutation::kTagMismatch: return "tag-mismatch";
    case Mutation::kDuplicateChunk: return "dup-chunk";
    case Mutation::kCyclicWait: return "cyclic-wait";
  }
  return "?";
}

Mutation mutation_from_name(const std::string& name) {
  for (const Mutation m : all_mutations())
    if (mutation_name(m) == name) return m;
  SPB_REQUIRE(false, "unknown mutation '" << name
                                          << "' (drop-send, tag-mismatch, "
                                             "dup-chunk, cyclic-wait)");
  return Mutation::kDropSend;  // unreachable
}

const std::vector<Mutation>& all_mutations() {
  static const std::vector<Mutation> kAll{
      Mutation::kDropSend, Mutation::kTagMismatch, Mutation::kDuplicateChunk,
      Mutation::kCyclicWait};
  return kAll;
}

MutationResult apply_mutation(const mp::Schedule& schedule, Mutation m,
                              std::uint64_t seed) {
  const auto& ops = schedule.ops();
  std::vector<ScheduleOp> mutated(ops.begin(), ops.end());
  MutationResult out;
  std::ostringstream desc;

  switch (m) {
    case Mutation::kDropSend: {
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops)
        if (op.is_send() && op.match >= 0) candidates.push_back(op.id);
      const int id = pick(candidates, seed, "drop-send");
      out.target_op = id;
      desc << "dropped " << ops[static_cast<std::size_t>(id)].to_string();
      mutated.erase(mutated.begin() + id);
      break;
    }
    case Mutation::kTagMismatch: {
      // Only a send consumed by a tag-pinned receive is a guaranteed bug:
      // an any-tag receive would legitimately accept the new tag.
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops) {
        if (!op.is_send() || op.match < 0) continue;
        if (ops[static_cast<std::size_t>(op.match)].tag != mp::kAnyTag)
          candidates.push_back(op.id);
      }
      const int id = pick(candidates, seed, "tag-mismatch");
      out.target_op = id;
      ScheduleOp& op = mutated[static_cast<std::size_t>(id)];
      desc << "retagged " << op.to_string() << " to tag " << kBogusTag;
      op.tag = kBogusTag;
      break;
    }
    case Mutation::kDuplicateChunk: {
      std::vector<int> candidates;
      for (const ScheduleOp& op : ops)
        if (op.is_send() && !op.chunk_sources.empty())
          candidates.push_back(op.id);
      const int id = pick(candidates, seed, "dup-chunk");
      out.target_op = id;
      ScheduleOp& op = mutated[static_cast<std::size_t>(id)];
      desc << "duplicated chunk of source " << op.chunk_sources.front()
           << " inside " << op.to_string();
      op.chunk_sources.push_back(op.chunk_sources.front());
      break;
    }
    case Mutation::kCyclicWait: {
      // A send s1 (A -> B) followed on A by a receive r1 whose matched
      // send s2 originates on B.  Moving r1 in front of s1 makes A wait
      // for B's send before B's matching receive r2 can be fed — and if
      // B issues s2 only after r2 (gather-then-broadcast style), the wait
      // r1 -> s2 -> r2 -> s1 -> r1 closes into a cycle.  When B instead
      // sends s2 first, r2 is moved in front of s2 as well.
      struct Candidate {
        int s1, r1, s2, r2;
      };
      std::vector<int> ids;
      std::vector<Candidate> cands;
      for (const ScheduleOp& s1 : ops) {
        if (!s1.is_send() || s1.match < 0) continue;
        const ScheduleOp& r2 = ops[static_cast<std::size_t>(s1.match)];
        const Rank b = r2.rank;
        if (b == s1.rank) continue;
        for (const ScheduleOp& r1 : ops) {
          if (!r1.is_recv() || r1.rank != s1.rank || r1.id <= s1.id ||
              r1.match < 0)
            continue;
          const ScheduleOp& s2 = ops[static_cast<std::size_t>(r1.match)];
          if (s2.rank != b) continue;
          ids.push_back(s1.id);
          cands.push_back({s1.id, r1.id, s2.id, r2.id});
          break;
        }
      }
      const int id = pick(ids, seed, "cyclic-wait");
      Candidate c{};
      for (std::size_t i = 0; i < ids.size(); ++i)
        if (ids[i] == id) c = cands[i];
      out.target_op = c.s1;

      // Reorder by original id within the op list; from_ops() rebuilds
      // per-rank program order from list order and remaps match edges by
      // the ops' id fields.
      auto move_before = [&mutated](int move_id, int before_id) {
        std::size_t from = 0, to = 0;
        for (std::size_t i = 0; i < mutated.size(); ++i) {
          if (mutated[i].id == move_id) from = i;
          if (mutated[i].id == before_id) to = i;
        }
        ScheduleOp op = std::move(mutated[from]);
        mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(from));
        if (from < to) --to;
        mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(to),
                       std::move(op));
      };
      move_before(c.r1, c.s1);
      if (c.s2 < c.r2) move_before(c.r2, c.s2);
      desc << "reordered " << ops[static_cast<std::size_t>(c.r1)].to_string()
           << " ahead of " << ops[static_cast<std::size_t>(c.s1)].to_string()
           << (c.s2 < c.r2 ? " (both exchange sides)" : "")
           << " to close a circular wait";
      break;
    }
  }

  out.schedule =
      mp::Schedule::from_ops(schedule.rank_count(), std::move(mutated));
  out.description = desc.str();
  return out;
}

}  // namespace spb::analyze
