// Runs an algorithm once with schedule recording enabled and hands the
// symbolic schedule to the static checks — including when the run
// deadlocks or a program throws, which is precisely when the schedule is
// most interesting.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.h"
#include "mp/payload.h"
#include "mp/schedule.h"
#include "stop/algorithm.h"
#include "stop/problem.h"

namespace spb::analyze {

struct RecordedRun {
  mp::Schedule schedule;
  /// Final payload of every rank (meaningful only when completed).
  std::vector<mp::Payload> final_payloads;
  /// The simulation drained with every program finished.
  bool completed = false;
  /// The runtime reported a deadlock (failure holds its diagnostic).
  bool deadlocked = false;
  /// Text of the DeadlockError / CheckError, empty when completed.
  std::string failure;
};

/// Records one run.  Never throws for deadlocks or program CheckErrors —
/// those land in `failure` with the partial schedule preserved.  A non-null
/// fault plan (built for the problem's machine) is installed on the runtime;
/// the symbolic schedule still records only the algorithm's logical sends,
/// not the fault-induced retransmissions.
RecordedRun record_run(const stop::Algorithm& algorithm,
                       const stop::Problem& problem,
                       fault::FaultPlanPtr fault_plan = nullptr);

}  // namespace spb::analyze
