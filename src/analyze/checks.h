// Static checks over a recorded communication schedule (mp::Schedule).
//
// Everything here is a pure function of the schedule and the problem — no
// simulator is advanced.  Four families of checks, mirroring the paper's
// correctness obligations for every stop:: algorithm:
//
//  1. Matching: every send is consumed by exactly one receive and every
//     posted receive matches exactly one send, re-derived statically from
//     the (rank, peer, tag) filters under per-(src,dst,tag) FIFO order —
//     the recorded match edges are used only to resolve wildcard
//     ambiguity, never trusted for correctness.
//  2. Deadlock-freedom: the wait-for graph (program-order edges within a
//     rank, match edges from a receive to the send it consumes) must be
//     acyclic; a cycle or an unmatched receive is reported with the full
//     chain of ops (rank/step/tag) that hangs.
//  3. Chunk conservation: chunk sets are duplicate-free, a rank only
//     sends chunks it held at that point of its program (originals or
//     previously received), and every rank ends holding all s source
//     chunks.  Deliveries of already-held chunks are counted as
//     redundancy (PersAlltoAll-style algorithms produce them on purpose,
//     so they are a metric, not a violation).
//  4. Schedule quality: measured steps/critical-path depth against the
//     ceil(log2(p/s)) round lower bound, sent payload volume against the
//     s*L*(p-1)/p per-rank lower bound, and per-level link-conflict
//     counts on the problem's actual topology/mapping — regressions in
//     schedule quality surface here before any benchmark moves.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "mp/schedule.h"
#include "stop/problem.h"

namespace spb::analyze {

struct Violation {
  enum class Kind {
    kUnmatchedRecv,    // a posted receive no send can satisfy
    kUnreceivedSend,   // a sent message no receive ever consumes
    kSizeMismatch,     // matched pair disagrees on the wire size
    kDeadlockCycle,    // wait-for graph has a cycle
    kChunkIntegrity,   // duplicate source inside one message's chunk set
    kUnknownSource,    // a chunk whose source is not a problem source
    kProvenance,       // a rank sends a chunk it never held
    kCoverage,         // a rank does not end with all s chunks
    kQuality,          // a quality gate (optional slack threshold) tripped
  };

  Kind kind;
  /// Full actionable description naming rank / peer / tag / step.
  std::string message;
  /// Primary op this violation anchors to (-1 when none applies).
  int op = -1;
  Rank rank = kNoRank;
  int step = -1;
  int tag = -1;
};

std::string violation_kind_name(Violation::Kind kind);

/// Schedule-quality measurements and their symbolic lower bounds.
struct QualityMetrics {
  /// Max communication ops of any rank (program steps).
  int max_rank_steps = 0;
  /// Longest chain in the wait-for graph, counting match edges — the
  /// schedule's logical round count.
  int critical_depth = 0;
  /// ceil(log2(ceil(p/s))): the holder count at most doubles per round,
  /// and s ranks hold data at round zero.
  int round_lower_bound = 0;

  /// Payload bytes summed over all sends / the busiest sender.
  Bytes total_payload_bytes = 0;
  Bytes max_rank_payload_bytes = 0;
  /// Wire bytes (payload + envelopes + filler segments) over all sends.
  Bytes total_wire_bytes = 0;
  /// s*L*(p-1)/p — what the busiest rank must send at minimum when the
  /// load is perfectly balanced.
  Bytes per_rank_volume_lower_bound = 0;

  /// Deliveries of a chunk the receiver already held (deliberate for
  /// PersAlltoAll-style redundancy; a regression signal elsewhere).
  int redundant_chunk_deliveries = 0;
  Bytes redundant_payload_bytes = 0;

  /// Worst same-level contention: how many same-level transfers cross the
  /// hottest directed link (1 = conflict-free), and at which level.
  int max_link_conflicts = 0;
  int worst_conflict_level = -1;

  std::string to_string() const;
};

struct AnalysisOptions {
  /// Route every transfer on the problem's topology and count per-level
  /// link conflicts (skippable: it is the only O(ops * diameter) part).
  bool link_conflicts = true;
  /// Optional quality gates; 0 disables the gate.  When set, measured /
  /// lower-bound ratios above the slack raise a kQuality violation.
  double max_step_slack = 0.0;
  double max_volume_slack = 0.0;
  /// Cap on violations listed in the report text (all are counted).
  int max_report = 16;
};

struct AnalysisReport {
  std::vector<Violation> violations;
  QualityMetrics quality;

  bool ok() const { return violations.empty(); }
  /// Multi-line human-readable report: verdict, violations (capped),
  /// quality table.
  std::string to_string(int max_report = 16) const;
};

/// Runs all static checks on a recorded (or mutated) schedule.
AnalysisReport analyze_schedule(const mp::Schedule& schedule,
                                const stop::Problem& problem,
                                const AnalysisOptions& options = {});

}  // namespace spb::analyze
