#include "analyze/checks.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/math.h"
#include "mp/mailbox.h"
#include "mp/message.h"
#include "net/topology.h"

namespace spb::analyze {

namespace {

using mp::ScheduleOp;

std::string op_location(const ScheduleOp& op) { return op.to_string(); }

/// Statically re-derived matching: send id <-> recv id (-1 = unmatched).
struct Matching {
  std::vector<int> send_consumer;  // indexed by op id; -1 for recvs
  std::vector<int> recv_source;    // indexed by op id; -1 for sends
};

/// Re-derives the send/recv matching from filters alone, honouring FIFO
/// per (src, dst, tag).  Recorded match edges only break wildcard ties.
Matching derive_matching(const mp::Schedule& sched,
                         std::vector<Violation>& out) {
  const auto& ops = sched.ops();
  Matching m;
  m.send_consumer.assign(ops.size(), -1);
  m.recv_source.assign(ops.size(), -1);

  // Per destination rank: FIFO queues of pending send ids per (src, tag).
  using Key = std::pair<Rank, int>;
  std::vector<std::map<Key, std::deque<int>>> pending(
      static_cast<std::size_t>(sched.rank_count()));
  for (const ScheduleOp& op : ops) {
    if (op.is_send())
      pending[static_cast<std::size_t>(op.peer)][{op.rank, op.tag}]
          .push_back(op.id);
  }

  const auto erase_from_queue = [](std::deque<int>& q, int id) {
    q.erase(std::find(q.begin(), q.end(), id));
  };

  for (Rank d = 0; d < sched.rank_count(); ++d) {
    auto& groups = pending[static_cast<std::size_t>(d)];
    for (const int rid : sched.ops_of_rank(d)) {
      const ScheduleOp& recv = ops[static_cast<std::size_t>(rid)];
      if (!recv.is_recv()) continue;

      const auto compatible = [&](const Key& k) {
        const bool src_ok = recv.peer == mp::kAnySource || recv.peer == k.first;
        const bool tag_ok = recv.tag == mp::kAnyTag || recv.tag == k.second;
        return src_ok && tag_ok;
      };

      // Prefer the recorded match when it is still available and passes
      // the filters (it resolves wildcard nondeterminism the way the run
      // actually went).
      int chosen = -1;
      if (recv.match >= 0) {
        const ScheduleOp& hint = ops[static_cast<std::size_t>(recv.match)];
        if (hint.is_send() && hint.peer == d &&
            m.send_consumer[static_cast<std::size_t>(hint.id)] < 0 &&
            compatible({hint.rank, hint.tag})) {
          chosen = hint.id;
          erase_from_queue(groups[{hint.rank, hint.tag}], chosen);
        }
      }
      if (chosen < 0) {
        // Earliest-issued compatible send (FIFO heads only).
        Key best_key{};
        for (const auto& [key, q] : groups) {
          if (q.empty() || !compatible(key)) continue;
          if (chosen < 0 || q.front() < chosen) {
            chosen = q.front();
            best_key = key;
          }
        }
        if (chosen >= 0) erase_from_queue(groups[best_key], chosen);
      }

      if (chosen < 0) {
        Violation v;
        v.kind = Violation::Kind::kUnmatchedRecv;
        v.op = rid;
        v.rank = recv.rank;
        v.step = recv.step;
        v.tag = recv.tag;
        std::ostringstream os;
        os << "no send satisfies " << op_location(recv)
           << " — the program hangs here";
        v.message = os.str();
        out.push_back(std::move(v));
        continue;
      }

      m.recv_source[static_cast<std::size_t>(rid)] = chosen;
      m.send_consumer[static_cast<std::size_t>(chosen)] = rid;

      const ScheduleOp& send = ops[static_cast<std::size_t>(chosen)];
      // A completed receive recorded what actually arrived; its wire size
      // must agree with the send we matched it to.
      if (recv.completed && recv.wire_bytes != send.wire_bytes) {
        Violation v;
        v.kind = Violation::Kind::kSizeMismatch;
        v.op = rid;
        v.rank = recv.rank;
        v.step = recv.step;
        v.tag = send.tag;
        std::ostringstream os;
        os << op_location(recv) << " received " << recv.wire_bytes
           << "B but its matched send (" << op_location(send) << ") carries "
           << send.wire_bytes << "B";
        v.message = os.str();
        out.push_back(std::move(v));
      }
    }
  }

  for (const ScheduleOp& op : ops) {
    if (!op.is_send()) continue;
    if (m.send_consumer[static_cast<std::size_t>(op.id)] >= 0) continue;
    Violation v;
    v.kind = Violation::Kind::kUnreceivedSend;
    v.op = op.id;
    v.rank = op.rank;
    v.step = op.step;
    v.tag = op.tag;
    std::ostringstream os;
    os << "no receive on rank " << op.peer << " ever consumes "
       << op_location(op) << " — redundant or mis-tagged traffic";
    v.message = os.str();
    out.push_back(std::move(v));
  }
  return m;
}

/// Wait-for graph: op -> ops it waits on (program predecessor; for a
/// receive, also the send it matches).
std::vector<std::vector<int>> dependency_edges(const mp::Schedule& sched,
                                               const Matching& m) {
  const auto& ops = sched.ops();
  std::vector<std::vector<int>> deps(ops.size());
  for (Rank r = 0; r < sched.rank_count(); ++r) {
    const auto& ids = sched.ops_of_rank(r);
    for (std::size_t i = 1; i < ids.size(); ++i)
      deps[static_cast<std::size_t>(ids[i])].push_back(ids[i - 1]);
  }
  for (const ScheduleOp& op : ops) {
    if (!op.is_recv()) continue;
    const int s = m.recv_source[static_cast<std::size_t>(op.id)];
    if (s >= 0) deps[static_cast<std::size_t>(op.id)].push_back(s);
  }
  return deps;
}

/// DFS cycle detection; returns one cycle as op ids (empty = acyclic).
std::vector<int> find_cycle(const std::vector<std::vector<int>>& deps) {
  const int n = static_cast<int>(deps.size());
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0/1/2
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    // Iterative DFS; the stack holds (node, next edge index).
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < deps[static_cast<std::size_t>(u)].size()) {
        const int v = deps[static_cast<std::size_t>(u)][next++];
        if (color[static_cast<std::size_t>(v)] == 1) {
          // Found a back edge u -> v: walk parents from u back to v.
          std::vector<int> cycle{v};
          for (int w = u; w != v; w = parent[static_cast<std::size_t>(w)])
            cycle.push_back(w);
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (color[static_cast<std::size_t>(v)] == 0) {
          color[static_cast<std::size_t>(v)] = 1;
          parent[static_cast<std::size_t>(v)] = u;
          stack.push_back({v, 0});
        }
      } else {
        color[static_cast<std::size_t>(u)] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

/// Kahn topological order over the dependency edges (partial if cyclic).
std::vector<int> topological_order(
    const std::vector<std::vector<int>>& deps) {
  const int n = static_cast<int>(deps.size());
  std::vector<int> blockers(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> unblocks(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    blockers[static_cast<std::size_t>(u)] =
        static_cast<int>(deps[static_cast<std::size_t>(u)].size());
    for (const int v : deps[static_cast<std::size_t>(u)])
      unblocks[static_cast<std::size_t>(v)].push_back(u);
  }
  std::deque<int> ready;
  for (int u = 0; u < n; ++u)
    if (blockers[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (const int w : unblocks[static_cast<std::size_t>(u)])
      if (--blockers[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
  }
  return order;
}

}  // namespace

std::string violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kUnmatchedRecv: return "unmatched-recv";
    case Violation::Kind::kUnreceivedSend: return "unreceived-send";
    case Violation::Kind::kSizeMismatch: return "size-mismatch";
    case Violation::Kind::kDeadlockCycle: return "deadlock-cycle";
    case Violation::Kind::kChunkIntegrity: return "chunk-integrity";
    case Violation::Kind::kUnknownSource: return "unknown-source";
    case Violation::Kind::kProvenance: return "provenance";
    case Violation::Kind::kCoverage: return "coverage";
    case Violation::Kind::kQuality: return "quality-gate";
  }
  return "?";
}

std::string QualityMetrics::to_string() const {
  std::ostringstream os;
  os << "steps: max/rank " << max_rank_steps << ", critical depth "
     << critical_depth << " (lower bound " << round_lower_bound << ")\n"
     << "volume: payload " << total_payload_bytes << "B total, busiest rank "
     << max_rank_payload_bytes << "B (balanced lower bound "
     << per_rank_volume_lower_bound << "B/rank), wire " << total_wire_bytes
     << "B\n"
     << "redundancy: " << redundant_chunk_deliveries
     << " already-held chunk deliveries, " << redundant_payload_bytes
     << "B\n"
     << "link conflicts: worst " << max_link_conflicts
     << " same-level transfers on one link";
  if (worst_conflict_level >= 0)
    os << " (level " << worst_conflict_level << ")";
  return os.str();
}

std::string AnalysisReport::to_string(int max_report) const {
  std::ostringstream os;
  if (ok()) {
    os << "schedule OK\n";
  } else {
    os << violations.size() << " violation(s)\n";
    int shown = 0;
    for (const Violation& v : violations) {
      if (shown++ >= max_report) {
        os << "  ... and " << (violations.size() -
                               static_cast<std::size_t>(max_report))
           << " more\n";
        break;
      }
      os << "  [" << violation_kind_name(v.kind) << "] " << v.message
         << "\n";
    }
  }
  os << quality.to_string();
  return os.str();
}

AnalysisReport analyze_schedule(const mp::Schedule& sched,
                                const stop::Problem& pb,
                                const AnalysisOptions& options) {
  pb.validate();
  SPB_REQUIRE(sched.rank_count() == pb.p(),
              "schedule covers " << sched.rank_count()
                                 << " ranks but the problem has " << pb.p());
  AnalysisReport report;
  const auto& ops = sched.ops();

  // ---- 1. send/recv matching -----------------------------------------
  const Matching m = derive_matching(sched, report.violations);

  // ---- 2. wait-for graph ---------------------------------------------
  const std::vector<std::vector<int>> deps = dependency_edges(sched, m);
  const std::vector<int> cycle = find_cycle(deps);
  if (!cycle.empty()) {
    Violation v;
    v.kind = Violation::Kind::kDeadlockCycle;
    v.op = cycle.front();
    v.rank = ops[static_cast<std::size_t>(cycle.front())].rank;
    v.step = ops[static_cast<std::size_t>(cycle.front())].step;
    std::ostringstream os;
    os << "wait-for cycle of " << cycle.size() << " op(s):";
    for (const int id : cycle)
      os << "\n      " << op_location(ops[static_cast<std::size_t>(id)]);
    os << "\n      ... back to the first op";
    v.message = os.str();
    report.violations.push_back(std::move(v));
  }
  const std::vector<int> topo = topological_order(deps);

  // ---- 3. chunk conservation -----------------------------------------
  std::vector<char> is_source(static_cast<std::size_t>(pb.p()), 0);
  for (const Rank s : pb.sources) is_source[static_cast<std::size_t>(s)] = 1;

  for (const ScheduleOp& op : ops) {
    if (!op.is_send()) continue;
    std::vector<Rank> sorted = op.chunk_sources;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const Rank c = sorted[i];
      if (i > 0 && sorted[i - 1] == c) {
        Violation v;
        v.kind = Violation::Kind::kChunkIntegrity;
        v.op = op.id;
        v.rank = op.rank;
        v.step = op.step;
        v.tag = op.tag;
        std::ostringstream os;
        os << op_location(op) << " carries the chunk of source " << c
           << " more than once in a single message";
        v.message = os.str();
        report.violations.push_back(std::move(v));
        break;
      }
      if (c < 0 || c >= pb.p() || is_source[static_cast<std::size_t>(c)] == 0) {
        Violation v;
        v.kind = Violation::Kind::kUnknownSource;
        v.op = op.id;
        v.rank = op.rank;
        v.step = op.step;
        v.tag = op.tag;
        std::ostringstream os;
        os << op_location(op) << " carries a chunk of rank " << c
           << ", which is not a source of this problem";
        v.message = os.str();
        report.violations.push_back(std::move(v));
      }
    }
  }

  // Held-chunk propagation in dependency order: a rank may only send what
  // it started with or already received; deliveries of already-held
  // chunks are the redundancy metric.
  std::vector<std::vector<char>> held(
      static_cast<std::size_t>(pb.p()),
      std::vector<char>(static_cast<std::size_t>(pb.p()), 0));
  for (const Rank s : pb.sources)
    held[static_cast<std::size_t>(s)][static_cast<std::size_t>(s)] = 1;

  std::size_t provenance_reported = 0;
  for (const int id : topo) {
    const ScheduleOp& op = ops[static_cast<std::size_t>(id)];
    auto& mine = held[static_cast<std::size_t>(op.rank)];
    if (op.is_send()) {
      for (const Rank c : op.chunk_sources) {
        if (c < 0 || c >= pb.p()) continue;  // already an unknown-source
        if (mine[static_cast<std::size_t>(c)]) continue;
        if (provenance_reported++ < 64) {
          Violation v;
          v.kind = Violation::Kind::kProvenance;
          v.op = op.id;
          v.rank = op.rank;
          v.step = op.step;
          v.tag = op.tag;
          std::ostringstream os;
          os << op_location(op) << " ships the chunk of source " << c
             << " which rank " << op.rank
             << " has neither originated nor received by step " << op.step;
          v.message = os.str();
          report.violations.push_back(std::move(v));
        }
      }
    } else {
      const int sid = m.recv_source[static_cast<std::size_t>(id)];
      if (sid < 0) continue;  // unmatched: already reported
      const ScheduleOp& send = ops[static_cast<std::size_t>(sid)];
      for (const Rank c : send.chunk_sources) {
        if (c < 0 || c >= pb.p()) continue;
        auto& flag = mine[static_cast<std::size_t>(c)];
        if (flag) {
          ++report.quality.redundant_chunk_deliveries;
          // Attribute the redundant bytes by looking the chunk size up.
          for (std::size_t i = 0; i < pb.sources.size(); ++i)
            if (pb.sources[i] == c)
              report.quality.redundant_payload_bytes += pb.bytes_of_source(i);
        } else {
          flag = 1;
        }
      }
    }
  }

  // Coverage: every rank must end up holding every source's chunk.
  std::size_t coverage_reported = 0;
  for (Rank r = 0; r < pb.p(); ++r) {
    std::vector<Rank> missing;
    for (const Rank s : pb.sources)
      if (!held[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)])
        missing.push_back(s);
    if (missing.empty()) continue;
    if (coverage_reported++ >= 64) continue;
    Violation v;
    v.kind = Violation::Kind::kCoverage;
    v.rank = r;
    std::ostringstream os;
    os << "rank " << r << " never obtains " << missing.size() << " of "
       << pb.s() << " chunks (missing sources:";
    for (std::size_t i = 0; i < missing.size() && i < 8; ++i)
      os << " " << missing[i];
    if (missing.size() > 8) os << " ...";
    os << ")";
    v.message = os.str();
    report.violations.push_back(std::move(v));
  }

  // ---- 4. schedule quality -------------------------------------------
  QualityMetrics& q = report.quality;
  Bytes source_bytes_total = 0;
  for (std::size_t i = 0; i < pb.sources.size(); ++i)
    source_bytes_total += pb.bytes_of_source(i);
  q.round_lower_bound =
      pb.p() > pb.s()
          ? ilog2_ceil(ceil_div(pb.p(), pb.s()))
          : 0;
  q.per_rank_volume_lower_bound =
      source_bytes_total * static_cast<Bytes>(pb.p() - 1) /
      static_cast<Bytes>(pb.p());

  std::vector<Bytes> sent_payload(static_cast<std::size_t>(pb.p()), 0);
  for (Rank r = 0; r < pb.p(); ++r)
    q.max_rank_steps = std::max(
        q.max_rank_steps, static_cast<int>(sched.ops_of_rank(r).size()));
  for (const ScheduleOp& op : ops) {
    if (!op.is_send()) continue;
    q.total_payload_bytes += op.payload_bytes;
    q.total_wire_bytes += op.wire_bytes;
    sent_payload[static_cast<std::size_t>(op.rank)] += op.payload_bytes;
  }
  for (const Bytes b : sent_payload)
    q.max_rank_payload_bytes = std::max(q.max_rank_payload_bytes, b);

  // Message level = longest chain of matched messages ending at a send;
  // doubling argument: level_max >= ceil(log2(p/s)).
  std::vector<int> level(ops.size(), 0);
  std::vector<int> rank_depth(static_cast<std::size_t>(pb.p()), 0);
  for (const int id : topo) {
    const ScheduleOp& op = ops[static_cast<std::size_t>(id)];
    auto& depth = rank_depth[static_cast<std::size_t>(op.rank)];
    if (op.is_send()) {
      level[static_cast<std::size_t>(id)] = depth + 1;
    } else {
      const int sid = m.recv_source[static_cast<std::size_t>(id)];
      if (sid >= 0)
        depth = std::max(depth, level[static_cast<std::size_t>(sid)]);
    }
  }
  for (const int l : level) q.critical_depth = std::max(q.critical_depth, l);

  if (options.link_conflicts && pb.machine.topology) {
    const net::Topology& topo_net = *pb.machine.topology;
    const net::RankMapping& mapping = pb.machine.mapping;
    // conflicts[level][link] would be huge; count per level on the fly.
    std::map<int, std::unordered_map<LinkId, int>> per_level;
    for (const ScheduleOp& op : ops) {
      if (!op.is_send()) continue;
      const NodeId a = mapping.node_of(op.rank);
      const NodeId b = mapping.node_of(op.peer);
      auto& counts = per_level[level[static_cast<std::size_t>(op.id)]];
      for (const LinkId l : topo_net.route(a, b)) {
        const int c = ++counts[l];
        if (c > q.max_link_conflicts) {
          q.max_link_conflicts = c;
          q.worst_conflict_level = level[static_cast<std::size_t>(op.id)];
        }
      }
    }
  }

  if (options.max_step_slack > 0 && q.round_lower_bound > 0 &&
      q.max_rank_steps >
          options.max_step_slack * q.round_lower_bound) {
    Violation v;
    v.kind = Violation::Kind::kQuality;
    std::ostringstream os;
    os << "step gate: busiest rank runs " << q.max_rank_steps
       << " comm ops against a lower bound of " << q.round_lower_bound
       << " rounds (slack " << options.max_step_slack << ")";
    v.message = os.str();
    report.violations.push_back(std::move(v));
  }
  if (options.max_volume_slack > 0 && q.per_rank_volume_lower_bound > 0 &&
      static_cast<double>(q.max_rank_payload_bytes) >
          options.max_volume_slack *
              static_cast<double>(q.per_rank_volume_lower_bound)) {
    Violation v;
    v.kind = Violation::Kind::kQuality;
    std::ostringstream os;
    os << "volume gate: busiest rank sends " << q.max_rank_payload_bytes
       << "B against a balanced lower bound of "
       << q.per_rank_volume_lower_bound << "B (slack "
       << options.max_volume_slack << ")";
    v.message = os.str();
    report.violations.push_back(std::move(v));
  }

  return report;
}

}  // namespace spb::analyze
