#include "net/route_cache.h"

#include <algorithm>

#include "common/check.h"

namespace spb::net {

RouteCache::RouteCache(const Topology& topo)
    : topo_(&topo),
      n_(topo.node_count()),
      caching_(topo.node_count() <= kMaxCachedNodes) {
  if (caching_)
    slots_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

void RouteCache::invalidate() {
  if (cached_pairs_ == 0) return;
  std::fill(slots_.begin(), slots_.end(), Slot{});
  arena_.clear();
  cached_pairs_ = 0;
}

std::span<const LinkId> RouteCache::path(NodeId a, NodeId b) {
  SPB_REQUIRE(a >= 0 && a < n_, "route src " << a << " out of range");
  SPB_REQUIRE(b >= 0 && b < n_, "route dst " << b << " out of range");

  if (!caching_) {
    scratch_ = topo_->route(a, b);
    return {scratch_.data(), scratch_.size()};
  }

  Slot& slot = slots_[static_cast<std::size_t>(a) *
                          static_cast<std::size_t>(n_) +
                      static_cast<std::size_t>(b)];
  if (slot.length < 0) {
    const std::vector<LinkId> fresh = topo_->route(a, b);
    slot.offset = static_cast<std::uint32_t>(arena_.size());
    slot.length = static_cast<std::int32_t>(fresh.size());
    arena_.insert(arena_.end(), fresh.begin(), fresh.end());
    ++cached_pairs_;
  }
  return {arena_.data() + slot.offset,
          static_cast<std::size_t>(slot.length)};
}

}  // namespace spb::net
