#include "net/mapping.h"

#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace spb::net {

RankMapping::RankMapping(std::vector<NodeId> table) : table_(std::move(table)) {
  std::unordered_set<NodeId> seen;
  for (const NodeId n : table_) {
    SPB_REQUIRE(n >= 0, "mapping contains a negative node id");
    SPB_REQUIRE(seen.insert(n).second,
                "mapping is not injective: node " << n << " used twice");
  }
}

RankMapping RankMapping::identity(int p) {
  SPB_REQUIRE(p >= 1, "mapping needs at least one rank");
  std::vector<NodeId> t(static_cast<std::size_t>(p));
  std::iota(t.begin(), t.end(), 0);
  return RankMapping(std::move(t));
}

RankMapping RankMapping::random(int p, int nodes, std::uint64_t seed) {
  SPB_REQUIRE(p >= 1 && p <= nodes,
              "cannot place " << p << " ranks on " << nodes << " nodes");
  Rng rng(seed);
  // Choose which nodes are occupied, then shuffle the assignment so both
  // the node subset and the rank order are randomized.
  std::vector<NodeId> chosen = rng.sample_without_replacement(nodes, p);
  rng.shuffle(chosen);
  return RankMapping(std::move(chosen));
}

RankMapping RankMapping::from_table(std::vector<NodeId> table) {
  SPB_REQUIRE(!table.empty(), "mapping table must not be empty");
  return RankMapping(std::move(table));
}

NodeId RankMapping::node_of(Rank r) const {
  SPB_REQUIRE(r >= 0 && r < rank_count(), "rank " << r << " out of range");
  return table_[static_cast<std::size_t>(r)];
}

}  // namespace spb::net
