#include "net/network.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.h"

namespace spb::net {

namespace {

const Topology& require_topology(
    const std::shared_ptr<const Topology>& topo) {
  SPB_REQUIRE(topo != nullptr, "NetworkModel needs a topology");
  return *topo;
}

}  // namespace

NetworkModel::NetworkModel(std::shared_ptr<const Topology> topo,
                           NetParams params)
    : topo_(std::move(topo)),
      params_(params),
      routes_(require_topology(topo_)) {
  SPB_REQUIRE(params_.bytes_per_us > 0, "bandwidth must be positive");
  SPB_REQUIRE(params_.alpha_us >= 0 && params_.per_hop_us >= 0,
              "latencies must be non-negative");
  SPB_REQUIRE(params_.inject_channels >= 1 && params_.eject_channels >= 1,
              "need at least one NI channel per direction");
  const int link_space = topo_->link_space();
  link_scale_.resize(static_cast<std::size_t>(link_space));
  for (LinkId l = 0; l < link_space; ++l) {
    const double s = topo_->link_bandwidth_scale(l);
    SPB_REQUIRE(s > 0.0 && s <= 1.0,
                "link bandwidth scale must be in (0, 1], got " << s);
    link_scale_[static_cast<std::size_t>(l)] = s;
    if (s != 1.0) uniform_scale_ = false;
  }
  links_.resize(static_cast<std::size_t>(link_space));
  inject_.resize(static_cast<std::size_t>(topo_->node_count()) *
                 static_cast<std::size_t>(params_.inject_channels));
  eject_.resize(static_cast<std::size_t>(topo_->node_count()) *
                static_cast<std::size_t>(params_.eject_channels));
}

NetworkModel::Channel& NetworkModel::inject_channel(NodeId n, int idx) {
  return inject_[static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(params_.inject_channels) +
                 static_cast<std::size_t>(idx)];
}

NetworkModel::Channel& NetworkModel::eject_channel(NodeId n, int idx) {
  return eject_[static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(params_.eject_channels) +
                static_cast<std::size_t>(idx)];
}

int NetworkModel::pick_inject(NodeId n) const {
  int best = 0;
  for (int i = 1; i < params_.inject_channels; ++i) {
    const auto& c = inject_[static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(
                                    params_.inject_channels) +
                            static_cast<std::size_t>(i)];
    const auto& b = inject_[static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(
                                    params_.inject_channels) +
                            static_cast<std::size_t>(best)];
    if (c.free_at < b.free_at) best = i;
  }
  return best;
}

int NetworkModel::pick_eject(NodeId n) const {
  int best = 0;
  for (int i = 1; i < params_.eject_channels; ++i) {
    const auto& c = eject_[static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(
                                   params_.eject_channels) +
                           static_cast<std::size_t>(i)];
    const auto& b = eject_[static_cast<std::size_t>(n) *
                               static_cast<std::size_t>(
                                   params_.eject_channels) +
                           static_cast<std::size_t>(best)];
    if (c.free_at < b.free_at) best = i;
  }
  return best;
}

void NetworkModel::set_fault_plan(fault::FaultPlanPtr plan) {
  if (plan != nullptr && plan->degrades_links()) {
    // The plan's degraded-link table must span this topology's links.
    for (const LinkId l : plan->degraded_links())
      SPB_REQUIRE(l >= 0 && l < topo_->link_space(),
                  "fault plan degrades link " << l
                      << " outside this topology's link space");
  }
  plan_ = std::move(plan);
  routes_.invalidate();
  alt_memo_.clear();
  last_window_ = 0;
}

void NetworkModel::set_usage_probe(LinkUsageProbe* probe) {
  if (probe != nullptr) {
    SPB_REQUIRE(params_.model_contention,
                "link-usage probe needs contention modelling on");
    SPB_REQUIRE(probe->link_space() == topo_->link_space(),
                "link-usage probe sized for " << probe->link_space()
                    << " links, topology has " << topo_->link_space());
  }
  probe_ = probe;
}

void NetworkModel::roll_window(SimTime ready) {
  const std::uint64_t w = plan_->window_index(ready);
  if (w == last_window_) return;
  last_window_ = w;
  routes_.invalidate();
  alt_memo_.clear();
  ++stats_.route_invalidations;
}

double NetworkModel::worst_divisor(std::span<const LinkId> path) const {
  double worst = 1.0;
  for (const LinkId l : path)
    worst = std::max(worst, plan_->bandwidth_divisor(l));
  return worst;
}

std::span<const LinkId> NetworkModel::faulted_path(
    NodeId src, NodeId dst, std::span<const LinkId> primary) {
  bool hit = false;
  for (const LinkId l : primary)
    if (plan_->link_degraded(l)) {
      hit = true;
      break;
    }
  if (!hit) return primary;

  const std::uint64_t key =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
      static_cast<std::uint32_t>(dst);
  auto it = alt_memo_.find(key);
  if (it == alt_memo_.end()) {
    std::vector<LinkId> alt = topo_->alt_route(src, dst);
    // Keep the alternate order only when it is strictly less degraded.
    if (worst_divisor({alt.data(), alt.size()}) >= worst_divisor(primary))
      alt.clear();
    it = alt_memo_.emplace(key, std::move(alt)).first;
  }
  if (it->second.empty()) return primary;
  ++stats_.detours;
  return {it->second.data(), it->second.size()};
}

double NetworkModel::uncontended_us(int hops, Bytes bytes) const {
  return params_.alpha_us + params_.per_hop_us * hops +
         static_cast<double>(bytes) / params_.bytes_per_us;
}

double NetworkModel::link_busy_us(LinkId id) const {
  SPB_REQUIRE(id >= 0 && id < topo_->link_space(), "link id out of range");
  return links_[static_cast<std::size_t>(id)].busy_us;
}

Transfer NetworkModel::reserve(NodeId src, NodeId dst, Bytes bytes,
                               SimTime ready) {
  SPB_REQUIRE(src != dst, "reserve() is for remote transfers; local copies "
                          "are handled by the runtime");
  SPB_REQUIRE(src >= 0 && src < topo_->node_count(), "src out of range");
  SPB_REQUIRE(dst >= 0 && dst < topo_->node_count(), "dst out of range");

  // Degradation windows flush cached routes, so roll before taking a span.
  const bool faulted = plan_ != nullptr && plan_->degrades_links();
  if (faulted) roll_window(ready);

  std::span<const LinkId> path = routes_.path(src, dst);
  const bool degrade_now = faulted && plan_->window_active(ready);
  if (degrade_now) path = faulted_path(src, dst, path);

  double serialize = static_cast<double>(bytes) / params_.bytes_per_us;
  // Two-tier topologies: the slowest link on the path bounds the wormhole's
  // drain rate.  Scales are <= 1, so uncontended_us stays a lower bound.
  if (!uniform_scale_) {
    double scale = 1.0;
    for (const LinkId l : path)
      scale = std::min(scale, link_scale_[static_cast<std::size_t>(l)]);
    serialize /= scale;
  }
  double extra_latency_us = 0;

  if (degrade_now) {
    double worst = 1.0;
    for (const LinkId l : path) {
      if (!plan_->link_degraded(l)) continue;
      worst = std::max(worst, plan_->bandwidth_divisor(l));
      extra_latency_us += params_.per_hop_us * (plan_->latency_factor(l) - 1.0);
    }
    if (worst > 1.0 || extra_latency_us > 0) {
      ++stats_.degraded_transfers;
      stats_.degraded_link_us += serialize * (worst - 1.0);
      serialize *= worst;
    }
  }

  Transfer t;
  t.hops = static_cast<int>(path.size());

  if (!params_.model_contention) {
    t.start = ready;
    t.inject_done = ready + serialize;
    t.arrive = ready + params_.alpha_us + params_.per_hop_us * t.hops +
               extra_latency_us + serialize;
    ++stats_.transfers;
    stats_.total_hops += static_cast<std::uint64_t>(t.hops);
    stats_.total_bytes += bytes;
    return t;
  }

  Channel& inj = inject_channel(src, pick_inject(src));
  Channel& ej = eject_channel(dst, pick_eject(dst));

  SimTime start = std::max(ready, std::max(inj.free_at, ej.free_at));
  for (const LinkId l : path)
    start = std::max(start, links_[static_cast<std::size_t>(l)].free_at);

  const SimTime until = start + serialize;
  inj.free_at = until;
  inj.busy_us += serialize;
  ej.free_at = until;
  ej.busy_us += serialize;
  for (const LinkId l : path) {
    Channel& c = links_[static_cast<std::size_t>(l)];
    if (probe_ != nullptr) {
      const auto i = static_cast<std::size_t>(l);
      // Queue time must be read off before free_at moves: it is how long
      // this transfer waited on this particular link.
      if (c.free_at > ready) probe_->queued_us[i] += c.free_at - ready;
      probe_->busy_us[i] += serialize;
      ++probe_->reservations[i];
    }
    c.free_at = until;
    c.busy_us += serialize;
    stats_.max_link_busy_us = std::max(stats_.max_link_busy_us, c.busy_us);
    stats_.total_link_busy_us += serialize;
  }

  t.start = start;
  t.inject_done = until;
  t.arrive = start + params_.alpha_us + params_.per_hop_us * t.hops +
             extra_latency_us + serialize;

  ++stats_.transfers;
  stats_.total_hops += static_cast<std::uint64_t>(t.hops);
  stats_.total_bytes += bytes;
  stats_.total_stall_us += start - ready;
  return t;
}

}  // namespace spb::net
