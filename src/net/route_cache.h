// Arena-backed cache of dimension-ordered routes.
//
// Topology::route() builds a fresh std::vector<LinkId> per call; the
// network model used to pay that allocation for every reserved message,
// and a sweep reserves hundreds of thousands of messages over at most
// p^2 distinct (src, dst) pairs.  RouteCache computes each pair's path
// once, appends it to one contiguous arena, and afterwards answers with a
// std::span into the arena — no allocation, no copy.
//
// The slot table is n^2 entries of 8 bytes, populated lazily, so the cache
// costs nothing for pairs a run never routes.  Topologies beyond
// kMaxCachedNodes (none of the modeled machines come close) fall back to
// re-running route() into a reused scratch buffer.
//
// Not thread-safe: each NetworkModel owns its own cache, and a simulation
// is single-threaded.  The parallel sweep runner gets its isolation from
// one-runtime-per-job, not from sharing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "net/topology.h"

namespace spb::net {

class RouteCache {
 public:
  /// Largest node count that gets the n^2 slot table (512-node T3D and
  /// every Paragon mesh are far below; a 32x32 mesh still fits).
  static constexpr int kMaxCachedNodes = 1024;

  /// The topology must outlive the cache (NetworkModel owns both).
  explicit RouteCache(const Topology& topo);

  /// The dimension-ordered route from a to b.  The span stays valid until
  /// the next path() call on an uncached pair (arena growth may move it),
  /// so consume it before requesting another route.
  std::span<const LinkId> path(NodeId a, NodeId b);

  /// Drop every cached route (and invalidate outstanding spans).  The
  /// fault-aware network model calls this when degraded-link windows flip,
  /// since cached paths may embed detours that are no longer wanted.
  void invalidate();

  /// True when the n^2 slot table is active (false only beyond
  /// kMaxCachedNodes).
  bool caching() const { return caching_; }

  /// Number of distinct (src, dst) pairs resolved so far.
  std::size_t cached_pairs() const { return cached_pairs_; }

 private:
  struct Slot {
    std::uint32_t offset = 0;
    std::int32_t length = -1;  // -1 = not computed yet
  };

  const Topology* topo_;
  int n_;
  bool caching_;
  std::size_t cached_pairs_ = 0;
  std::vector<Slot> slots_;    // index src * n_ + dst
  std::vector<LinkId> arena_;  // concatenated cached paths
  std::vector<LinkId> scratch_;  // fallback buffer when !caching_
};

}  // namespace spb::net
