// Contention-aware network timing model.
//
// We approximate wormhole routing with full-path circuit reservation: a
// message of B bytes from node u to node v claims every directed link on
// its dimension-ordered route — plus u's injection channel and v's ejection
// channel — for its serialization time B/bandwidth, starting at the
// earliest instant all of them are free.  The head of the message then
// arrives alpha + hops*t_hop after the reservation starts, and the tail
// B/bandwidth later.
//
// This is deliberately the simplest model that exhibits the phenomena the
// paper measures: hot-spot congestion (2-Step's gather at P0 serializes on
// P0's ejection channel), source-side serialization (PersAlltoAll's p-1
// sends queue on the source's injection channel), and link sharing between
// concurrent transfers (the row/column phases of the Br_* algorithms).
// Known approximation: all path links are reserved for the same window, so
// a blocked message holds links it has not reached yet — which is in fact
// how a blocked wormhole worm behaves.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "net/route_cache.h"
#include "net/topology.h"

namespace spb::net {

/// Timing/bandwidth parameters of the interconnect (not of the software
/// layer on top; see mp::CommParams for send/receive overheads).
struct NetParams {
  /// Fixed network latency per message (routing setup), microseconds.
  double alpha_us = 10.0;
  /// Per-hop delay of the message head, microseconds.
  double per_hop_us = 0.05;
  /// Link bandwidth in bytes per microsecond (1 byte/us = 1 MB/s).
  double bytes_per_us = 100.0;
  /// Injection (node-to-network) DMA channels per node.
  int inject_channels = 1;
  /// Ejection (network-to-node) DMA channels per node.
  int eject_channels = 1;
  /// If false, link reservation is skipped entirely and only the latency /
  /// bandwidth terms apply (the ablation_contention bench flips this).
  bool model_contention = true;
};

/// Result of reserving a transfer.
struct Transfer {
  /// When the reservation actually started (>= the requested ready time).
  SimTime start = 0;
  /// When the source's injection channel is free again (sender may proceed).
  SimTime inject_done = 0;
  /// When the complete message is available at the destination node.
  SimTime arrive = 0;
  /// Hop count of the route used.
  int hops = 0;
};

/// Aggregated contention statistics, for diagnostics and the metric tables.
struct NetworkStats {
  std::uint64_t transfers = 0;
  std::uint64_t total_hops = 0;
  double total_link_busy_us = 0;   // sum over network links of busy time
  double max_link_busy_us = 0;     // the hottest network link
  double total_stall_us = 0;       // sum of (start - ready) over transfers
  Bytes total_bytes = 0;
  // Fault-plan effects (all zero when no plan is installed).
  std::uint64_t degraded_transfers = 0;  // transfers that crossed a bad link
  std::uint64_t detours = 0;             // transfers re-routed around one
  std::uint64_t route_invalidations = 0;  // degradation-window cache flushes
  double degraded_link_us = 0;  // extra serialization paid to degraded links
};

/// Per-link usage accumulator, filled by NetworkModel::reserve when
/// installed via set_usage_probe.  Mirrors the fault-plan hook: the model
/// holds a raw pointer, null by default, so unobserved runs pay nothing.
/// All vectors are indexed by LinkId over the topology's link space.
struct LinkUsageProbe {
  /// Serialization time each link spent occupied by transfers.
  std::vector<double> busy_us;
  /// Time transfers spent waiting because a link on their path was still
  /// held by an earlier reservation (each stalled transfer charges its full
  /// stall to every link of its path that was busy at its ready time).
  std::vector<double> queued_us;
  /// Number of reservations that crossed each link.
  std::vector<std::uint64_t> reservations;

  explicit LinkUsageProbe(int link_space)
      : busy_us(static_cast<std::size_t>(link_space), 0.0),
        queued_us(static_cast<std::size_t>(link_space), 0.0),
        reservations(static_cast<std::size_t>(link_space), 0) {}
  LinkUsageProbe() = default;

  int link_space() const { return static_cast<int>(busy_us.size()); }
};

class NetworkModel {
 public:
  NetworkModel(std::shared_ptr<const Topology> topo, NetParams params);

  /// Reserves the route from src to dst for a message of `bytes` bytes that
  /// becomes ready to inject at `ready`.  src != dst.
  Transfer reserve(NodeId src, NodeId dst, Bytes bytes, SimTime ready);

  /// Installs (or clears, with nullptr) the fault plan whose degraded links
  /// slow transfers down.  Flushes the route cache and the detour memo; the
  /// plan must have been built for this topology's link space.
  void set_fault_plan(fault::FaultPlanPtr plan);
  const fault::FaultPlanPtr& fault_plan() const { return plan_; }

  /// Installs (or clears, with nullptr) a link-usage accumulator.  The
  /// probe must outlive the model (or be cleared first) and span this
  /// topology's link space.  Contention modelling must be on — without
  /// reservations there is nothing to observe.
  void set_usage_probe(LinkUsageProbe* probe);
  const LinkUsageProbe* usage_probe() const { return probe_; }

  const Topology& topology() const { return *topo_; }
  const NetParams& params() const { return params_; }
  const NetworkStats& stats() const { return stats_; }

  /// The per-model route cache (diagnostics/tests; reserve() feeds it).
  const RouteCache& routes() const { return routes_; }

  /// Pure timing of an uncontended transfer (used in tests as the lower
  /// bound of reserve()).
  double uncontended_us(int hops, Bytes bytes) const;

  /// Busy time accumulated on one network link (tests, diagnostics).
  double link_busy_us(LinkId id) const;

 private:
  struct Channel {
    SimTime free_at = 0;
    double busy_us = 0;
  };

  Channel& inject_channel(NodeId n, int idx);
  Channel& eject_channel(NodeId n, int idx);
  /// Least-loaded (earliest-free) channel among a node's k channels.
  int pick_inject(NodeId n) const;
  int pick_eject(NodeId n) const;

  /// Flushes the route cache + detour memo when `ready` crosses into a new
  /// degradation window (windowed plans only).
  void roll_window(SimTime ready);
  /// The path a faulted transfer takes: the primary route, or the
  /// alternate-dimension-order route when that avoids more degradation.
  /// Decisions are memoized per (src, dst) until the window rolls.
  std::span<const LinkId> faulted_path(NodeId src, NodeId dst,
                                       std::span<const LinkId> primary);
  /// Worst serialization divisor over a path's degraded links (1 if clean).
  double worst_divisor(std::span<const LinkId> path) const;

  std::shared_ptr<const Topology> topo_;
  NetParams params_;
  RouteCache routes_;
  // Per-link bandwidth scale from Topology::link_bandwidth_scale, sampled
  // once at construction; uniform_scale_ short-circuits the per-path min
  // for the (common) topologies where every link runs at the full rate.
  std::vector<double> link_scale_;
  bool uniform_scale_ = true;
  std::vector<Channel> links_;    // indexed by LinkId
  std::vector<Channel> inject_;   // node * inject_channels + idx
  std::vector<Channel> eject_;    // node * eject_channels + idx
  NetworkStats stats_;
  fault::FaultPlanPtr plan_;      // null = no faults, zero overhead
  LinkUsageProbe* probe_ = nullptr;  // null = no accounting, zero overhead
  std::uint64_t last_window_ = 0;
  // Detour memo: packed (src, dst) -> alternate route; an empty vector
  // records "primary is no worse, keep it".
  std::unordered_map<std::uint64_t, std::vector<LinkId>> alt_memo_;
};

}  // namespace spb::net
