// Region partition for the sharded simulation engine (see sim/sharded.h).
//
// A region is a contiguous range of physical node ids — contiguous because
// every topology here numbers nodes so that neighbours in the innermost
// dimension get adjacent ids, which keeps most short routes (and therefore
// most simulated traffic) region-local.  The partition is a pure function
// of the topology's node count: it must not depend on the worker-thread
// count, or results would stop being byte-identical across SPB_SIM_THREADS
// settings.  Ranks inherit the region of the node they are mapped to, so a
// T3D-style random scatter simply spreads the ranks over the regions.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace spb::net {

/// Number of regions the sharded engine partitions `node_count` nodes
/// into: one region per 32 nodes, clamped to [2, 16].  Small machines
/// still get two shards (the engine's minimum interesting shape); huge
/// ones cap at 16 so per-shard queues stay deep enough to amortize the
/// window barrier.
inline int region_count(int node_count) {
  return std::clamp(node_count / 32, 2, 16);
}

/// Region of node `n` under the balanced contiguous partition of
/// `node_count` nodes into `regions` regions: region r covers ids
/// [r*node_count/regions, (r+1)*node_count/regions).
inline int region_of_node(NodeId n, int node_count, int regions) {
  return static_cast<int>((static_cast<long long>(n) * regions) /
                          node_count);
}

}  // namespace spb::net
