// Region partition for the sharded simulation engine (see sim/sharded.h).
//
// A region is a contiguous range of physical node ids — contiguous because
// every topology here numbers nodes so that neighbours in the innermost
// dimension get adjacent ids, which keeps most short routes (and therefore
// most simulated traffic) region-local.  The partition is a pure function
// of the topology's node count: it must not depend on the worker-thread
// count, or results would stop being byte-identical across SPB_SIM_THREADS
// settings.  Ranks inherit the region of the node they are mapped to, so a
// T3D-style random scatter simply spreads the ranks over the regions.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace spb::net {

class Topology;

/// Number of regions the sharded engine partitions `node_count` nodes
/// into: one region per 32 nodes, clamped to [2, 16].  Small machines
/// still get two shards (the engine's minimum interesting shape); huge
/// ones cap at 16 so per-shard queues stay deep enough to amortize the
/// window barrier.
inline int region_count(int node_count) {
  return std::clamp(node_count / 32, 2, 16);
}

/// Region of node `n` under the balanced contiguous partition of
/// `node_count` nodes into `regions` regions: region r covers ids
/// [r*node_count/regions, (r+1)*node_count/regions).
inline int region_of_node(NodeId n, int node_count, int regions) {
  return static_cast<int>((static_cast<long long>(n) * regions) /
                          node_count);
}

/// Pairwise minimum hop distances between the regions of a topology under
/// the balanced contiguous partition above.  `min_hops(r, s)` is a lower
/// bound on `Topology::hops(a, b)` over every node pair with a in region r
/// and b in region s — the quantity the sharded engine's per-region
/// sub-windows are built from (a message from r to s is at least
/// `alpha + min_hops(r, s) * per_hop` away from its initiation, so shard s
/// may drain that far past shard r's clock without missing a delivery).
///
/// Exact for topologies up to kExactNodeCap nodes (an O(n^2) scan over
/// node pairs, memoized process-wide per topology identity); above the
/// cap it degrades to the always-sound floor of 1 hop between distinct
/// regions.  Both variants depend only on the topology and the region
/// count, never on the worker-thread count, so schedules built from them
/// keep the byte-identical-results contract.
class RegionMap {
 public:
  /// Largest node count for which the exact pairwise scan runs.
  static constexpr int kExactNodeCap = 2048;

  int regions() const { return regions_; }

  /// Minimum hop distance from region r to region s; 0 when r == s.
  int min_hops(int r, int s) const {
    return hops_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(regions_) +
                 static_cast<std::size_t>(s)];
  }

  /// The map for `topo` split into `regions` regions, built on first use
  /// and memoized for the process (keyed by the topology's name, node
  /// count, and link space — the identity every Topology subclass encodes
  /// in those three).  The returned reference stays valid for the process
  /// lifetime.
  static const RegionMap& of(const Topology& topo, int regions);

  /// Uncached exact/fallback construction; exposed for tests.
  static RegionMap build(const Topology& topo, int regions);

 private:
  int regions_ = 0;
  std::vector<int> hops_;
};

}  // namespace spb::net
