#include "net/regions.h"

#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"
#include "net/topology.h"

namespace spb::net {

RegionMap RegionMap::build(const Topology& topo, int regions) {
  SPB_REQUIRE(regions >= 1, "RegionMap needs at least one region");
  const int n = topo.node_count();
  RegionMap map;
  map.regions_ = regions;
  map.hops_.assign(
      static_cast<std::size_t>(regions) * static_cast<std::size_t>(regions),
      0);
  if (regions == 1) return map;

  auto at = [&](int r, int s) -> int& {
    return map.hops_[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(regions) +
                     static_cast<std::size_t>(s)];
  };

  if (n > kExactNodeCap) {
    // Too many pairs to scan: one hop between distinct regions is always a
    // sound lower bound (routes between different nodes have >= 1 link).
    for (int r = 0; r < regions; ++r)
      for (int s = 0; s < regions; ++s)
        if (r != s) at(r, s) = 1;
    return map;
  }

  for (int r = 0; r < regions; ++r)
    for (int s = 0; s < regions; ++s)
      if (r != s) at(r, s) = std::numeric_limits<int>::max();
  for (NodeId a = 0; a < n; ++a) {
    const int r = region_of_node(a, n, regions);
    for (NodeId b = 0; b < n; ++b) {
      const int s = region_of_node(b, n, regions);
      if (r == s) continue;
      int& cur = at(r, s);
      // 1 is the floor for distinct nodes; no point computing more hops.
      if (cur <= 1) continue;
      cur = std::min(cur, topo.hops(a, b));
    }
  }
  for (int r = 0; r < regions; ++r)
    for (int s = 0; s < regions; ++s)
      if (r != s)
        SPB_CHECK_MSG(at(r, s) >= 1 &&
                          at(r, s) != std::numeric_limits<int>::max(),
                      "region pair (" << r << ", " << s
                                      << ") has no node pair");
  return map;
}

const RegionMap& RegionMap::of(const Topology& topo, int regions) {
  struct Entry {
    std::string name;
    int node_count;
    int link_space;
    int regions;
    std::unique_ptr<RegionMap> map;
  };
  // Process-wide memo: the exact scan is O(n^2) hop queries (a few
  // milliseconds for a 512-node torus, tens for the 2048-node cap), and
  // sweeps construct the same few machines thousands of times.  Guarded by
  // a mutex and append-only, so returned references stay valid; the cache
  // is keyed by topology identity alone and therefore cannot make results
  // depend on thread count or call order.
  // NOLINTNEXTLINE(spb-mutable-global): append-only memo keyed by topology identity; guarded by mu below
  static std::vector<Entry> cache;
  // NOLINTNEXTLINE(spb-mutable-global): guards the memo above
  static std::mutex mu;

  const std::string name = topo.name();
  const std::lock_guard<std::mutex> lk(mu);
  for (const Entry& e : cache)
    if (e.regions == regions && e.node_count == topo.node_count() &&
        e.link_space == topo.link_space() && e.name == name)
      return *e.map;
  cache.push_back(Entry{name, topo.node_count(), topo.link_space(), regions,
                        std::make_unique<RegionMap>(build(topo, regions))});
  return *cache.back().map;
}

}  // namespace spb::net
