// Interconnect topologies: linear array, 2-D mesh (Intel Paragon style) and
// 3-D torus (Cray T3D style).
//
// A topology owns the geometry only — node coordinates, directed links, and
// the deterministic dimension-ordered route between two nodes.  Timing and
// contention live in net::NetworkModel.
//
// Link identifiers: every node has a fixed number of outgoing directed
// channel slots (2 for the array, 4 for the mesh, 6 for the torus), and
// LinkId = node * slots + direction.  Border slots of non-wrapping
// topologies are simply never used by any route.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace spb::net {

/// Coordinates of a node; unused dimensions are zero.
struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const Coord&) const = default;
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of nodes.
  virtual int node_count() const = 0;

  /// Size of the LinkId space (node_count * outgoing slots per node).
  virtual int link_space() const = 0;

  /// Deterministic dimension-ordered route from a to b as a sequence of
  /// directed links.  Empty iff a == b.
  virtual std::vector<LinkId> route(NodeId a, NodeId b) const = 0;

  /// A deterministic alternate route using the opposite dimension order,
  /// where the topology has one (mesh: YX instead of XY, torus: ZYX instead
  /// of XYZ).  The fault-aware network model tries it when the primary
  /// route crosses a degraded link.  Defaults to the primary route.
  virtual std::vector<LinkId> alt_route(NodeId a, NodeId b) const {
    return route(a, b);
  }

  /// Hop distance (length of route(a, b) without materializing it).
  virtual int hops(NodeId a, NodeId b) const = 0;

  /// Node coordinates, for diagnostics and tests.
  virtual Coord coord(NodeId n) const = 0;

  /// Inverse of coord().
  virtual NodeId node_at(const Coord& c) const = 0;

  /// Human-readable name, e.g. "mesh2d 10x10".
  virtual std::string name() const = 0;

  /// Human-readable link description for congestion diagnostics.
  std::string describe_link(LinkId id) const;

  /// Outgoing channel slots per node (2, 4 or 6).
  virtual int slots_per_node() const = 0;
};

/// 1-D array of n nodes with bidirectional neighbour links (no wraparound).
class LinearArray final : public Topology {
 public:
  explicit LinearArray(int n);

  int node_count() const override { return n_; }
  int link_space() const override { return n_ * 2; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override { return {n, 0, 0}; }
  NodeId node_at(const Coord& c) const override { return c.x; }
  std::string name() const override;
  int slots_per_node() const override { return 2; }

 private:
  int n_;
};

/// 2-D mesh of rows x cols nodes, no wraparound, dimension-ordered
/// routing: XY by default (first along the row to the destination column,
/// then along the column), YX when `y_first` is set — the
/// ablation_routing bench compares the two.  Node (r, c) has id
/// r * cols + c (row-major), matching the paper's processor indexing.
class Mesh2D final : public Topology {
 public:
  Mesh2D(int rows, int cols, bool y_first = false);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool y_first() const { return y_first_; }

  int node_count() const override { return rows_ * cols_; }
  int link_space() const override { return node_count() * 4; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  std::vector<LinkId> alt_route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  int slots_per_node() const override { return 4; }

 private:
  std::vector<LinkId> route_impl(NodeId a, NodeId b, bool y_first) const;

  int rows_;
  int cols_;
  bool y_first_;
};

/// Hypercube of 2^dims nodes; node ids are bit strings, neighbours differ
/// in one bit, e-cube routing fixes differing bits from the lowest to the
/// highest.  Not one of the paper's machines, but the natural home of the
/// Br_Lin pattern — pairing i with i + p/2 is exactly a top-dimension
/// exchange, so every halving iteration uses a dedicated link per node
/// (see bench/ext_hypercube).
class Hypercube final : public Topology {
 public:
  explicit Hypercube(int dims);

  int dims() const { return dims_; }

  int node_count() const override { return 1 << dims_; }
  int link_space() const override { return node_count() * dims_; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  int slots_per_node() const override { return dims_; }

 private:
  int dims_;
};

/// 3-D torus of dx x dy x dz nodes with wraparound in every dimension and
/// dimension-ordered routing that takes the shorter wrap direction (positive
/// direction on ties).  Models the T3D interconnect.
class Torus3D final : public Topology {
 public:
  Torus3D(int dx, int dy, int dz);

  int dx() const { return dx_; }
  int dy() const { return dy_; }
  int dz() const { return dz_; }

  int node_count() const override { return dx_ * dy_ * dz_; }
  int link_space() const override { return node_count() * 6; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  std::vector<LinkId> alt_route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  int slots_per_node() const override { return 6; }

 private:
  /// Signed step count along one dimension of size `size`: the shorter wrap
  /// direction, positive on ties.
  static int torus_delta(int from, int to, int size);

  int dx_;
  int dy_;
  int dz_;
};

}  // namespace spb::net
