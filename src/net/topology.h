// Interconnect topologies: linear array, 2-D mesh (Intel Paragon style),
// hypercube, the k-ary n-cube torus family (Cray T3D style in 3-D), and a
// two-level cluster (node-local crossbar + slower inter-node mesh).
//
// A topology owns the geometry only — node coordinates, directed links, and
// the deterministic dimension-ordered route between two nodes.  Timing and
// contention live in net::NetworkModel.
//
// Link identifiers: every node has a fixed number of outgoing directed
// channel slots (2 for the array, 4 for the mesh, 2 per dimension for a
// torus), and LinkId = node * slots + direction.  Border slots of
// non-wrapping topologies are simply never used by any route.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace spb::net {

/// Coordinates of a node in up to kMaxDims dimensions; unused dimensions
/// are zero.  The historical x/y/z accessors name the first three
/// dimensions, so 2-D/3-D topologies keep a typed view while the k-ary
/// n-cube family indexes dimensions directly.
struct Coord {
  static constexpr int kMaxDims = 8;

  constexpr Coord() = default;
  constexpr Coord(int x, int y = 0, int z = 0) : d{x, y, z} {}

  int& operator[](int dim) { return d[static_cast<std::size_t>(dim)]; }
  int operator[](int dim) const { return d[static_cast<std::size_t>(dim)]; }

  int& x() { return d[0]; }
  int& y() { return d[1]; }
  int& z() { return d[2]; }
  int x() const { return d[0]; }
  int y() const { return d[1]; }
  int z() const { return d[2]; }

  std::array<int, kMaxDims> d{};

  bool operator==(const Coord&) const = default;
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of nodes.
  virtual int node_count() const = 0;

  /// Size of the LinkId space (node_count * outgoing slots per node).
  virtual int link_space() const = 0;

  /// Deterministic dimension-ordered route from a to b as a sequence of
  /// directed links.  Empty iff a == b.
  virtual std::vector<LinkId> route(NodeId a, NodeId b) const = 0;

  /// A deterministic alternate route using the opposite dimension order,
  /// where the topology has one (mesh: YX instead of XY, torus: the
  /// dimensions highest-first instead of lowest-first).  The fault-aware
  /// network model tries it when the primary route crosses a degraded
  /// link.  Defaults to the primary route.
  virtual std::vector<LinkId> alt_route(NodeId a, NodeId b) const {
    return route(a, b);
  }

  /// Hop distance (length of route(a, b) without materializing it).
  virtual int hops(NodeId a, NodeId b) const = 0;

  /// Node coordinates, for diagnostics and tests.
  virtual Coord coord(NodeId n) const = 0;

  /// Inverse of coord().
  virtual NodeId node_at(const Coord& c) const = 0;

  /// Human-readable name, e.g. "mesh2d 10x10".
  virtual std::string name() const = 0;

  /// Human-readable link description for congestion diagnostics.
  virtual std::string describe_link(LinkId id) const;

  /// Relative bandwidth of one directed link as a fraction of
  /// NetParams::bytes_per_us, always in (0, 1].  Hierarchical machines
  /// override this: NetParams carries the fastest tier (the intra-node
  /// crossbar) and slower tiers scale down, so no transfer ever beats the
  /// uncontended bound the flat model promises.
  virtual double link_bandwidth_scale(LinkId) const { return 1.0; }

  /// Outgoing channel slots per node (2, 4 or 6).
  virtual int slots_per_node() const = 0;
};

/// 1-D array of n nodes with bidirectional neighbour links (no wraparound).
class LinearArray final : public Topology {
 public:
  explicit LinearArray(int n);

  int node_count() const override { return n_; }
  int link_space() const override { return n_ * 2; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override { return {n, 0, 0}; }
  NodeId node_at(const Coord& c) const override { return c.x(); }
  std::string name() const override;
  int slots_per_node() const override { return 2; }

 private:
  int n_;
};

/// 2-D mesh of rows x cols nodes, no wraparound, dimension-ordered
/// routing: XY by default (first along the row to the destination column,
/// then along the column), YX when `y_first` is set — the
/// ablation_routing bench compares the two.  Node (r, c) has id
/// r * cols + c (row-major), matching the paper's processor indexing.
class Mesh2D final : public Topology {
 public:
  Mesh2D(int rows, int cols, bool y_first = false);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool y_first() const { return y_first_; }

  int node_count() const override { return rows_ * cols_; }
  int link_space() const override { return node_count() * 4; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  std::vector<LinkId> alt_route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  int slots_per_node() const override { return 4; }

 private:
  std::vector<LinkId> route_impl(NodeId a, NodeId b, bool y_first) const;

  int rows_;
  int cols_;
  bool y_first_;
};

/// Hypercube of 2^dims nodes; node ids are bit strings, neighbours differ
/// in one bit, e-cube routing fixes differing bits from the lowest to the
/// highest.  Not one of the paper's machines, but the natural home of the
/// Br_Lin pattern — pairing i with i + p/2 is exactly a top-dimension
/// exchange, so every halving iteration uses a dedicated link per node
/// (see bench/ext_hypercube).
class Hypercube final : public Topology {
 public:
  explicit Hypercube(int dims);

  int dims() const { return dims_; }

  int node_count() const override { return 1 << dims_; }
  int link_space() const override { return node_count() * dims_; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  int slots_per_node() const override { return dims_; }

 private:
  int dims_;
};

/// k-ary n-cube: a torus of arbitrary per-dimension sizes with wraparound
/// in every dimension.  Node ids are mixed-radix with dimension 0 fastest
/// (id = (..(c[n-1] * d[n-2] + c[n-2]) * .. ) * d[0] + c[0]); routing is
/// dimension-ordered lowest-to-highest taking the shorter wrap direction
/// (positive on ties), and alt_route walks the dimensions in the opposite
/// order.  Every node owns two channel slots per dimension:
/// slot 2k = +dim k, slot 2k + 1 = -dim k.
class TorusND : public Topology {
 public:
  explicit TorusND(std::vector<int> dims);

  int ndims() const { return static_cast<int>(dims_.size()); }
  int dim(int k) const { return dims_[static_cast<std::size_t>(k)]; }
  const std::vector<int>& dims() const { return dims_; }

  int node_count() const override { return nodes_; }
  int link_space() const override { return nodes_ * slots_per_node(); }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  std::vector<LinkId> alt_route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  std::string describe_link(LinkId id) const override;
  int slots_per_node() const override { return 2 * ndims(); }

  /// Signed step count along one dimension of size `size`: the shorter wrap
  /// direction, positive on ties.
  static int torus_delta(int from, int to, int size);

 private:
  std::vector<LinkId> route_impl(NodeId a, NodeId b, bool reverse) const;

  std::vector<int> dims_;
  int nodes_;
};

/// 3-D torus of dx x dy x dz nodes — the T3D interconnect.  A TorusND with
/// the historical name and typed accessors; slot encoding, ids and routes
/// are byte-identical to the general family's 3-D case.
class Torus3D final : public TorusND {
 public:
  Torus3D(int dx, int dy, int dz) : TorusND({dx, dy, dz}) {}

  int dx() const { return dim(0); }
  int dy() const { return dim(1); }
  int dz() const { return dim(2); }

  std::string name() const override;
};

/// Two-level cluster: `nodes` compute nodes, each holding `cores`
/// processors on a node-local crossbar, with the nodes joined by a slower
/// 2-D mesh — the shared-vs-distributed-memory split.  Topology "nodes"
/// are cores, id = node * cores + core; coordinates are
/// (node column, node row, core).  Each core owns 6 channel slots:
///
///   slot 0 = crossbar port into the node switch (first hop of every route
///            leaving the core),
///   slot 1 = crossbar port out of the node switch (last hop of every
///            route entering the core),
///   slots 2..5 = the node's mesh channels +x/-x/+y/-y, owned by core 0 of
///            the node, so all cores of a node contend on the same four
///            inter-node links.
///
/// Inter-node routes are dimension-ordered XY over the node mesh (YX for
/// alt_route); intra-node routes are [src crossbar-in, dst crossbar-out].
/// Mesh links report bandwidth scale `mesh_bw_scale` < 1; crossbar ports
/// run at the full NetParams rate.
class Cluster final : public Topology {
 public:
  Cluster(int nodes, int cores, double mesh_bw_scale = 0.25);

  int nodes() const { return nrows_ * ncols_; }
  int cores() const { return cores_; }
  int node_rows() const { return nrows_; }
  int node_cols() const { return ncols_; }
  double mesh_bw_scale() const { return mesh_scale_; }

  int node_count() const override { return nodes() * cores_; }
  int link_space() const override { return node_count() * 6; }
  std::vector<LinkId> route(NodeId a, NodeId b) const override;
  std::vector<LinkId> alt_route(NodeId a, NodeId b) const override;
  int hops(NodeId a, NodeId b) const override;
  Coord coord(NodeId n) const override;
  NodeId node_at(const Coord& c) const override;
  std::string name() const override;
  std::string describe_link(LinkId id) const override;
  double link_bandwidth_scale(LinkId id) const override;
  int slots_per_node() const override { return 6; }

 private:
  std::vector<LinkId> route_impl(NodeId a, NodeId b, bool y_first) const;

  int nrows_;
  int ncols_;
  int cores_;
  double mesh_scale_;
};

}  // namespace spb::net
