#include "net/topology.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace spb::net {

std::string Topology::describe_link(LinkId id) const {
  SPB_REQUIRE(id >= 0 && id < link_space(), "link id " << id
                                                       << " out of range");
  const int slots = slots_per_node();
  const NodeId node = id / slots;
  const int dir = id % slots;
  static constexpr const char* kDir[6] = {"+x", "-x", "+y", "-y", "+z", "-z"};
  const Coord c = coord(node);
  std::ostringstream os;
  os << "link(" << c.x << "," << c.y << "," << c.z << ")";
  // Mesh/torus slots have cardinal names; higher-degree topologies
  // (hypercubes) label the dimension index instead.
  if (slots <= 6) {
    os << kDir[dir];
  } else {
    os << "dim" << dir;
  }
  return os.str();
}

// ---------------------------------------------------------------- Linear

LinearArray::LinearArray(int n) : n_(n) {
  SPB_REQUIRE(n >= 1, "LinearArray needs at least one node");
}

std::vector<LinkId> LinearArray::route(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "node out of range");
  std::vector<LinkId> path;
  const int step = a < b ? 1 : -1;
  const int dir = a < b ? 0 : 1;  // slot 0 = +x, slot 1 = -x
  for (NodeId at = a; at != b; at += step) path.push_back(at * 2 + dir);
  return path;
}

int LinearArray::hops(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "node out of range");
  return std::abs(a - b);
}

std::string LinearArray::name() const {
  return "array " + std::to_string(n_);
}

// ---------------------------------------------------------------- Mesh2D

Mesh2D::Mesh2D(int rows, int cols, bool y_first)
    : rows_(rows), cols_(cols), y_first_(y_first) {
  SPB_REQUIRE(rows >= 1 && cols >= 1, "Mesh2D needs positive dimensions");
}

Coord Mesh2D::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  return {n % cols_, n / cols_, 0};  // x = column, y = row
}

NodeId Mesh2D::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_,
              "coordinate out of range");
  return c.y * cols_ + c.x;
}

std::vector<LinkId> Mesh2D::route_impl(NodeId a, NodeId b,
                                       bool y_first) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  std::vector<LinkId> path;
  // Walk the X dimension at row `row`, appending to path.
  const auto walk_x = [&](int row) {
    int x = ca.x;
    const int xdir = cb.x > ca.x ? 0 : 1;  // slot 0 = +x, 1 = -x
    const int xstep = cb.x > ca.x ? 1 : -1;
    while (x != cb.x) {
      path.push_back(node_at({x, row, 0}) * 4 + xdir);
      x += xstep;
    }
  };
  // Walk the Y dimension at column `col`.
  const auto walk_y = [&](int col) {
    int y = ca.y;
    const int ydir = cb.y > ca.y ? 2 : 3;  // slot 2 = +y, 3 = -y
    const int ystep = cb.y > ca.y ? 1 : -1;
    while (y != cb.y) {
      path.push_back(node_at({col, y, 0}) * 4 + ydir);
      y += ystep;
    }
  };
  if (y_first) {
    walk_y(ca.x);
    walk_x(cb.y);
  } else {
    walk_x(ca.y);
    walk_y(cb.x);
  }
  return path;
}

std::vector<LinkId> Mesh2D::route(NodeId a, NodeId b) const {
  return route_impl(a, b, y_first_);
}

std::vector<LinkId> Mesh2D::alt_route(NodeId a, NodeId b) const {
  return route_impl(a, b, !y_first_);
}

int Mesh2D::hops(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

std::string Mesh2D::name() const {
  return "mesh2d " + std::to_string(rows_) + "x" + std::to_string(cols_);
}

// -------------------------------------------------------------- Hypercube

Hypercube::Hypercube(int dims) : dims_(dims) {
  SPB_REQUIRE(dims >= 1 && dims <= 16, "Hypercube needs 1..16 dimensions");
}

Coord Hypercube::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  return {n, 0, 0};
}

NodeId Hypercube::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x >= 0 && c.x < node_count() && c.y == 0 && c.z == 0,
              "coordinate out of range");
  return c.x;
}

std::vector<LinkId> Hypercube::route(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  // E-cube: fix differing bits from dimension 0 upward; link slot d of a
  // node is its dimension-d channel.
  std::vector<LinkId> path;
  NodeId at = a;
  for (int d = 0; d < dims_; ++d) {
    const NodeId bit = NodeId{1} << d;
    if ((at & bit) == (b & bit)) continue;
    path.push_back(at * dims_ + d);
    at ^= bit;
  }
  SPB_CHECK(at == b);
  return path;
}

int Hypercube::hops(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::string Hypercube::name() const {
  return "hypercube " + std::to_string(dims_) + "d";
}

// ---------------------------------------------------------------- Torus3D

Torus3D::Torus3D(int dx, int dy, int dz) : dx_(dx), dy_(dy), dz_(dz) {
  SPB_REQUIRE(dx >= 1 && dy >= 1 && dz >= 1,
              "Torus3D needs positive dimensions");
}

Coord Torus3D::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  return {n % dx_, (n / dx_) % dy_, n / (dx_ * dy_)};
}

NodeId Torus3D::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x >= 0 && c.x < dx_ && c.y >= 0 && c.y < dy_ && c.z >= 0 &&
                  c.z < dz_,
              "coordinate out of range");
  return (c.z * dy_ + c.y) * dx_ + c.x;
}

int Torus3D::torus_delta(int from, int to, int size) {
  int forward = to - from;
  if (forward < 0) forward += size;
  const int backward = forward - size;  // <= 0
  // Shorter direction; positive (forward) on ties for determinism.
  return forward <= -backward ? forward : backward;
}

std::vector<LinkId> Torus3D::route(NodeId a, NodeId b) const {
  Coord at = coord(a);
  const Coord cb = coord(b);
  std::vector<LinkId> path;

  // Walk one dimension with wraparound; dim_size in {dx_, dy_, dz_},
  // pos_slot/neg_slot are the channel slots for the two directions.
  const auto walk = [&](int Coord::* axis, int dim_size, int pos_slot,
                        int neg_slot) {
    const int delta = torus_delta(at.*axis, cb.*axis, dim_size);
    const int step = delta >= 0 ? 1 : -1;
    const int slot = delta >= 0 ? pos_slot : neg_slot;
    for (int i = 0; i != delta; i += step) {
      path.push_back(node_at(at) * 6 + slot);
      at.*axis = (at.*axis + step + dim_size) % dim_size;
    }
  };
  walk(&Coord::x, dx_, 0, 1);
  walk(&Coord::y, dy_, 2, 3);
  walk(&Coord::z, dz_, 4, 5);
  SPB_CHECK(at == cb);
  return path;
}

std::vector<LinkId> Torus3D::alt_route(NodeId a, NodeId b) const {
  Coord at = coord(a);
  const Coord cb = coord(b);
  std::vector<LinkId> path;

  // Same shorter-wrap walk as route(), in the reverse dimension order
  // (z, y, x) so a degraded link on the primary path can be bypassed.
  const auto walk = [&](int Coord::* axis, int dim_size, int pos_slot,
                        int neg_slot) {
    const int delta = torus_delta(at.*axis, cb.*axis, dim_size);
    const int step = delta >= 0 ? 1 : -1;
    const int slot = delta >= 0 ? pos_slot : neg_slot;
    for (int i = 0; i != delta; i += step) {
      path.push_back(node_at(at) * 6 + slot);
      at.*axis = (at.*axis + step + dim_size) % dim_size;
    }
  };
  walk(&Coord::z, dz_, 4, 5);
  walk(&Coord::y, dy_, 2, 3);
  walk(&Coord::x, dx_, 0, 1);
  SPB_CHECK(at == cb);
  return path;
}

int Torus3D::hops(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  return std::abs(torus_delta(ca.x, cb.x, dx_)) +
         std::abs(torus_delta(ca.y, cb.y, dy_)) +
         std::abs(torus_delta(ca.z, cb.z, dz_));
}

std::string Torus3D::name() const {
  return "torus3d " + std::to_string(dx_) + "x" + std::to_string(dy_) + "x" +
         std::to_string(dz_);
}

}  // namespace spb::net
