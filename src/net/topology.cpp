#include "net/topology.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace spb::net {

std::string Topology::describe_link(LinkId id) const {
  SPB_REQUIRE(id >= 0 && id < link_space(), "link id " << id
                                                       << " out of range");
  const int slots = slots_per_node();
  const NodeId node = id / slots;
  const int dir = id % slots;
  static constexpr const char* kDir[6] = {"+x", "-x", "+y", "-y", "+z", "-z"};
  const Coord c = coord(node);
  std::ostringstream os;
  os << "link(" << c.x() << "," << c.y() << "," << c.z() << ")";
  // Mesh/torus slots have cardinal names; higher-degree topologies
  // (hypercubes) label the dimension index instead.
  if (slots <= 6) {
    os << kDir[dir];
  } else {
    os << "dim" << dir;
  }
  return os.str();
}

// ---------------------------------------------------------------- Linear

LinearArray::LinearArray(int n) : n_(n) {
  SPB_REQUIRE(n >= 1, "LinearArray needs at least one node");
}

std::vector<LinkId> LinearArray::route(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "node out of range");
  std::vector<LinkId> path;
  const int step = a < b ? 1 : -1;
  const int dir = a < b ? 0 : 1;  // slot 0 = +x, slot 1 = -x
  for (NodeId at = a; at != b; at += step) path.push_back(at * 2 + dir);
  return path;
}

int LinearArray::hops(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < n_ && b >= 0 && b < n_, "node out of range");
  return std::abs(a - b);
}

std::string LinearArray::name() const {
  return "array " + std::to_string(n_);
}

// ---------------------------------------------------------------- Mesh2D

Mesh2D::Mesh2D(int rows, int cols, bool y_first)
    : rows_(rows), cols_(cols), y_first_(y_first) {
  SPB_REQUIRE(rows >= 1 && cols >= 1, "Mesh2D needs positive dimensions");
}

Coord Mesh2D::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  return {n % cols_, n / cols_, 0};  // x = column, y = row
}

NodeId Mesh2D::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x() >= 0 && c.x() < cols_ && c.y() >= 0 && c.y() < rows_,
              "coordinate out of range");
  return c.y() * cols_ + c.x();
}

std::vector<LinkId> Mesh2D::route_impl(NodeId a, NodeId b,
                                       bool y_first) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  std::vector<LinkId> path;
  // Walk the X dimension at row `row`, appending to path.
  const auto walk_x = [&](int row) {
    int x = ca.x();
    const int xdir = cb.x() > ca.x() ? 0 : 1;  // slot 0 = +x, 1 = -x
    const int xstep = cb.x() > ca.x() ? 1 : -1;
    while (x != cb.x()) {
      path.push_back(node_at({x, row, 0}) * 4 + xdir);
      x += xstep;
    }
  };
  // Walk the Y dimension at column `col`.
  const auto walk_y = [&](int col) {
    int y = ca.y();
    const int ydir = cb.y() > ca.y() ? 2 : 3;  // slot 2 = +y, 3 = -y
    const int ystep = cb.y() > ca.y() ? 1 : -1;
    while (y != cb.y()) {
      path.push_back(node_at({col, y, 0}) * 4 + ydir);
      y += ystep;
    }
  };
  if (y_first) {
    walk_y(ca.x());
    walk_x(cb.y());
  } else {
    walk_x(ca.y());
    walk_y(cb.x());
  }
  return path;
}

std::vector<LinkId> Mesh2D::route(NodeId a, NodeId b) const {
  return route_impl(a, b, y_first_);
}

std::vector<LinkId> Mesh2D::alt_route(NodeId a, NodeId b) const {
  return route_impl(a, b, !y_first_);
}

int Mesh2D::hops(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  return std::abs(ca.x() - cb.x()) + std::abs(ca.y() - cb.y());
}

std::string Mesh2D::name() const {
  return "mesh2d " + std::to_string(rows_) + "x" + std::to_string(cols_);
}

// -------------------------------------------------------------- Hypercube

Hypercube::Hypercube(int dims) : dims_(dims) {
  SPB_REQUIRE(dims >= 1 && dims <= 16, "Hypercube needs 1..16 dimensions");
}

Coord Hypercube::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  return {n, 0, 0};
}

NodeId Hypercube::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x() >= 0 && c.x() < node_count() && c.y() == 0 && c.z() == 0,
              "coordinate out of range");
  return c.x();
}

std::vector<LinkId> Hypercube::route(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  // E-cube: fix differing bits from dimension 0 upward; link slot d of a
  // node is its dimension-d channel.
  std::vector<LinkId> path;
  NodeId at = a;
  for (int d = 0; d < dims_; ++d) {
    const NodeId bit = NodeId{1} << d;
    if ((at & bit) == (b & bit)) continue;
    path.push_back(at * dims_ + d);
    at ^= bit;
  }
  SPB_CHECK(at == b);
  return path;
}

int Hypercube::hops(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::string Hypercube::name() const {
  return "hypercube " + std::to_string(dims_) + "d";
}

// ---------------------------------------------------------------- TorusND

TorusND::TorusND(std::vector<int> dims) : dims_(std::move(dims)) {
  SPB_REQUIRE(!dims_.empty() && ndims() <= Coord::kMaxDims,
              "torus needs 1.." << Coord::kMaxDims << " dimensions, got "
                                << dims_.size());
  std::int64_t nodes = 1;
  for (const int d : dims_) {
    SPB_REQUIRE(d >= 1, "torus dimensions must be positive");
    nodes *= d;
    SPB_REQUIRE(nodes <= (std::int64_t{1} << 22),
                "torus too large (" << nodes << " nodes)");
  }
  nodes_ = static_cast<int>(nodes);
}

Coord TorusND::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < nodes_, "node out of range");
  Coord c;
  int rem = n;
  for (int k = 0; k < ndims(); ++k) {
    c[k] = rem % dim(k);
    rem /= dim(k);
  }
  return c;
}

NodeId TorusND::node_at(const Coord& c) const {
  for (int k = ndims(); k < Coord::kMaxDims; ++k)
    SPB_REQUIRE(c[k] == 0, "coordinate uses dimension " << k
                                                        << " beyond the torus");
  NodeId id = 0;
  for (int k = ndims() - 1; k >= 0; --k) {
    SPB_REQUIRE(c[k] >= 0 && c[k] < dim(k), "coordinate out of range");
    id = id * dim(k) + c[k];
  }
  return id;
}

int TorusND::torus_delta(int from, int to, int size) {
  int forward = to - from;
  if (forward < 0) forward += size;
  const int backward = forward - size;  // <= 0
  // Shorter direction; positive (forward) on ties for determinism.
  return forward <= -backward ? forward : backward;
}

std::vector<LinkId> TorusND::route_impl(NodeId a, NodeId b,
                                        bool reverse) const {
  Coord at = coord(a);
  const Coord cb = coord(b);
  std::vector<LinkId> path;
  const int slots = slots_per_node();

  // Walk dimension k with wraparound, taking the shorter direction
  // (positive on ties); slot 2k is +dim k, slot 2k+1 is -dim k.
  const auto walk = [&](int k) {
    const int size = dim(k);
    const int delta = torus_delta(at[k], cb[k], size);
    const int step = delta >= 0 ? 1 : -1;
    const int slot = delta >= 0 ? 2 * k : 2 * k + 1;
    for (int i = 0; i != delta; i += step) {
      path.push_back(node_at(at) * slots + slot);
      at[k] = (at[k] + step + size) % size;
    }
  };
  if (reverse) {
    for (int k = ndims() - 1; k >= 0; --k) walk(k);
  } else {
    for (int k = 0; k < ndims(); ++k) walk(k);
  }
  SPB_CHECK(at == cb);
  return path;
}

std::vector<LinkId> TorusND::route(NodeId a, NodeId b) const {
  return route_impl(a, b, /*reverse=*/false);
}

// Same shorter-wrap walk as route(), in the reverse dimension order so a
// degraded link on the primary path can be bypassed.
std::vector<LinkId> TorusND::alt_route(NodeId a, NodeId b) const {
  return route_impl(a, b, /*reverse=*/true);
}

int TorusND::hops(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  int total = 0;
  for (int k = 0; k < ndims(); ++k)
    total += std::abs(torus_delta(ca[k], cb[k], dim(k)));
  return total;
}

std::string TorusND::name() const {
  std::string s = "torus ";
  for (int k = 0; k < ndims(); ++k) {
    if (k > 0) s += "x";
    s += std::to_string(dim(k));
  }
  return s;
}

std::string TorusND::describe_link(LinkId id) const {
  SPB_REQUIRE(id >= 0 && id < link_space(), "link id " << id
                                                       << " out of range");
  const int slots = slots_per_node();
  const Coord c = coord(id / slots);
  const int dir = id % slots;
  std::ostringstream os;
  os << "link(";
  for (int k = 0; k < std::max(ndims(), 3); ++k) os << (k ? "," : "") << c[k];
  os << ")";
  static constexpr const char* kDir[6] = {"+x", "-x", "+y", "-y", "+z", "-z"};
  if (slots <= 6) {
    os << kDir[dir];
  } else {
    os << (dir % 2 != 0 ? "-d" : "+d") << dir / 2;
  }
  return os.str();
}

// ---------------------------------------------------------------- Torus3D

std::string Torus3D::name() const {
  return "torus3d " + std::to_string(dx()) + "x" + std::to_string(dy()) + "x" +
         std::to_string(dz());
}

// ---------------------------------------------------------------- Cluster

namespace {

/// Most balanced factorization rows * cols == n, rows <= cols, for laying
/// the cluster's nodes out as a near-square mesh.
void near_square(int n, int& rows, int& cols) {
  rows = 1;
  for (int d = 1; static_cast<std::int64_t>(d) * d <= n; ++d)
    if (n % d == 0) rows = d;
  cols = n / rows;
}

}  // namespace

Cluster::Cluster(int nodes, int cores, double mesh_bw_scale)
    : cores_(cores), mesh_scale_(mesh_bw_scale) {
  SPB_REQUIRE(nodes >= 1 && cores >= 1, "Cluster needs positive dimensions");
  SPB_REQUIRE(mesh_bw_scale > 0.0 && mesh_bw_scale <= 1.0,
              "mesh bandwidth scale must be in (0, 1]");
  SPB_REQUIRE(static_cast<std::int64_t>(nodes) * cores <=
                  (std::int64_t{1} << 22),
              "cluster too large");
  near_square(nodes, nrows_, ncols_);
}

Coord Cluster::coord(NodeId n) const {
  SPB_REQUIRE(n >= 0 && n < node_count(), "node out of range");
  const int node = n / cores_;
  return {node % ncols_, node / ncols_, n % cores_};
}

NodeId Cluster::node_at(const Coord& c) const {
  SPB_REQUIRE(c.x() >= 0 && c.x() < ncols_ && c.y() >= 0 && c.y() < nrows_ &&
                  c.z() >= 0 && c.z() < cores_,
              "coordinate out of range");
  return (c.y() * ncols_ + c.x()) * cores_ + c.z();
}

std::vector<LinkId> Cluster::route_impl(NodeId a, NodeId b,
                                        bool y_first) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  std::vector<LinkId> path;
  if (a == b) return path;
  const int na = a / cores_;
  const int nb = b / cores_;
  path.push_back(a * 6 + 0);  // core -> node switch
  if (na != nb) {
    // Walk the node mesh; every mesh channel belongs to its node's core 0.
    int ax = na % ncols_;
    int ay = na / ncols_;
    const int bx = nb % ncols_;
    const int by = nb / ncols_;
    const auto base = [&](int x, int y) {
      return static_cast<NodeId>((y * ncols_ + x) * cores_);
    };
    const auto walk_x = [&](int y) {
      const int dir = bx > ax ? 2 : 3;  // slot 2 = +x, 3 = -x
      const int step = bx > ax ? 1 : -1;
      while (ax != bx) {
        path.push_back(base(ax, y) * 6 + dir);
        ax += step;
      }
    };
    const auto walk_y = [&](int x) {
      const int dir = by > ay ? 4 : 5;  // slot 4 = +y, 5 = -y
      const int step = by > ay ? 1 : -1;
      while (ay != by) {
        path.push_back(base(x, ay) * 6 + dir);
        ay += step;
      }
    };
    if (y_first) {
      walk_y(ax);
      walk_x(by);
    } else {
      walk_x(ay);
      walk_y(bx);
    }
  }
  path.push_back(b * 6 + 1);  // node switch -> core
  return path;
}

std::vector<LinkId> Cluster::route(NodeId a, NodeId b) const {
  return route_impl(a, b, /*y_first=*/false);
}

std::vector<LinkId> Cluster::alt_route(NodeId a, NodeId b) const {
  return route_impl(a, b, /*y_first=*/true);
}

int Cluster::hops(NodeId a, NodeId b) const {
  SPB_REQUIRE(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
              "node out of range");
  if (a == b) return 0;
  const int na = a / cores_;
  const int nb = b / cores_;
  if (na == nb) return 2;
  const int dx = std::abs(na % ncols_ - nb % ncols_);
  const int dy = std::abs(na / ncols_ - nb / ncols_);
  return 2 + dx + dy;
}

std::string Cluster::name() const {
  return "cluster " + std::to_string(nodes()) + "x" + std::to_string(cores_);
}

std::string Cluster::describe_link(LinkId id) const {
  SPB_REQUIRE(id >= 0 && id < link_space(), "link id " << id
                                                       << " out of range");
  const NodeId core = id / 6;
  const int slot = id % 6;
  const int node = core / cores_;
  std::ostringstream os;
  if (slot < 2) {
    os << "xbar(n" << node << ".c" << core % cores_ << ")"
       << (slot == 0 ? "in" : "out");
  } else {
    static constexpr const char* kDir[4] = {"+x", "-x", "+y", "-y"};
    os << "node(" << node % ncols_ << "," << node / ncols_ << ")"
       << kDir[slot - 2];
  }
  return os.str();
}

double Cluster::link_bandwidth_scale(LinkId id) const {
  return id % 6 >= 2 ? mesh_scale_ : 1.0;
}

}  // namespace spb::net
