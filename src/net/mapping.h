// Rank-to-node mappings.
//
// On the Paragon, an application gets a dedicated submesh exactly matching
// its size, so logical rank i sits on physical node i (identity mapping).
// On the T3D, the paper notes that "the mapping of virtual to physical
// processors cannot be controlled by the user": the p ranks land on p nodes
// of a larger physical torus in an order the algorithm cannot exploit.  We
// model that as a seeded random injection of ranks into the node set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace spb::net {

class RankMapping {
 public:
  /// Identity: rank i on node i (requires p <= nodes).
  static RankMapping identity(int p);

  /// Random injection of p ranks into `nodes` physical nodes, seeded.
  static RankMapping random(int p, int nodes, std::uint64_t seed);

  /// Builds from an explicit table (tests; must be injective).
  static RankMapping from_table(std::vector<NodeId> table);

  NodeId node_of(Rank r) const;
  int rank_count() const { return static_cast<int>(table_.size()); }
  const std::vector<NodeId>& table() const { return table_; }

 private:
  explicit RankMapping(std::vector<NodeId> table);
  std::vector<NodeId> table_;
};

}  // namespace spb::net
