// Sharded plan cache with request coalescing — the concurrent heart of the
// serving layer (src/serve), replacing the single global mutex that
// plan::PlanCache used to hold around every lookup.
//
// The signature key space is split over N independent shards (key % N),
// each shard a bounded LRU behind its own mutex, so lookups for different
// signatures contend only when they hash to the same shard.  Statistics
// are kept per shard and aggregated on demand; `stats()` is always the
// exact field-wise sum of `shard_stats()` (the hammer test pins this).
//
// A miss *coalesces*: the first requester of a signature registers an
// in-flight entry and computes the plan outside every lock; concurrent
// requesters for the same signature wait on that entry instead of planning
// again.  Consequences, all load-bearing for the serve layer:
//   * the planner runs exactly once per distinct in-flight signature, so
//     `misses` counts planner invocations exactly (one per group — the
//     PR-5 "double plan on a miss" race counted each racer as a miss);
//   * waiters are accounted as hits (they were served from cache work they
//     did not do) and additionally counted in `coalesced`;
//   * with capacity >= the working set, hits/misses/evictions are a pure
//     function of the request multiset — independent of thread count and
//     interleaving — which is what makes the serve stats deterministic.
//     `coalesced` alone depends on timing (how many requesters overlapped)
//     and is therefore excluded from deterministic serve reports.
//
// Eviction is per shard: total capacity is divided evenly and a shard
// evicts its own LRU tail, so a hot shard cannot evict a cold shard's
// entries.  With shards = 1 the behavior (including global LRU order) is
// exactly the old single-mutex PlanCache, which is how plan::PlanCache is
// now implemented.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "plan/planner.h"

namespace spb::plan {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Lookups served by waiting on another requester's in-flight plan
  /// (a subset of `hits`; timing-dependent, unlike the other fields).
  std::uint64_t coalesced = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    coalesced += o.coalesced;
    return *this;
  }
};

class ShardedPlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::size_t kDefaultShards = 8;

  /// `capacity` is the total entry budget, divided evenly over `shards`
  /// (each shard gets at least one slot, so the effective capacity is
  /// max(shards, capacity) rounded up to a multiple of shards).
  explicit ShardedPlanCache(std::size_t capacity = kDefaultCapacity,
                            std::size_t shards = kDefaultShards);
  ~ShardedPlanCache();  // out of line: Shard is incomplete here

  /// The cached plan for the request's signature, planning through
  /// `planner` on a miss.  Returns by value: the caller's copy stays valid
  /// across later evictions and concurrent lookups.
  Plan plan(const Planner& planner, const std::vector<Rank>& sources,
            Bytes message_bytes, const std::string& dist_kind = "",
            const std::string& context = "");

  /// Coalescing core: on a miss, `compute` runs exactly once per in-flight
  /// group for `sig` (outside every cache lock); concurrent callers with
  /// the same signature wait for its result.  If `compute` throws, the
  /// owner rethrows and waiters receive a CheckError carrying its message.
  Plan plan(const Signature& sig, const std::function<Plan()>& compute);

  /// plan() without the copy: the serve hot path shares the cached entry
  /// (immutable once published; the pointer stays valid across evictions).
  std::shared_ptr<const Plan> plan_shared(
      const Signature& sig, const std::function<Plan()>& compute);

  /// Cached lookup without planning: true and fills `out` on a hit (does
  /// not count toward the statistics and never waits on in-flight plans).
  bool peek(const Signature& sig, Plan& out) const;

  /// Aggregate statistics: the exact field-wise sum over all shards.
  CacheStats stats() const;
  /// Per-shard statistics, indexed by shard id.
  std::vector<CacheStats> shard_stats() const;

  std::size_t size() const;
  std::size_t shard_size(std::size_t shard) const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity() const {
    return per_shard_capacity_ * shards_.size();
  }
  void clear();

  /// The shard a key maps to (exposed so tests can build per-shard
  /// workloads deliberately).
  std::size_t shard_of(std::uint64_t key) const {
    return static_cast<std::size_t>(key % shards_.size());
  }

 private:
  struct InFlight;
  struct Shard;

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace spb::plan
