#include "plan/cache.h"

#include "common/check.h"

namespace spb::plan {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  SPB_REQUIRE(capacity_ >= 1, "plan cache needs capacity >= 1");
}

Plan PlanCache::plan(const Planner& planner, const std::vector<Rank>& sources,
                     Bytes message_bytes, const std::string& dist_kind,
                     const std::string& context) {
  const Signature sig =
      make_signature(planner.machine(), sources, message_bytes, dist_kind,
                     context);
  const std::uint64_t key = sig.key();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      return it->second->second;
    }
  }
  // Plan outside the lock: planning is pure, so two threads racing on the
  // same signature compute identical tables and either insert wins.
  Plan fresh = planner.plan(sources, message_bytes, dist_kind, context);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost the race: count our miss, keep the winner's entry.
    ++stats_.misses;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++stats_.misses;
  lru_.emplace_front(key, std::move(fresh));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return lru_.front().second;
}

bool PlanCache::peek(const Signature& sig, Plan& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(sig.key());
  if (it == index_.end()) return false;
  out = it->second->second;
  return true;
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = CacheStats{};
}

}  // namespace spb::plan
