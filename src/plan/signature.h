// Canonical problem signatures — the plan-cache key space.
//
// Two requests that must share a plan hash to the same signature:
//   * the source list is canonicalized as a multiset (order-independent,
//     dist::source_multiset_hash),
//   * the message length is bucketed by power of two, so jittered lengths
//     around a nominal L reuse one plan (pricing happens at the bucket's
//     representative length, keeping cached plans independent of which
//     request arrived first),
//   * the machine contributes its name and logical dimensions, and the
//     execution context (e.g. an active fault spec) contributes its text —
//     changing either invalidates every cached plan by changing the key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "machine/config.h"

namespace spb::plan {

struct Signature {
  std::uint64_t machine_hash = 0;  // name + rows x cols + p
  std::uint64_t context_hash = 0;  // fault spec or other run context text
  std::uint64_t source_hash = 0;   // dist::source_multiset_hash
  std::uint64_t dist_hash = 0;     // distribution kind name ("" accepted)
  int l_bucket = 0;                // floor(log2 L)

  /// The combined cache key; collisions are hash-quality rare and only
  /// cost a mispredicted plan, never a wrong broadcast.
  std::uint64_t key() const;

  bool operator==(const Signature&) const = default;
};

/// Bucket index of a message length (floor(log2 L), L >= 1).
int length_bucket(Bytes message_bytes);

/// The length every problem in a bucket is priced at: the bucket's
/// geometric midpoint (3 * 2^(b-1)), so a cached plan never depends on
/// which request's exact L happened to arrive first.
Bytes representative_bytes(int bucket);

/// Builds the canonical signature.  `sources` may arrive in any order;
/// `dist_kind` is the paper's family abbreviation when known ("" is fine —
/// the source multiset already pins the problem); `context` carries
/// run-environment text such as a fault spec ("" = clean machine).
Signature make_signature(const machine::MachineConfig& machine,
                         const std::vector<Rank>& sources,
                         Bytes message_bytes,
                         const std::string& dist_kind = "",
                         const std::string& context = "");

}  // namespace spb::plan
