#include "plan/signature.h"

#include "common/check.h"
#include "common/math.h"
#include "dist/signature.h"

namespace spb::plan {

namespace {

std::uint64_t hash_text(const std::string& text) {
  std::uint64_t h = 0xa076'1d64'78bd'642fULL;
  h = dist::hash_mix(h, text.size());
  for (const char c : text)
    h = dist::hash_mix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

int length_bucket(Bytes message_bytes) {
  SPB_REQUIRE(message_bytes >= 1, "message length must be >= 1 byte");
  return ilog2_floor(static_cast<std::int64_t>(message_bytes));
}

Bytes representative_bytes(int bucket) {
  SPB_REQUIRE(bucket >= 0, "negative length bucket");
  if (bucket == 0) return 1;
  return static_cast<Bytes>(3) << (bucket - 1);
}

std::uint64_t Signature::key() const {
  std::uint64_t h = machine_hash;
  h = dist::hash_mix(h, context_hash);
  h = dist::hash_mix(h, source_hash);
  h = dist::hash_mix(h, dist_hash);
  h = dist::hash_mix(h, static_cast<std::uint64_t>(l_bucket));
  return h;
}

Signature make_signature(const machine::MachineConfig& machine,
                         const std::vector<Rank>& sources,
                         Bytes message_bytes, const std::string& dist_kind,
                         const std::string& context) {
  Signature sig;
  std::uint64_t mh = hash_text(machine.name);
  mh = dist::hash_mix(mh, static_cast<std::uint64_t>(machine.rows));
  mh = dist::hash_mix(mh, static_cast<std::uint64_t>(machine.cols));
  mh = dist::hash_mix(mh, static_cast<std::uint64_t>(machine.p));
  // The logical grid does not pin down the physical network (torus 4x4x4
  // and torus 2x2x16 can share p, rows, cols): mix in the topology's own
  // name, which encodes its dimensions, plus the cluster tier parameters.
  if (machine.topology != nullptr)
    mh = dist::hash_mix(mh, hash_text(machine.topology->name()));
  mh = dist::hash_mix(mh, static_cast<std::uint64_t>(machine.cores_per_node));
  mh = dist::hash_mix(
      mh, static_cast<std::uint64_t>(machine.inter_node_bw_scale * 1e6));
  sig.machine_hash = mh;
  sig.context_hash = hash_text(context);
  sig.source_hash = dist::source_multiset_hash(sources);
  sig.dist_hash = hash_text(dist_kind);
  sig.l_bucket = length_bucket(message_bytes);
  return sig;
}

}  // namespace spb::plan
