// The shared broadcast cost model (the tentpole of the planning layer).
//
// The paper's central observation is that no single s-to-p algorithm wins:
// the best choice depends on the source distribution, the machine
// dimensions, s, and L.  stop::AdaptiveRepositioning already proved a tiny
// abstract model can make that call for one algorithm pair; CostModel
// generalizes it to every algorithm the benchmarks exercise, so a planner
// can rank all of them on a problem without ever running the simulator.
//
// The model prices communication structure, not wire physics: an
// iteration (one send/recv round) costs a fixed software overhead plus the
// largest message moved in it, and concurrent lines charge the slowest
// line.  All per-algorithm predictions reduce to runs of the recursive
// halving structure (coll::HalvingSchedule) over per-position byte loads,
// plus closed-form terms for gathers, exchanges and pipelines.  The
// constants are ratios calibrated per machine (Calibration::from_machine);
// only comparisons between algorithms matter, and bench/ext_planner
// validates the ranking end to end against the measured oracle.
//
// Everything here is pure combinatorics on (rows, cols, sources, L) — no
// simulator types, no stop:: types — so the model sits below stop in the
// layering and stop::AdaptiveRepositioning can delegate to it (one cost
// model, not two).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "machine/config.h"

namespace spb::plan {

/// The priced problem, in logical-grid position space: sources are
/// positions on the row-major rows x cols grid (for whole-machine problems
/// positions and ranks coincide; frame callers pass frame positions).
struct ProblemShape {
  int rows = 1;
  int cols = 1;
  /// Sorted distinct source positions in [0, rows*cols).
  std::vector<Rank> sources;
  /// Message length L at every source, bytes.
  Bytes message_bytes = 0;

  int p() const { return rows * cols; }
  int s() const { return static_cast<int>(sources.size()); }
};

/// Machine-derived pricing constants.  The defaults are the abstract
/// ratios stop::AdaptiveRepositioning has always used (uncalibrated, only
/// comparisons meaningful); from_machine() scales them to a concrete
/// machine's software overheads and link bandwidth.
struct Calibration {
  /// One send/recv round of software overhead + latency, us.
  double iter_overhead_us = 45.0;
  /// Effective cost per payload byte moved in one iteration, us.
  double per_byte_us = 1.0 / 160.0;
  /// Extra per-message software cost on the portable MPI layer, us.
  double mpi_extra_us = 0.0;
  /// Per-byte cost of merging received data into the local buffer, us.
  double combine_per_byte_us = 0.0;
  /// 2-Step broadcast pipelining hint (0 = store-and-forward halving).
  Bytes bcast_segment_bytes = 0;
  /// Local-tier constants for two-level (cluster) machines: the cost of an
  /// iteration / a byte when both endpoints share a node.  On flat machines
  /// they equal iter_overhead_us / per_byte_us, so the Hier_* predictions
  /// degrade gracefully to the single-tier model.
  double intra_iter_overhead_us = 45.0;
  double intra_per_byte_us = 1.0 / 160.0;

  static Calibration from_machine(const machine::MachineConfig& machine);
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(Calibration cal) : cal_(cal) {}

  /// The model never runs the simulator: pricing is pure combinatorics,
  /// structurally off the timed hot path (benches statically assert this,
  /// like RunOptions::record_schedule).
  static constexpr bool kSimulatorFree = true;

  const Calibration& calibration() const { return cal_; }

  /// Every algorithm name the model can price — exactly the names of
  /// stop::all_algorithms(), in the same presentation order.
  static const std::vector<std::string>& algorithms();

  bool can_price(const std::string& algorithm) const;

  /// Predicted broadcast time, microseconds.  Throws CheckError for
  /// unknown algorithm names or a malformed shape.
  double predict_us(const std::string& algorithm,
                    const ProblemShape& shape) const;

  /// One full permutation round (the repositioning cost): exposed so the
  /// adaptive decision rule prices "move first" exactly like the model
  /// prices Repos_*.
  double permute_round_us(Bytes message_bytes) const;

  /// The Br_xy_source dimension rule on a shape (max-row-count vs
  /// max-column-count), shared with the ideal-target construction.
  static bool rows_first_by_sources(const ProblemShape& shape);

  /// Ideal target positions the model assumes Repos_*/Part_* move to —
  /// matches stop::ideal_targets_for (tests hold the two together).
  /// `base` is the wrapped algorithm name ("Br_Lin", "Br_xy_source",
  /// "Br_xy_dim").
  static std::vector<Rank> ideal_targets(const std::string& base, int rows,
                                         int cols, int s);

 private:
  double br_lin_us(const ProblemShape& shape, bool snake) const;
  double br_xy_us(const ProblemShape& shape, bool rows_first) const;
  double repos_us(const std::string& base, const ProblemShape& shape) const;
  double part_us(const std::string& base, const ProblemShape& shape) const;
  double two_step_us(const ProblemShape& shape, bool mpi) const;
  double pers_alltoall_us(const ProblemShape& shape, bool mpi) const;
  double allgatherv_us(const ProblemShape& shape) const;
  double adaptive_us(const ProblemShape& shape) const;
  double uncoordinated_us(const ProblemShape& shape) const;
  double hier_us(const ProblemShape& shape, bool two_step_leaders) const;
  double base_us(const std::string& base, const ProblemShape& shape) const;

  Calibration cal_;
};

}  // namespace spb::plan
