#include "plan/planner.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace spb::plan {

const std::string& Plan::best() const {
  SPB_REQUIRE(!ranked.empty(), "plan holds no ranked algorithms");
  return ranked.front().algorithm;
}

std::string Plan::table_text() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "signature %016" PRIx64 " L=%lld\n",
                signature.key(), static_cast<long long>(planned_bytes));
  out += line;
  for (const Entry& e : ranked) {
    // Fixed-point, never scientific: stable bytes across platforms.
    std::snprintf(line, sizeof(line), "%-24s %14.3f\n", e.algorithm.c_str(),
                  e.predicted_us);
    out += line;
  }
  return out;
}

Planner::Planner(const machine::MachineConfig& machine,
                 std::vector<std::string> algorithms)
    : machine_(machine),
      algorithms_(algorithms.empty() ? CostModel::algorithms()
                                     : std::move(algorithms)),
      model_(Calibration::from_machine(machine)) {
  for (const std::string& name : algorithms_)
    SPB_REQUIRE(model_.can_price(name),
                "planner registered unpriceable algorithm '" << name << "'");
}

Plan Planner::plan(const std::vector<Rank>& sources, Bytes message_bytes,
                   const std::string& dist_kind,
                   const std::string& context) const {
  Plan out;
  out.signature =
      make_signature(machine_, sources, message_bytes, dist_kind, context);
  out.planned_bytes = representative_bytes(out.signature.l_bucket);

  ProblemShape shape;
  shape.rows = machine_.rows;
  shape.cols = machine_.cols;
  shape.sources = sources;
  std::sort(shape.sources.begin(), shape.sources.end());
  shape.message_bytes = out.planned_bytes;

  out.ranked.reserve(algorithms_.size());
  for (const std::string& name : algorithms_)
    out.ranked.push_back({name, model_.predict_us(name, shape)});
  // Stable: equal predictions keep registry order, making the table a
  // pure function of the signature.
  std::stable_sort(out.ranked.begin(), out.ranked.end(),
                   [](const Plan::Entry& a, const Plan::Entry& b) {
                     return a.predicted_us < b.predicted_us;
                   });
  return out;
}

}  // namespace spb::plan
