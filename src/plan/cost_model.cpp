#include "plan/cost_model.h"

#include <algorithm>
#include <iterator>

#include "coll/halving.h"
#include "common/check.h"
#include "common/math.h"
#include "dist/ideal.h"

namespace spb::plan {

namespace {

void require_valid(const ProblemShape& shape) {
  SPB_REQUIRE(shape.rows >= 1 && shape.cols >= 1,
              "cost model needs a non-empty grid, got "
                  << shape.rows << "x" << shape.cols);
  SPB_REQUIRE(std::is_sorted(shape.sources.begin(), shape.sources.end()),
              "cost model wants sorted source positions");
  if (!shape.sources.empty()) {
    SPB_REQUIRE(shape.sources.front() >= 0 &&
                    shape.sources.back() < shape.p(),
                "source position outside the "
                    << shape.rows << "x" << shape.cols << " grid");
  }
}

/// Position of grid cell (row, col) in the boustrophedon (snake) order
/// Br_Lin_snake halves over: even rows run left-to-right, odd rows
/// right-to-left.
int snake_position(int row, int col, int cols) {
  return row * cols + (row % 2 == 0 ? col : cols - 1 - col);
}

}  // namespace

Calibration Calibration::from_machine(const machine::MachineConfig& machine) {
  Calibration cal;
  // One halving iteration pays the sender and receiver software overheads
  // plus the routing-setup latency of the message that closes the round.
  cal.iter_overhead_us = machine.comm.send_overhead_us +
                         machine.comm.recv_overhead_us +
                         machine.net.alpha_us;
  // Effective per-byte cost: wire serialization.  Contention and combining
  // stretch large transfers beyond the raw wire rate, but the stretch is
  // similar across algorithms, so the comparison survives it.
  cal.per_byte_us = 1.0 / machine.net.bytes_per_us;
  cal.mpi_extra_us = machine.mpi_extra_us;
  cal.combine_per_byte_us = machine.comm.combine_per_byte_us;
  cal.bcast_segment_bytes = machine.bcast_segment_bytes;
  // Two-tier machines: net.bytes_per_us is the fast intra-node tier; the
  // inter-node links (which almost all halving traffic crosses) run at the
  // configured fraction of it.  Flat machines keep the tiers identical.
  cal.intra_iter_overhead_us = cal.iter_overhead_us;
  cal.intra_per_byte_us = cal.per_byte_us;
  if (machine.cores_per_node > 0) {
    cal.per_byte_us =
        1.0 / (machine.net.bytes_per_us * machine.inter_node_bw_scale);
  }
  return cal;
}

const std::vector<std::string>& CostModel::algorithms() {
  // stop::all_algorithms() names, presentation order (tests pin the two
  // lists together; plan sits below stop so it cannot ask directly).
  static const std::vector<std::string> kNames = {
      "2-Step",
      "MPI_AllGather",
      "PersAlltoAll",
      "MPI_Alltoall",
      "Br_Lin",
      "Br_xy_source",
      "Br_xy_dim",
      "Repos_Lin",
      "Repos_xy_source",
      "Repos_xy_dim",
      "Part_Lin",
      "Part_xy_source",
      "Part_xy_dim",
      "Br_Lin_snake",
      "Allgatherv_RD",
      "AdaptiveRepos_xy_source",
      "Uncoord_1toAll",
      "Hier_Lin",
      "Hier_2Step",
  };
  return kNames;
}

bool CostModel::can_price(const std::string& algorithm) const {
  const auto& names = algorithms();
  return std::find(names.begin(), names.end(), algorithm) != names.end();
}

double CostModel::permute_round_us(Bytes message_bytes) const {
  return cal_.iter_overhead_us +
         static_cast<double>(message_bytes) * cal_.per_byte_us;
}

bool CostModel::rows_first_by_sources(const ProblemShape& shape) {
  std::vector<int> row_counts(static_cast<std::size_t>(shape.rows), 0);
  std::vector<int> col_counts(static_cast<std::size_t>(shape.cols), 0);
  for (const Rank pos : shape.sources) {
    ++row_counts[static_cast<std::size_t>(pos / shape.cols)];
    ++col_counts[static_cast<std::size_t>(pos % shape.cols)];
  }
  const int max_r = *std::max_element(row_counts.begin(), row_counts.end());
  const int max_c = *std::max_element(col_counts.begin(), col_counts.end());
  // "If max_r < max_c, rows are selected first.  Otherwise, the columns."
  return max_r < max_c;
}

std::vector<Rank> CostModel::ideal_targets(const std::string& base, int rows,
                                           int cols, int s) {
  const dist::Grid grid{rows, cols};
  if (s == 0) return {};
  if (base == "Br_Lin") return dist::ideal_linear(grid, s);
  if (base == "Br_xy_source") return dist::ideal_rows(grid, s);
  if (base == "Br_xy_dim") {
    // Br_xy_dim's second phase spreads across the first dimension's lines:
    // rows first iff rows >= cols, mirroring stop::ideal_targets_for.
    return rows >= cols ? dist::ideal_cols(grid, s) : dist::ideal_rows(grid, s);
  }
  SPB_REQUIRE(false, "no ideal distribution known for algorithm '" << base
                                                                   << "'");
  return {};
}

namespace {

/// One halving structure over per-position byte loads: iterations cost a
/// fixed overhead plus the largest message received (the model's two
/// objectives, inverted into costs).  `bytes` is updated to the
/// post-broadcast loads.  This is the primitive every Br_*/Repos_*/Part_*
/// prediction reduces to — lifted verbatim from the original
/// stop::AdaptiveRepositioning model.
double halving_cost(const std::vector<char>& active,
                    std::vector<double>& bytes, const Calibration& cal,
                    double per_byte_extra = 0.0) {
  const coll::HalvingSchedule sched = coll::HalvingSchedule::compute(active);
  const double per_byte = cal.per_byte_us + per_byte_extra;
  double total = 0;
  for (int iter = 0; iter < sched.iterations(); ++iter) {
    const std::vector<double> snapshot = bytes;
    double worst = 0;
    bool any = false;
    for (int pos = 0; pos < sched.size(); ++pos) {
      for (const coll::Action& a : sched.actions(iter, pos)) {
        if (a.type != coll::Action::Type::kRecv) continue;
        any = true;
        worst = std::max(worst, snapshot[static_cast<std::size_t>(a.peer)]);
        bytes[static_cast<std::size_t>(pos)] +=
            snapshot[static_cast<std::size_t>(a.peer)];
      }
    }
    if (any) total += cal.iter_overhead_us + worst * per_byte;
  }
  return total;
}

}  // namespace

double CostModel::br_lin_us(const ProblemShape& shape, bool snake) const {
  const double L = static_cast<double>(shape.message_bytes);
  std::vector<char> active(static_cast<std::size_t>(shape.p()), 0);
  std::vector<double> bytes(static_cast<std::size_t>(shape.p()), 0);
  for (const Rank src : shape.sources) {
    const int pos = snake ? snake_position(src / shape.cols, src % shape.cols,
                                           shape.cols)
                          : static_cast<int>(src);
    active[static_cast<std::size_t>(pos)] = 1;
    bytes[static_cast<std::size_t>(pos)] = L;
  }
  return halving_cost(active, bytes, cal_, cal_.combine_per_byte_us);
}

double CostModel::br_xy_us(const ProblemShape& shape, bool rows_first) const {
  const double L = static_cast<double>(shape.message_bytes);
  const int lines_a = rows_first ? shape.rows : shape.cols;
  const int len_a = rows_first ? shape.cols : shape.rows;

  // Phase A: per-line halving runs concurrently; charge the slowest line
  // and track each line's final per-member load.
  double phase_a = 0;
  std::vector<double> line_bytes(static_cast<std::size_t>(lines_a), 0);
  for (int line = 0; line < lines_a; ++line) {
    std::vector<char> active(static_cast<std::size_t>(len_a), 0);
    std::vector<double> bytes(static_cast<std::size_t>(len_a), 0);
    for (const Rank src : shape.sources) {
      const int r_line = rows_first ? src / shape.cols : src % shape.cols;
      const int r_pos = rows_first ? src % shape.cols : src / shape.cols;
      if (r_line != line) continue;
      active[static_cast<std::size_t>(r_pos)] = 1;
      bytes[static_cast<std::size_t>(r_pos)] = L;
    }
    const double c =
        halving_cost(active, bytes, cal_, cal_.combine_per_byte_us);
    phase_a = std::max(phase_a, c);
    line_bytes[static_cast<std::size_t>(line)] =
        *std::max_element(bytes.begin(), bytes.end());
  }

  // Phase B: every phase-A line with data is one active position.
  std::vector<char> active_b(static_cast<std::size_t>(lines_a), 0);
  for (int line = 0; line < lines_a; ++line)
    active_b[static_cast<std::size_t>(line)] =
        line_bytes[static_cast<std::size_t>(line)] > 0 ? 1 : 0;
  const double phase_b =
      halving_cost(active_b, line_bytes, cal_, cal_.combine_per_byte_us);
  return phase_a + phase_b;
}

double CostModel::base_us(const std::string& base,
                          const ProblemShape& shape) const {
  if (base == "Br_Lin") return br_lin_us(shape, /*snake=*/false);
  if (base == "Br_xy_source")
    return br_xy_us(shape, rows_first_by_sources(shape));
  if (base == "Br_xy_dim")
    return br_xy_us(shape, shape.rows >= shape.cols);
  SPB_REQUIRE(false, "unknown base algorithm '" << base << "'");
  return 0;
}

double CostModel::repos_us(const std::string& base,
                           const ProblemShape& shape) const {
  ProblemShape ideal = shape;
  ideal.sources = ideal_targets(base, shape.rows, shape.cols, shape.s());
  std::vector<Rank> movers;
  std::set_difference(shape.sources.begin(), shape.sources.end(),
                      ideal.sources.begin(), ideal.sources.end(),
                      std::back_inserter(movers));
  const double permute =
      movers.empty() ? 0.0 : permute_round_us(shape.message_bytes);
  return permute + base_us(base, ideal);
}

double CostModel::part_us(const std::string& base,
                          const ProblemShape& shape) const {
  if (shape.p() < 2) return base_us(base, shape);
  // Split along the longer dimension, G1 = first half (stop::PartitionSplit).
  ProblemShape g1;
  ProblemShape g2;
  g1.message_bytes = g2.message_bytes = shape.message_bytes;
  if (shape.cols >= shape.rows) {
    g1.rows = g2.rows = shape.rows;
    g1.cols = shape.cols / 2;
    g2.cols = shape.cols - g1.cols;
  } else {
    g1.cols = g2.cols = shape.cols;
    g1.rows = shape.rows / 2;
    g2.rows = shape.rows - g1.rows;
  }
  const int p1 = g1.p();
  const int p2 = g2.p();
  // Proportional share, clamped (stop::partition_share).
  int s1 = static_cast<int>(
      (static_cast<long long>(shape.s()) * p1 + (p1 + p2) / 2) / (p1 + p2));
  s1 = std::min({std::max({s1, shape.s() - p2, 0}), p1, shape.s()});
  const int s2 = shape.s() - s1;
  g1.sources = ideal_targets(base, g1.rows, g1.cols, s1);
  g2.sources = ideal_targets(base, g2.rows, g2.cols, s2);

  const double L = static_cast<double>(shape.message_bytes);
  // One global permutation (sources rarely all sit on targets; charge it).
  const double permute = permute_round_us(shape.message_bytes);
  // Group broadcasts run simultaneously; charge the slower group.
  const double groups = std::max(s1 > 0 ? base_us(base, g1) : 0.0,
                                 s2 > 0 ? base_us(base, g2) : 0.0);
  // Final exchange: G1[k % p1] <-> G2[k]; a G1 node pushes its s1*L data
  // ceil(p2/p1) times and absorbs s2*L back.
  const double copies = static_cast<double>(ceil_div(p2, p1));
  const double exchange =
      cal_.iter_overhead_us +
      (copies * static_cast<double>(s1) + static_cast<double>(s2)) * L *
          cal_.per_byte_us;
  return permute + groups + exchange;
}

double CostModel::two_step_us(const ProblemShape& shape, bool mpi) const {
  const double L = static_cast<double>(shape.message_bytes);
  const double extra = mpi ? cal_.mpi_extra_us : 0.0;
  const double per_byte = cal_.per_byte_us;
  // Gather: every non-root source lands on the root's ejection channel,
  // strictly serialized — the hot spot that sinks 2-Step on the Paragon.
  const bool root_is_source =
      !shape.sources.empty() && shape.sources.front() == 0;
  const int senders = shape.s() - (root_is_source ? 1 : 0);
  const double gather =
      senders > 0 ? static_cast<double>(senders) *
                        (cal_.iter_overhead_us / 2 + extra + L * per_byte)
                  : 0.0;
  // Broadcast of the combined s*L bytes.
  const double total_bytes = static_cast<double>(shape.s()) * L;
  const int depth = ilog2_ceil(shape.p());
  double bcast = 0;
  if (shape.s() > 0 && shape.p() > 1) {
    if (cal_.bcast_segment_bytes > 0) {
      // Pipelined vendor collective: fill the pipe once, then one segment
      // per tree level.
      const double seg = static_cast<double>(cal_.bcast_segment_bytes);
      bcast = total_bytes * per_byte +
              static_cast<double>(depth) *
                  (cal_.iter_overhead_us + extra + seg * per_byte);
    } else {
      // Store-and-forward halving, only the root active: every iteration
      // moves the whole s*L payload.
      bcast = static_cast<double>(depth) *
              (cal_.iter_overhead_us + extra + total_bytes * per_byte);
    }
  }
  return gather + bcast;
}

double CostModel::pers_alltoall_us(const ProblemShape& shape,
                                   bool mpi) const {
  if (shape.p() <= 1) return 0;
  const double L = static_cast<double>(shape.message_bytes);
  const double extra = mpi ? cal_.mpi_extra_us : 0.0;
  const double rounds = static_cast<double>(shape.p() - 1);
  // Every source pushes its original through all p-1 rounds; receives are
  // drained after the sends, so the send side of a source rank bounds the
  // exchange.  Non-source ranks only absorb s messages.
  const double send_side =
      rounds * (cal_.iter_overhead_us / 2 + extra + L * cal_.per_byte_us);
  const double recv_side =
      static_cast<double>(shape.s()) *
      (cal_.iter_overhead_us / 2 + extra + L * cal_.per_byte_us);
  return shape.s() > 0 ? std::max(send_side, recv_side) : 0.0;
}

double CostModel::allgatherv_us(const ProblemShape& shape) const {
  // The same halving structure as Br_Lin, without per-byte combining.
  const double L = static_cast<double>(shape.message_bytes);
  std::vector<char> active(static_cast<std::size_t>(shape.p()), 0);
  std::vector<double> bytes(static_cast<std::size_t>(shape.p()), 0);
  for (const Rank src : shape.sources) {
    active[static_cast<std::size_t>(src)] = 1;
    bytes[static_cast<std::size_t>(src)] = L;
  }
  return halving_cost(active, bytes, cal_);
}

double CostModel::adaptive_us(const ProblemShape& shape) const {
  // AdaptiveRepos_xy_source achieves min(direct, reposition) by its
  // decision rule — price it as exactly that.
  return std::min(base_us("Br_xy_source", shape),
                  repos_us("Br_xy_source", shape));
}

double CostModel::uncoordinated_us(const ProblemShape& shape) const {
  if (shape.p() <= 1 || shape.s() == 0) return 0;
  const double L = static_cast<double>(shape.message_bytes);
  // s uncoordinated trees, no combining: every rank absorbs s distinct
  // L-byte messages through one ejection channel and forwards about as
  // many, while the trees contend for the same links.  The paper: "poor
  // performance due to arising congestion and the large number of
  // messages".
  const double per_message = cal_.iter_overhead_us / 2 + L * cal_.per_byte_us;
  const double depth = static_cast<double>(ilog2_ceil(shape.p()));
  return depth * cal_.iter_overhead_us +
         2.0 * static_cast<double>(shape.s()) * per_message;
}

double CostModel::hier_us(const ProblemShape& shape,
                          bool two_step_leaders) const {
  if (shape.s() == 0) return 0;
  const double L = static_cast<double>(shape.message_bytes);
  const int rows = shape.rows;
  const int cols = shape.cols;

  // Per-row (= per-node) source counts; a row leader that is itself a
  // source keeps its data local during the gather.
  std::vector<int> row_senders(static_cast<std::size_t>(rows), 0);
  for (const Rank pos : shape.sources) {
    const int row = pos / cols;
    if (pos != static_cast<Rank>(row) * cols)  // the leader position
      ++row_senders[static_cast<std::size_t>(row)];
  }
  std::vector<int> row_sources(static_cast<std::size_t>(rows), 0);
  for (const Rank pos : shape.sources)
    ++row_sources[static_cast<std::size_t>(pos / cols)];

  // Phase 1: rows gather concurrently over the local tier; each leader's
  // ejection channel serializes its row's senders.  Charge the slowest row.
  double gather = 0;
  for (int r = 0; r < rows; ++r) {
    const int senders = row_senders[static_cast<std::size_t>(r)];
    if (senders == 0) continue;
    gather = std::max(gather,
                      static_cast<double>(senders) *
                          (cal_.intra_iter_overhead_us / 2 +
                           L * cal_.intra_per_byte_us));
  }

  // Phase 2: the leaders exchange the per-row buckets over the slow tier.
  double leaders = 0;
  if (rows > 1) {
    if (two_step_leaders) {
      // Second-level gather at the global root, then a one-to-all halving
      // broadcast of the combined s*L payload across the leaders.
      for (int r = 1; r < rows; ++r) {
        const int src = row_sources[static_cast<std::size_t>(r)];
        if (src == 0) continue;
        leaders += cal_.iter_overhead_us / 2 +
                   static_cast<double>(src) * L * cal_.per_byte_us;
      }
      const double total = static_cast<double>(shape.s()) * L;
      leaders += static_cast<double>(ilog2_ceil(rows)) *
                 (cal_.iter_overhead_us + total * cal_.per_byte_us);
    } else {
      // Recursive-halving allgather over the per-row loads.
      std::vector<char> active(static_cast<std::size_t>(rows), 0);
      std::vector<double> bytes(static_cast<std::size_t>(rows), 0);
      for (int r = 0; r < rows; ++r) {
        if (row_sources[static_cast<std::size_t>(r)] == 0) continue;
        active[static_cast<std::size_t>(r)] = 1;
        bytes[static_cast<std::size_t>(r)] =
            static_cast<double>(row_sources[static_cast<std::size_t>(r)]) * L;
      }
      leaders = halving_cost(active, bytes, cal_, cal_.combine_per_byte_us);
    }
  }

  // Phase 3: leaders fan the full s*L result out inside their rows over the
  // local tier (store-and-forward halving, no combining).
  double fanout = 0;
  if (cols > 1) {
    const double total = static_cast<double>(shape.s()) * L;
    fanout = static_cast<double>(ilog2_ceil(cols)) *
             (cal_.intra_iter_overhead_us + total * cal_.intra_per_byte_us);
  }
  return gather + leaders + fanout;
}

double CostModel::predict_us(const std::string& algorithm,
                             const ProblemShape& shape) const {
  require_valid(shape);
  if (algorithm == "2-Step") return two_step_us(shape, false);
  if (algorithm == "MPI_AllGather") return two_step_us(shape, true);
  if (algorithm == "PersAlltoAll") return pers_alltoall_us(shape, false);
  if (algorithm == "MPI_Alltoall") return pers_alltoall_us(shape, true);
  if (algorithm == "Br_Lin") return br_lin_us(shape, /*snake=*/false);
  if (algorithm == "Br_Lin_snake") return br_lin_us(shape, /*snake=*/true);
  if (algorithm == "Br_xy_source")
    return br_xy_us(shape, rows_first_by_sources(shape));
  if (algorithm == "Br_xy_dim")
    return br_xy_us(shape, shape.rows >= shape.cols);
  if (algorithm == "Repos_Lin") return repos_us("Br_Lin", shape);
  if (algorithm == "Repos_xy_source") return repos_us("Br_xy_source", shape);
  if (algorithm == "Repos_xy_dim") return repos_us("Br_xy_dim", shape);
  if (algorithm == "Part_Lin") return part_us("Br_Lin", shape);
  if (algorithm == "Part_xy_source") return part_us("Br_xy_source", shape);
  if (algorithm == "Part_xy_dim") return part_us("Br_xy_dim", shape);
  if (algorithm == "Allgatherv_RD") return allgatherv_us(shape);
  if (algorithm == "AdaptiveRepos_xy_source") return adaptive_us(shape);
  if (algorithm == "Uncoord_1toAll") return uncoordinated_us(shape);
  if (algorithm == "Hier_Lin") return hier_us(shape, false);
  if (algorithm == "Hier_2Step") return hier_us(shape, true);
  SPB_REQUIRE(false, "cost model cannot price algorithm '" << algorithm
                                                           << "'");
  return 0;
}

}  // namespace spb::plan
