#include "plan/sharded_cache.h"

#include <condition_variable>

#include "common/check.h"

namespace spb::plan {

/// One requester computes; everyone else arriving before the plan lands in
/// the LRU waits here.  Owned via shared_ptr so a waiter's handle stays
/// valid after the shard erases the in-flight entry.
struct ShardedPlanCache::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool failed = false;
  std::string error;
  std::shared_ptr<const Plan> plan;
};

struct ShardedPlanCache::Shard {
  using LruList = std::list<std::pair<std::uint64_t, std::shared_ptr<const Plan>>>;

  mutable std::mutex mu;
  LruList lru;  // front = most recent
  std::unordered_map<std::uint64_t, LruList::iterator> index;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight;
  CacheStats stats;
};

ShardedPlanCache::~ShardedPlanCache() = default;

ShardedPlanCache::ShardedPlanCache(std::size_t capacity, std::size_t shards) {
  SPB_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
  SPB_REQUIRE(shards >= 1, "plan cache needs at least one shard");
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

Plan ShardedPlanCache::plan(const Planner& planner,
                            const std::vector<Rank>& sources,
                            Bytes message_bytes, const std::string& dist_kind,
                            const std::string& context) {
  const Signature sig = make_signature(planner.machine(), sources,
                                       message_bytes, dist_kind, context);
  return plan(sig, [&] {
    return planner.plan(sources, message_bytes, dist_kind, context);
  });
}

Plan ShardedPlanCache::plan(const Signature& sig,
                            const std::function<Plan()>& compute) {
  return *plan_shared(sig, compute);
}

std::shared_ptr<const Plan> ShardedPlanCache::plan_shared(
    const Signature& sig, const std::function<Plan()>& compute) {
  const std::uint64_t key = sig.key();
  Shard& sh = *shards_[shard_of(key)];

  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.index.find(key);
    if (it != sh.index.end()) {
      ++sh.stats.hits;
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // refresh recency
      return it->second->second;
    }
    const auto in = sh.inflight.find(key);
    if (in != sh.inflight.end()) {
      // Coalesce: someone is already planning this signature.
      ++sh.stats.hits;
      ++sh.stats.coalesced;
      flight = in->second;
    } else {
      // We plan; exactly one miss per in-flight group, by construction.
      ++sh.stats.misses;
      flight = std::make_shared<InFlight>();
      sh.inflight.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (flight->failed)
      throw CheckError("coalesced plan failed: " + flight->error);
    return flight->plan;
  }

  // Owner path: plan outside every lock, publish, wake the waiters.
  std::shared_ptr<const Plan> fresh;
  try {
    fresh = std::make_shared<const Plan>(compute());
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.inflight.erase(key);
    }
    {
      std::lock_guard<std::mutex> flight_lock(flight->mu);
      flight->failed = true;
      flight->error = e.what();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.inflight.erase(key);
    sh.lru.emplace_front(key, fresh);
    sh.index.emplace(key, sh.lru.begin());
    while (sh.lru.size() > per_shard_capacity_) {
      sh.index.erase(sh.lru.back().first);
      sh.lru.pop_back();
      ++sh.stats.evictions;
    }
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mu);
    flight->plan = std::move(fresh);
    flight->done = true;
  }
  flight->cv.notify_all();
  return flight->plan;
}

bool ShardedPlanCache::peek(const Signature& sig, Plan& out) const {
  const std::uint64_t key = sig.key();
  const Shard& sh = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.index.find(key);
  if (it == sh.index.end()) return false;
  out = *it->second->second;
  return true;
}

CacheStats ShardedPlanCache::stats() const {
  CacheStats total;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->stats;
  }
  return total;
}

std::vector<CacheStats> ShardedPlanCache::shard_stats() const {
  std::vector<CacheStats> per;
  per.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    per.push_back(sh->stats);
  }
  return per;
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    total += sh->lru.size();
  }
  return total;
}

std::size_t ShardedPlanCache::shard_size(std::size_t shard) const {
  SPB_REQUIRE(shard < shards_.size(), "shard index out of range");
  const Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.lru.size();
}

void ShardedPlanCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->index.clear();
    sh->stats = CacheStats{};
    // In-flight plans are left alone: their owners still hold references
    // and will publish into the (now empty) shard when they finish.
  }
}

}  // namespace spb::plan
