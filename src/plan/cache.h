// The plan cache: canonical-signature -> Plan, bounded LRU, with hit /
// miss / eviction statistics for the observability report.
//
// Thread-safe (one mutex around the table) so a batched request driver can
// fan requests out over worker threads; determinism of the *plans* is free
// because planning is a pure function of the signature — a hit returns
// byte-identical tables to the miss that populated it.  Statistics totals
// are order-independent as long as the working set fits the capacity
// (misses = distinct signatures); under eviction pressure the exact
// hit/miss split depends on arrival order, which is why the replay driver
// sizes the cache to its working set.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "plan/planner.h"

namespace spb::plan {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The cached plan for the request's signature, planning through
  /// `planner` on a miss.  Returns by value: the caller's copy stays
  /// valid across later evictions and concurrent lookups.
  Plan plan(const Planner& planner, const std::vector<Rank>& sources,
            Bytes message_bytes, const std::string& dist_kind = "",
            const std::string& context = "");

  /// Cached lookup without planning: true and fills `out` on a hit (does
  /// not count toward the statistics).
  bool peek(const Signature& sig, Plan& out) const;

  CacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  using LruList = std::list<std::pair<std::uint64_t, Plan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace spb::plan
