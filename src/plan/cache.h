// The plan cache: canonical-signature -> Plan, bounded LRU, with hit /
// miss / eviction statistics for the observability report.
//
// Since the serve PR this is a thin veneer over ShardedPlanCache with a
// single shard, which preserves the original global-LRU eviction order
// exactly while picking up the coalescing semantics: concurrent misses on
// one signature plan once and count once (the PR-5 implementation planned
// outside the lock and counted every racer as a miss).  Code that fans
// requests out over many threads — the serve layer — should hold a
// ShardedPlanCache directly and spread the key space over several shards;
// this class remains the convenient single-lock flavor for CLI drivers and
// tests whose working sets are small.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "plan/planner.h"
#include "plan/sharded_cache.h"

namespace spb::plan {

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity =
      ShardedPlanCache::kDefaultCapacity;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity)
      : impl_(capacity, /*shards=*/1) {}

  /// The cached plan for the request's signature, planning through
  /// `planner` on a miss.  Returns by value: the caller's copy stays
  /// valid across later evictions and concurrent lookups.
  Plan plan(const Planner& planner, const std::vector<Rank>& sources,
            Bytes message_bytes, const std::string& dist_kind = "",
            const std::string& context = "") {
    return impl_.plan(planner, sources, message_bytes, dist_kind, context);
  }

  /// Cached lookup without planning: true and fills `out` on a hit (does
  /// not count toward the statistics).
  bool peek(const Signature& sig, Plan& out) const {
    return impl_.peek(sig, out);
  }

  CacheStats stats() const { return impl_.stats(); }
  std::size_t size() const { return impl_.size(); }
  std::size_t capacity() const { return impl_.capacity(); }
  void clear() { impl_.clear(); }

 private:
  ShardedPlanCache impl_;
};

}  // namespace spb::plan
