// The broadcast planner: prices every registered algorithm on a problem
// through the shared CostModel and returns the predicted-best algorithm
// plus the full ranked table.  Planning is deterministic — same machine,
// sources and length bucket give a byte-identical table on any thread —
// and never touches the simulator, so callers can plan once and execute
// many (tools/spb_plan, bench/ext_planner).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "machine/config.h"
#include "plan/cost_model.h"
#include "plan/signature.h"

namespace spb::plan {

struct Plan {
  Signature signature;
  /// The length the table was priced at (the bucket representative, not
  /// the requesting problem's exact L).
  Bytes planned_bytes = 0;
  struct Entry {
    std::string algorithm;
    double predicted_us = 0;
  };
  /// Ascending predicted time; ties broken by registry order, so the
  /// table is a pure function of the signature.
  std::vector<Entry> ranked;

  const std::string& best() const;

  /// Deterministic fixed-point rendering of the ranked table — the
  /// byte-identity unit for the --jobs determinism checks.
  std::string table_text() const;
};

class Planner {
 public:
  /// Plans for one machine; `algorithms` defaults to every name the cost
  /// model prices (the full stop::all_algorithms() registry).
  explicit Planner(const machine::MachineConfig& machine,
                   std::vector<std::string> algorithms = {});

  const machine::MachineConfig& machine() const { return machine_; }
  const std::vector<std::string>& algorithms() const { return algorithms_; }
  const CostModel& model() const { return model_; }

  /// Ranks all registered algorithms on (sources, L).  `dist_kind` and
  /// `context` only refine the signature (see plan/signature.h).
  Plan plan(const std::vector<Rank>& sources, Bytes message_bytes,
            const std::string& dist_kind = "",
            const std::string& context = "") const;

 private:
  machine::MachineConfig machine_;
  std::vector<std::string> algorithms_;
  CostModel model_;
};

}  // namespace spb::plan
