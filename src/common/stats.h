// Streaming descriptive statistics (Welford) used by the runtime metrics and
// by the benchmark harness when averaging over repeated runs.
#pragma once

#include <cstdint>

namespace spb {

class RunningStat {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spb
