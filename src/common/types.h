// Fundamental value types shared by every spb subsystem.
//
// The simulator measures time in *simulated microseconds* stored in a
// double; all byte counts are 64-bit.  Ranks (logical processor indices in
// the message-passing runtime) and NodeIds (physical positions in the
// interconnect) are kept as distinct types so that a rank is never silently
// used where a physical node is expected — the Cray T3D model maps ranks to
// nodes through a random permutation, and conflating the two is the classic
// bug in that code path.
#pragma once

#include <cstdint>

namespace spb {

/// Logical processor index in the message-passing runtime, 0 <= rank < p.
using Rank = std::int32_t;

/// Physical node index in an interconnect topology.
using NodeId = std::int32_t;

/// Directed channel index inside a Topology (see net/topology.h).
using LinkId = std::int32_t;

/// Simulated time in microseconds.  Simulations are single-threaded and
/// deterministic; ties are broken by event sequence numbers, never by
/// floating-point noise.
using SimTime = double;

/// Message / payload sizes in bytes.
using Bytes = std::uint64_t;

/// Sentinel for "no rank" (e.g. an unpaired element in a halving step).
inline constexpr Rank kNoRank = -1;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

}  // namespace spb
