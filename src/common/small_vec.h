// A small-buffer vector for trivially copyable element types.
//
// The message-passing hot path builds and merges many tiny chunk lists
// (most payloads hold a handful of chunks); std::vector pays one heap
// allocation per list.  SmallVec keeps up to N elements inline and only
// spills to the heap beyond that.  Restricting T to trivially copyable
// types keeps every copy/move a memcpy and the destructor trivial, which
// is what lets mp::Payload and sim::EventQueue stay allocation-free in
// the common case.
//
// Deliberately minimal: grow-only capacity, no insert/erase in the middle,
// no allocator hooks.  Copy-assignment reuses existing capacity (like
// std::vector), which the in-place Payload::merge relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/check.h"

namespace spb {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for trivially copyable types");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { assign(other.data_, other.size_); }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data_, other.size_);
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  /// True iff the elements currently live in the inline buffer.
  bool inline_storage() const { return data_ == inline_buf(); }

  void clear() { size_ = 0; }

  /// Grows capacity to at least `n`, preserving contents.  Never shrinks.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    // Geometric growth so repeated merges amortize.
    std::size_t cap = cap_;
    while (cap < n) cap *= 2;
    T* heap = new T[cap];
    const std::size_t keep = size_;
    std::memcpy(static_cast<void*>(heap), data_, keep * sizeof(T));
    release();
    data_ = heap;
    cap_ = static_cast<std::uint32_t>(cap);
    size_ = static_cast<std::uint32_t>(keep);
  }

  /// Sets the size to `n` (n <= capacity()); the caller fills new slots.
  /// Used by in-place merges that know their final size up front.
  void resize_within_capacity(std::size_t n) {
    SPB_CHECK_MSG(n <= cap_, "resize_within_capacity(" << n << ") beyond "
                                                       << cap_);
    size_ = static_cast<std::uint32_t>(n);
  }

  void push_back(const T& v) {
    reserve(size_ + 1);
    data_[size_++] = v;
  }

  bool operator==(const SmallVec& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  T* inline_buf() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_buf() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void release() {
    if (!inline_storage()) delete[] data_;
    data_ = inline_buf();
    cap_ = N;
    size_ = 0;
  }

  void assign(const T* src, std::size_t n) {
    if (n > cap_) {
      // No contents worth preserving; replace the buffer outright.
      release();
      data_ = new T[n];
      cap_ = static_cast<std::uint32_t>(n);
    }
    std::memcpy(static_cast<void*>(data_), src, n * sizeof(T));
    size_ = static_cast<std::uint32_t>(n);
  }

  void steal(SmallVec& other) noexcept {
    if (other.inline_storage()) {
      data_ = inline_buf();
      cap_ = N;
      size_ = other.size_;
      std::memcpy(static_cast<void*>(data_), other.data_,
                  other.size_ * sizeof(T));
    } else {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_buf();
      other.cap_ = N;
    }
    other.size_ = 0;
  }

  T* data_ = inline_buf();
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace spb
