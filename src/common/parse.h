// Strict numeric parsing for user-facing inputs (CLI flags, fault specs,
// config strings).  The std:: conversions are traps for this: std::stoull
// silently wraps "-1" to 2^64-1, std::stod accepts "inf" and leading junk
// survives partial parses like "5x" unless every caller remembers the
// &used check, and out-of-range inputs ("1e999") surface as a bare
// exception type with no text.  These helpers reject all of that and say
// exactly what was wrong, so `drop=-1`, `lat=1e999` and `timeout=5x` fail
// with messages a user can act on.
#pragma once

#include <cstdint>
#include <string>

namespace spb {

/// Strictly parses a finite double.  Rejects empty values, trailing junk
/// ("5x"), out-of-range magnitudes ("1e999") and non-finite spellings
/// ("inf", "nan").  On failure returns false and fills `error` with the
/// reason.
bool try_parse_double(const std::string& text, double& out,
                      std::string& error);

/// Strictly parses an unsigned 64-bit integer.  Rejects empty values,
/// signs (so "-1" cannot wrap around), non-digit characters, trailing
/// junk and overflow.  On failure returns false and fills `error`.
bool try_parse_u64(const std::string& text, std::uint64_t& out,
                   std::string& error);

/// try_parse_u64 restricted to [0, max], for int-sized flags.
bool try_parse_int(const std::string& text, int& out, std::string& error,
                   int max = 1'000'000'000);

/// Throwing forms for callers without an error channel: CheckError whose
/// message names `what` (a key or flag) plus the reason.
double parse_double_or_throw(const std::string& what,
                             const std::string& text);
std::uint64_t parse_u64_or_throw(const std::string& what,
                                 const std::string& text);

}  // namespace spb
