#include "common/parse.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace spb {

bool try_parse_double(const std::string& text, double& out,
                      std::string& error) {
  if (text.empty()) {
    error = "empty value";
    return false;
  }
  double d = 0;
  std::size_t used = 0;
  try {
    d = std::stod(text, &used);
  } catch (const std::invalid_argument&) {
    error = "not a number";
    return false;
  } catch (const std::out_of_range&) {
    error = "out of range for a double";
    return false;
  }
  if (used != text.size()) {
    error = "trailing junk '" + text.substr(used) + "' after number";
    return false;
  }
  if (!std::isfinite(d)) {
    error = "not a finite number";
    return false;
  }
  out = d;
  return true;
}

bool try_parse_u64(const std::string& text, std::uint64_t& out,
                   std::string& error) {
  if (text.empty()) {
    error = "empty value";
    return false;
  }
  if (text[0] == '-') {
    error = "negative value not allowed";
    return false;
  }
  // No signs, no whitespace: digits only (std::stoull would skip leading
  // spaces and wrap "-1" to 2^64-1).
  for (const char c : text) {
    if (c < '0' || c > '9') {
      error = std::string("invalid character '") + c + "' in number";
      return false;
    }
  }
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used);
    return used == text.size();
  } catch (const std::out_of_range&) {
    error = "out of range for a 64-bit unsigned integer";
    return false;
  } catch (const std::invalid_argument&) {
    error = "not a number";
    return false;
  }
}

bool try_parse_int(const std::string& text, int& out, std::string& error,
                   int max) {
  std::uint64_t v = 0;
  if (!try_parse_u64(text, v, error)) return false;
  if (v > static_cast<std::uint64_t>(max)) {
    error = "value exceeds maximum " + std::to_string(max);
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

double parse_double_or_throw(const std::string& what,
                             const std::string& text) {
  double d = 0;
  std::string error;
  SPB_REQUIRE(try_parse_double(text, d, error),
              what << " '" << text << "': " << error);
  return d;
}

std::uint64_t parse_u64_or_throw(const std::string& what,
                                 const std::string& text) {
  std::uint64_t v = 0;
  std::string error;
  SPB_REQUIRE(try_parse_u64(text, v, error),
              what << " '" << text << "': " << error);
  return v;
}

}  // namespace spb
