#include "common/str.h"

#include <cstdio>

namespace spb {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kSuffix[] = {"", "K", "M", "G"};
  int unit = 0;
  std::uint64_t v = bytes;
  while (unit < 3 && v >= 1024 && v % 1024 == 0) {
    v /= 1024;
    ++unit;
  }
  return std::to_string(v) + kSuffix[unit];
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string signed_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace spb
