#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace spb {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SPB_REQUIRE(bound > 0, "next_below needs a positive bound");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SPB_REQUIRE(lo <= hi, "next_in needs lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::vector<std::int32_t> Rng::permutation(std::int32_t n) {
  SPB_REQUIRE(n >= 0, "permutation size must be non-negative");
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  shuffle(v);
  return v;
}

std::vector<std::int32_t> Rng::sample_without_replacement(std::int32_t n,
                                                          std::int32_t k) {
  SPB_REQUIRE(0 <= k && k <= n, "sample needs 0 <= k <= n");
  // Floyd's algorithm: k iterations, no O(n) scratch permutation.
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::int32_t>(next_below(
        static_cast<std::uint64_t>(j) + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace spb
