// Deterministic pseudo-random number generation.
//
// The T3D model needs a seeded random rank-to-node mapping, the Random
// source distribution needs seeded sampling, and property tests need
// reproducible fuzzing.  We use splitmix64 for seeding and xoshiro256** as
// the workhorse generator — both tiny, fast, and identical on every
// platform (std::mt19937 would also work, but its distributions are not
// portable across standard libraries, and reproducibility of the benchmark
// series matters here).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace spb {

/// splitmix64 step: used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire-style rejection (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fisher-Yates shuffle of an arbitrary vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of {0, 1, ..., n-1}.
  std::vector<std::int32_t> permutation(std::int32_t n);

  /// k distinct values sampled uniformly from {0, ..., n-1}, sorted.
  std::vector<std::int32_t> sample_without_replacement(std::int32_t n,
                                                       std::int32_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace spb
