// String formatting helpers for benchmark and example output: human-readable
// byte sizes ("4K", "16K"), fixed-precision numbers, joining, padding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spb {

/// "32", "512", "1K", "4K", "16K", "2M" — the paper labels message sizes in
/// this style.  Exact multiples of 1024 use the suffix form.
std::string human_bytes(std::uint64_t bytes);

/// Fixed-precision decimal rendering of a double ("7.31").
std::string fixed(double value, int decimals);

/// Percent rendering with sign ("+12.4%", "-6.5%").
std::string signed_percent(double fraction, int decimals);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left/right padding to a field width (no truncation).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace spb
