// Small integer helpers used throughout the algorithms: ceiling division,
// power-of-two tests, integer logs.  The paper's analysis distinguishes
// power-of-two source counts / machine dimensions from the general case, so
// these show up in almost every module.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace spb {

/// ceil(a / b) for non-negative a, positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// True iff x is a power of two (x >= 1).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// floor(log2 x) for x >= 1.
constexpr int ilog2_floor(std::int64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2 x) for x >= 1.  This is the iteration count of the recursive
/// halving used by Br_Lin on a segment of x processors.
constexpr int ilog2_ceil(std::int64_t x) {
  return ilog2_floor(x) + (is_pow2(x) ? 0 : 1);
}

/// Smallest power of two >= x (x >= 1).
constexpr std::int64_t next_pow2(std::int64_t x) {
  std::int64_t r = 1;
  while (r < x) r <<= 1;
  return r;
}

/// Integer square root: floor(sqrt(x)) for x >= 0.
constexpr std::int64_t isqrt(std::int64_t x) {
  std::int64_t r = 0;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r;
}

/// Smallest k with k*k >= x (side of the paper's Sq(s) square block).
constexpr std::int64_t ceil_sqrt(std::int64_t x) {
  std::int64_t r = isqrt(x);
  return r * r == x ? r : r + 1;
}

}  // namespace spb
