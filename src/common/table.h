// Minimal text-table renderer used by every bench binary to print the
// paper's figure series in aligned columns.  Numeric cells are right-
// aligned, text cells left-aligned; the first row is the header.
#pragma once

#include <string>
#include <vector>

namespace spb {

class TextTable {
 public:
  /// Starts a new row; subsequent cell() calls append to it.
  TextTable& row();

  /// Appends a text cell (left-aligned).
  TextTable& cell(const std::string& text);

  /// Appends a numeric cell (right-aligned), fixed decimals.
  TextTable& num(double value, int decimals = 2);

  /// Appends an integer cell (right-aligned).
  TextTable& num(std::int64_t value);

  /// Renders the table with a separator line under the header.
  std::string render() const;

 private:
  struct Cell {
    std::string text;
    bool right_align = false;
  };
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace spb
