#include "common/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/str.h"

namespace spb {

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& text) {
  SPB_REQUIRE(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back({text, false});
  return *this;
}

TextTable& TextTable::num(double value, int decimals) {
  SPB_REQUIRE(!rows_.empty(), "call row() before num()");
  rows_.back().push_back({fixed(value, decimals), true});
  return *this;
}

TextTable& TextTable::num(std::int64_t value) {
  SPB_REQUIRE(!rows_.empty(), "call row() before num()");
  rows_.back().push_back({std::to_string(value), true});
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].text.size());
  }
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c > 0) out += "  ";
      out += r[c].right_align ? pad_left(r[c].text, widths[c])
                              : pad_right(r[c].text, widths[c]);
    }
    out += '\n';
    if (i == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < r.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
      out += std::string(total, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace spb
