// Precondition / invariant checking in the spirit of the C++ Core
// Guidelines' Expects()/Ensures().  Violations throw spb::CheckError with a
// formatted description of the failing expression and location; benches and
// examples report them instead of corrupting results silently.
//
// SPB_CHECK   — always-on invariant check (cheap; used on hot-ish paths too,
//               the simulator is far from instruction-bound).
// SPB_REQUIRE — precondition check on public API entry points, with a
//               user-facing message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spb {

/// Thrown when a SPB_CHECK / SPB_REQUIRE condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace spb

#define SPB_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::spb::detail::check_failed("SPB_CHECK", #cond, __FILE__, __LINE__,   \
                                  "");                                      \
  } while (0)

#define SPB_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream spb_check_os_;                                     \
      spb_check_os_ << msg;                                                 \
      ::spb::detail::check_failed("SPB_CHECK", #cond, __FILE__, __LINE__,   \
                                  spb_check_os_.str());                     \
    }                                                                       \
  } while (0)

#define SPB_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream spb_check_os_;                                     \
      spb_check_os_ << msg;                                                 \
      ::spb::detail::check_failed("SPB_REQUIRE", #cond, __FILE__, __LINE__, \
                                  spb_check_os_.str());                     \
    }                                                                       \
  } while (0)
