// Deterministic conservative parallel discrete-event engine (PR 7,
// sub-window lookahead PR 10).
//
// The event space is partitioned into `shards` (one per machine region —
// see net/regions.h), each with its own EventQueue and clock.  Time
// advances in windows, but each shard gets its own window end: shard s may
// drain up to
//
//   end_s = min( min_{r != s}( eff_r + delay(r, s) ),
//                held_min_s + self_delay )
//
// where eff_r is the earliest time shard r could still initiate a
// cross-shard effect (its queue head, or the initiation time of a staged
// transfer the barrier is still holding back), delay(r, s) is the caller's
// minimum region-to-region effect latency (set_cross_delays; defaults to
// the uniform self_delay = window_us, which reproduces PR 7's global
// windows), and the second term bounds s by its own held transfers' echo
// effects.  While draining, a shard that stages its first cross-shard
// transfer of the window (note_stage) dynamically caps its own end at
// initiate + self_delay, since that transfer's barrier-time effects may
// land on the staging shard itself that soon.  A shard whose neighbours
// are idle therefore drains far past the old global horizon — in the
// single-busy-shard limit it runs windowless, like the serial loop.
//
// Within a window every shard drains its own queue independently — in
// (time, per-shard insertion) order, exactly like the serial Simulator —
// and may only schedule follow-up events into *itself*.  Cross-shard
// effects are deferred: the caller stages them during the window (telling
// the engine via note_stage) and applies them in the single-threaded
// `barrier` callback that runs between windows, in a canonical order of
// its own choosing.  Because shards now drain to different horizons, the
// barrier must only apply transfers initiated before safe_horizon() — the
// minimum shard frontier — and hold the rest for a later barrier (the
// engine tracks held initiations itself from the note_stage stream).  The
// at() assertion is per-shard: a barrier push onto shard s must land at or
// after frontier(s), the furthest point s has drained to.
//
// Soundness of the sub-windows (the full argument is DESIGN.md §12): the
// caller promises that a transfer initiated at time I on shard r lands on
// shard s != r no earlier than I + delay(r, s) and echoes onto r itself no
// earlier than I + self_delay.  set_cross_delays closes the matrix under
// min-plus composition (delay(u,s) <= delay(u,r) + delay(r,s)), so the
// bound holds along any chain of effects, and every future initiation is
// itself bounded below by some eff_r the planner already accounted for.
//
// Determinism: shard count, per-shard window ends, and the barrier's
// canonical order are all pure functions of queue/staging state — never of
// the worker-thread count — and each shard's queue is only ever touched by
// one thread at a time (its drainer inside a window, the barrier between
// windows).  Results are therefore byte-identical for every `threads >=
// 1`; threads only changes wall-clock time.  Scheduling is
// occupancy-driven: each window builds the list of shards that actually
// have work, and only min(threads - 1, busy - 1, cores - 1) workers are
// woken for it (a window with one busy shard drains inline with no
// locking), so oversubscribed thread counts degrade to near-serial cost
// instead of paying wakeups for idle shards.  `threads == 1` never creates
// a std::thread at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace spb::sim {

/// Per-shard slice of the engine's run statistics.
struct ShardStats {
  std::uint64_t events = 0;
  std::size_t peak_queue_depth = 0;
  /// Windows in which this shard executed at least one event.
  std::uint64_t busy_windows = 0;
  /// Windows in which it executed nothing; busy + idle == total windows.
  std::uint64_t idle_windows = 0;
};

/// Whole-run statistics; all fields are thread-count independent.
struct EngineStats {
  std::uint64_t windows = 0;
  /// Shard-window slots that executed nothing: the sum of the per-shard
  /// idle counts.  The window-efficiency measure the perf harness exports.
  std::uint64_t idle_shard_windows = 0;
  /// Cross-shard transfers staged over the run (note_stage calls).
  std::uint64_t staged_xfers = 0;
  /// Barrier occurrences of a staged transfer being held past safe_horizon
  /// (each transfer counts once per barrier that holds it).
  std::uint64_t held_xfers = 0;
  std::vector<ShardStats> shards;
};

class ShardedEngine {
 public:
  /// `shards` >= 1 partitions the event space; `window_us` > 0 is the
  /// self-lookahead (the minimum delay from initiating a cross-shard
  /// transfer to any of its effects landing back on the initiating shard);
  /// `threads` caps the drain workers (clamped to [1, shards]; only
  /// threads - 1 std::threads are ever created — the caller's thread
  /// drains too).
  ShardedEngine(int shards, double window_us, int threads);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  double window_us() const { return window_; }
  /// Effective worker count after clamping.
  int threads() const { return threads_; }

  /// Installs the shards x shards minimum cross-shard effect latency
  /// matrix (row-major; delays[r * shards + s] bounds effects from r
  /// landing on s, r != s; diagonal entries are ignored — the self bound
  /// is window_us).  Every off-diagonal entry must be >= window_us.  The
  /// engine closes the matrix under min-plus composition so the bound
  /// holds transitively along effect chains.  Must be called before run();
  /// without it every delay is window_us (PR 7's uniform windows).
  void set_cross_delays(const std::vector<double>& delays);

  /// Minimum / maximum off-diagonal entry of the closed delay matrix (the
  /// uniform window_us when set_cross_delays was never called).
  double min_cross_delay_us() const;
  double max_cross_delay_us() const;

  /// Clock of the shard this thread is currently draining.  Only valid
  /// inside an event callback (current_shard() >= 0).
  SimTime now() const;

  /// Index of the shard currently draining on this thread, or -1 outside
  /// event callbacks (before run(), or in barrier context).
  int current_shard() const;

  /// Records that the event currently executing (at `initiate` == now())
  /// staged a cross-shard transfer for the next barrier.  Caps the
  /// executing shard's window at initiate + window_us (the earliest the
  /// transfer's effects can echo back onto this shard) and feeds the
  /// held-transfer accounting that safe_horizon() depends on.  Drain
  /// context only.
  void note_stage(SimTime initiate);

  /// Earliest time any shard could still initiate a cross-shard transfer:
  /// the barrier may only apply staged transfers with initiate <
  /// safe_horizon() and must hold the rest (the engine assumes it does —
  /// the two sides use the same cutoff, keeping the held-floor bookkeeping
  /// in sync).  Valid inside the barrier callback.
  SimTime safe_horizon() const { return safe_horizon_; }

  /// How far shard s has drained: every event executed on s so far was
  /// earlier than this, so barrier pushes onto s must land at or after it.
  SimTime frontier(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].frontier;
  }

  /// Schedules fn at absolute time t on `shard`.  Inside an event
  /// callback only the executing shard may be targeted (cross-shard
  /// traffic goes through the barrier); in barrier or pre-run context any
  /// shard may be targeted, but t must not precede that shard's frontier.
  void at(SimTime t, int shard, EventFn fn);

  using BarrierFn = std::function<void()>;

  /// Runs windows until every shard queue is empty and no staged transfer
  /// is held, invoking `barrier` single-threadedly after each window (with
  /// all workers quiescent).  One-shot.  Returns the maximum shard clock.
  /// An exception thrown by an event aborts the run after its window
  /// completes; with several failing shards the lowest shard index wins
  /// (deterministic).
  SimTime run(const BarrierFn& barrier);

  /// Total events executed across shards.
  std::uint64_t events_executed() const;
  /// Maximum per-shard queue high-water mark.
  std::size_t peak_queue_depth() const;
  EngineStats stats() const;

 private:
  /// Padded to a cache line so concurrent drainers never false-share; the
  /// drain-hot fields (queue, now, limit) sit at the front.
  struct alignas(64) Shard {
    EventQueue queue;
    SimTime now = 0;
    /// This window's (dynamically shrinking) drain end.
    SimTime limit = 0;
    /// Max of all past limits; the per-shard barrier-push floor.
    SimTime frontier = 0;
    std::uint64_t executed = 0;
    std::uint64_t busy_windows = 0;
    std::uint64_t idle_windows = 0;
    std::exception_ptr error;
    /// Initiation times of staged transfers not yet consumed by a barrier
    /// (nondecreasing; the front is this shard's held floor).  Only the
    /// owning drainer appends; only the single-threaded planner prunes.
    std::vector<SimTime> staged;
    std::size_t staged_cursor = 0;
  };

  double delay(int r, int s) const {
    return cross_delays_[static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(shard_count()) +
                         static_cast<std::size_t>(s)];
  }
  SimTime held_floor(const Shard& s) const {
    return s.staged_cursor < s.staged.size() ? s.staged[s.staged_cursor]
                                             : kNoPending;
  }

  /// Plans the next window: per-shard limits, the busy list, stats.
  /// Returns false when the run is complete.
  bool plan_window();
  void drain(int index);
  void claim_and_drain();
  void run_window();
  void worker_loop();
  void stop_pool();

  static constexpr SimTime kNoPending =
      std::numeric_limits<SimTime>::infinity();

  std::vector<Shard> shards_;
  double window_;
  int threads_;
  /// Worker-engagement cap from the host's core count; purely a wall-clock
  /// policy knob (never affects results).
  int hardware_threads_;
  bool ran_ = false;
  SimTime safe_horizon_ = 0;
  /// min-plus-closed cross-shard delay matrix (row-major).
  std::vector<double> cross_delays_;
  /// Shards with drainable work this window, claimed via next_busy_.
  std::vector<int> busy_list_;
  /// Per-window scratch: shards whose eff is finite (they alone constrain
  /// other shards' window ends).
  std::vector<int> active_list_;
  /// Per-window scratch: each shard's earliest possible next initiation.
  std::vector<SimTime> eff_;
  EngineStats stats_;

  // Worker pool (only populated when threads_ > 1).  Workers sleep between
  // windows; epoch_ bumps wake them.  A waking worker registers in
  // active_ *under the mutex* before claiming shards and deregisters when
  // its claim loop ends, so the coordinator's wait for active_ == 0 (after
  // finishing its own claims) proves every drain of the window completed —
  // a late-waking worker either joins the current window consistently or
  // finds all shards claimed and goes back to sleep.  The mutex hand-offs
  // double as the memory fences that publish queue contents between the
  // barrier and the drainers.  Windows that engage no workers (one busy
  // shard, or a single-core host) skip the mutex entirely and drain
  // inline.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  bool stop_ = false;
  /// Claim cursor into busy_list_; on its own cache line so drainers'
  /// fetch_adds never collide with the coordination fields above.
  alignas(64) std::atomic<int> next_busy_{0};
};

}  // namespace spb::sim
