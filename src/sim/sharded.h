// Deterministic conservative parallel discrete-event engine (PR 7).
//
// The event space is partitioned into `shards` (one per machine region —
// see net/regions.h), each with its own EventQueue and clock.  Time
// advances in bounded windows: every window starts at the earliest pending
// timestamp T across all shards and spans [T, T + W), where W is the
// minimum cross-shard lookahead of the model driving the engine
// (mp::Runtime::lookahead_us derives it from the software-overhead and
// network-latency floors).  Within a window every shard drains its own
// queue independently — in (time, per-shard insertion) order, exactly like
// the serial Simulator — and may only schedule follow-up events into
// *itself*.  Cross-shard effects are deferred: the caller stages them
// during the window and applies them in the single-threaded `barrier`
// callback that runs between windows, in a canonical order of its own
// choosing.  The lookahead contract makes that sound: anything the barrier
// schedules must land at or after the next window (`t >= horizon`), which
// at() asserts.
//
// Determinism: shard count, window width, and the barrier's canonical
// order are all independent of the worker-thread count, and each shard's
// queue is only ever touched by one thread at a time (its drainer inside a
// window, the barrier between windows).  Results are therefore
// byte-identical for every `threads >= 1`; threads only changes wall-clock
// time.  `threads == 1` never creates a std::thread at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace spb::sim {

/// Per-shard slice of the engine's run statistics.
struct ShardStats {
  std::uint64_t events = 0;
  std::size_t peak_queue_depth = 0;
  /// Windows in which this shard executed at least one event.
  std::uint64_t busy_windows = 0;
};

/// Whole-run statistics; all fields are thread-count independent.
struct EngineStats {
  std::uint64_t windows = 0;
  /// Shard-window slots that executed nothing: shards * windows minus the
  /// busy slots.  The window-efficiency measure the perf harness exports.
  std::uint64_t idle_shard_windows = 0;
  std::vector<ShardStats> shards;
};

class ShardedEngine {
 public:
  /// `shards` >= 1 partitions the event space; `window_us` > 0 is the
  /// conservative lookahead; `threads` caps the drain workers (clamped to
  /// [1, shards]; only threads - 1 std::threads are ever created — the
  /// caller's thread drains too).
  ShardedEngine(int shards, double window_us, int threads);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  double window_us() const { return window_; }
  /// Effective worker count after clamping.
  int threads() const { return threads_; }

  /// Clock of the shard this thread is currently draining.  Only valid
  /// inside an event callback (current_shard() >= 0).
  SimTime now() const;

  /// Index of the shard currently draining on this thread, or -1 outside
  /// event callbacks (before run(), or in barrier context).
  int current_shard() const;

  /// Schedules fn at absolute time t on `shard`.  Inside an event
  /// callback only the executing shard may be targeted (cross-shard
  /// traffic goes through the barrier); in barrier or pre-run context any
  /// shard may be targeted, but t must not precede the lookahead horizon.
  void at(SimTime t, int shard, EventFn fn);

  using BarrierFn = std::function<void()>;

  /// Runs windows until every shard queue is empty, invoking `barrier`
  /// single-threadedly after each window (with all workers quiescent).
  /// One-shot.  Returns the maximum shard clock.  An exception thrown by
  /// an event aborts the run after its window completes; with several
  /// failing shards the lowest shard index wins (deterministic).
  SimTime run(const BarrierFn& barrier);

  /// Total events executed across shards.
  std::uint64_t events_executed() const;
  /// Maximum per-shard queue high-water mark.
  std::size_t peak_queue_depth() const;
  EngineStats stats() const;

 private:
  /// Padded to a cache line so concurrent drainers never false-share.
  struct alignas(64) Shard {
    EventQueue queue;
    SimTime now = 0;
    std::uint64_t executed = 0;
    std::uint64_t busy_windows = 0;
    std::exception_ptr error;
  };

  void drain(int index, SimTime end);
  void claim_and_drain(SimTime end);
  void run_window(SimTime end);
  void worker_loop();
  void stop_pool();

  std::vector<Shard> shards_;
  double window_;
  int threads_;
  bool ran_ = false;
  /// Barrier pushes must land at or after this (next window's floor).
  SimTime horizon_ = 0;
  EngineStats stats_;

  // Worker pool (only populated when threads_ > 1).  Workers sleep between
  // windows; epoch_ bumps wake them.  A waking worker registers in
  // active_ *under the mutex* before claiming shards and deregisters when
  // its claim loop ends, so the coordinator's wait for active_ == 0 (after
  // finishing its own claims) proves every drain of the window completed —
  // a late-waking worker either joins the current window consistently or
  // finds all shards claimed and goes back to sleep.  The mutex hand-offs
  // double as the memory fences that publish queue contents between the
  // barrier and the drainers.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  SimTime cur_end_ = 0;
  bool stop_ = false;
  std::atomic<int> next_shard_{0};
};

}  // namespace spb::sim
