#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace spb::sim {

void Simulator::at(SimTime t, EventFn fn) {
  SPB_REQUIRE(t >= now_, "cannot schedule an event in the past (t="
                             << t << ", now=" << now_ << ")");
  queue_.push(t, std::move(fn));
}

void Simulator::after(SimTime delay, EventFn fn) {
  SPB_REQUIRE(delay >= 0, "negative delay " << delay);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::step() {
  Event e = queue_.pop();
  SPB_CHECK(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
}

SimTime Simulator::run() {
  while (!queue_.empty()) step();
  return now_;
}

bool Simulator::run_bounded(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && !queue_.empty(); ++i) step();
  return queue_.empty();
}

}  // namespace spb::sim
