#include "sim/task.h"

namespace spb::sim {

void Task::start(std::function<void()> on_done) {
  SPB_REQUIRE(valid(), "start() on an empty Task");
  SPB_REQUIRE(!h_.promise().finished, "start() on a finished Task");
  h_.promise().on_done = std::move(on_done);
  h_.resume();
}

void Task::rethrow_if_failed() const {
  if (h_ && h_.promise().exception)
    std::rethrow_exception(h_.promise().exception);
}

}  // namespace spb::sim
