// Time-ordered event queue.  Events with equal timestamps are dispatched in
// insertion order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit deterministic — a property the
// tests assert and the benchmark harness relies on.
//
// Performance shape (this is the simulator's innermost loop — several
// events per simulated message, hundreds of thousands per sweep):
//  * EventFn stores small trivially-copyable callables inline — coroutine
//    handles, `[&runtime, slot]` captures — so the hot path never touches
//    the heap.  Larger or non-trivially-copyable callables (std::function,
//    test lambdas capturing containers) transparently spill to the heap.
//  * The heap is a flat 4-ary array heap over 16-byte (time, seq+slot)
//    keys; the callables themselves sit still in a slot pool.  Sifting
//    moves small trivially-copyable keys, and a node's four children
//    span a single cache line — shallower and far denser in cache than
//    a binary heap of full events.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace spb::sim {

/// A move-only callable with small-buffer storage tuned for event
/// callbacks.  Trivially copyable callables up to kInlineBytes live in the
/// event itself; anything else is boxed on the heap.
class EventFn {
 public:
  /// Inline capacity: fits a coroutine handle plus a couple of words,
  /// which covers every callback the runtime schedules.
  static constexpr std::size_t kInlineBytes = 32;

  EventFn() = default;
  /*implicit*/ EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-*)

  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_v<std::decay_t<F>&> &&
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  /*implicit*/ EventFn(F&& f) {  // NOLINT(google-explicit-*)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      cleanup_ = nullptr;
    } else {
      auto* boxed = new D(std::forward<F>(f));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      invoke_ = [](void* p) {
        D* d;
        std::memcpy(&d, p, sizeof(d));
        (*d)();
      };
      cleanup_ = [](void* p) {
        D* d;
        std::memcpy(&d, p, sizeof(d));
        delete d;
      };
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { destroy(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void destroy() {
    if (cleanup_ != nullptr) cleanup_(storage_);
    invoke_ = nullptr;
    cleanup_ = nullptr;
  }

  void steal(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    cleanup_ = other.cleanup_;
    // Inline callables are trivially copyable by construction; heap-backed
    // ones store a raw pointer here.  Either way a byte copy relocates.
    std::memcpy(storage_, other.storage_, kInlineBytes);
    other.invoke_ = nullptr;
    other.cleanup_ = nullptr;
  }

  using Invoke = void (*)(void*);
  using Cleanup = void (*)(void*);
  Invoke invoke_ = nullptr;
  Cleanup cleanup_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

/// A scheduled callback.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  EventFn fn;
};

class EventQueue {
 public:
  /// Enqueues fn at absolute time t.
  void push(SimTime t, EventFn fn);

  /// Removes and returns the earliest event (FIFO among equal times).
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event without popping it (queue
  /// must be non-empty).  The sharded engine uses this to find each
  /// window's start and to stop a shard's drain at the window end.
  SimTime top_time() const { return std::bit_cast<SimTime>(heap_[0].tkey); }

  /// Total number of events ever pushed.
  std::uint64_t pushed() const { return next_seq_; }

  /// High-water mark of the queue depth (perf-harness metric: a proxy for
  /// how much concurrency the simulated algorithm exposes).
  std::size_t peak_size() const { return peak_; }

 private:
  /// Heap entry, 16 bytes.  `tkey` is the timestamp's bit pattern: for
  /// non-negative doubles (simulated time never goes negative — push
  /// enforces it) unsigned bit-pattern order equals numeric order, which
  /// lets earlier() compare integers without float-compare branches.
  /// `seq_slot` packs the sequence number into the high 40 bits and the
  /// parked callable's slot into the low 24; sequence bits dominate the
  /// compare, so ordering on (tkey, seq_slot) is ordering on (time, seq).
  /// Four children span exactly one cache line.
  struct Key {
    std::uint64_t tkey;
    std::uint64_t seq_slot;
  };

  static constexpr std::uint64_t kSlotBits = 24;  // 16M concurrent events
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  /// Branchless on purpose: equal timestamps (resolved by seq) are the
  /// common case in lock-step collectives and would mispredict a
  /// short-circuit form badly.
  static bool earlier(const Key& a, const Key& b) {
    return (a.tkey < b.tkey) |
           ((a.tkey == b.tkey) & (a.seq_slot < b.seq_slot));
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Key> heap_;        // flat 4-ary min-heap on (time, seq)
  std::vector<EventFn> slots_;   // parked callables, indexed by slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace spb::sim
