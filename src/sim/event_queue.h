// Time-ordered event queue.  Events with equal timestamps are dispatched in
// insertion order (a monotonically increasing sequence number breaks ties),
// which makes every simulation bit-for-bit deterministic — a property the
// tests assert and the benchmark harness relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace spb::sim {

/// A scheduled callback.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
};

class EventQueue {
 public:
  /// Enqueues fn at absolute time t.
  void push(SimTime t, std::function<void()> fn);

  /// Removes and returns the earliest event (FIFO among equal times).
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Total number of events ever pushed.
  std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace spb::sim
