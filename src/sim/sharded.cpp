#include "sim/sharded.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace spb::sim {

namespace {

/// Which engine/shard this thread is currently draining.  Thread-local by
/// design: each drain worker needs its own cursor, and the serial Simulator
/// path never touches it.
struct RunningShard {
  const ShardedEngine* engine = nullptr;
  SimTime now = 0;
  int index = -1;
};
// Each worker owns its own copy, so there is no shared mutable state here.
// NOLINTNEXTLINE(spb-mutable-global): per-thread drain cursor by design
thread_local RunningShard tls_running;

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::infinity();

}  // namespace

ShardedEngine::ShardedEngine(int shards, double window_us, int threads)
    : shards_(static_cast<std::size_t>(std::max(shards, 1))),
      window_(window_us),
      threads_(std::clamp(threads, 1, std::max(shards, 1))) {
  SPB_REQUIRE(shards >= 1, "ShardedEngine needs at least one shard");
  SPB_REQUIRE(window_us > 0,
              "ShardedEngine needs a positive lookahead window (got "
                  << window_us << " us); zero lookahead means serial");
}

ShardedEngine::~ShardedEngine() { stop_pool(); }

SimTime ShardedEngine::now() const {
  SPB_CHECK_MSG(tls_running.engine == this && tls_running.index >= 0,
                "ShardedEngine::now() outside an event callback");
  return tls_running.now;
}

int ShardedEngine::current_shard() const {
  return tls_running.engine == this ? tls_running.index : -1;
}

void ShardedEngine::at(SimTime t, int shard, EventFn fn) {
  SPB_REQUIRE(shard >= 0 && shard < shard_count(),
              "shard " << shard << " out of range");
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (tls_running.engine == this && tls_running.index >= 0) {
    // Drain context: a shard may only extend its own timeline.
    SPB_REQUIRE(tls_running.index == shard,
                "cross-shard push (from shard "
                    << tls_running.index << " to " << shard
                    << ") inside a window — cross-shard events must be "
                       "staged and applied at the barrier");
    SPB_REQUIRE(t >= tls_running.now, "cannot schedule an event in the past "
                                          << "(t=" << t << ", now="
                                          << tls_running.now << ")");
  } else {
    // Barrier (or pre-run) context: any shard, but never inside the window
    // that just ran — that is exactly the conservative-lookahead contract.
    SPB_REQUIRE(t >= horizon_,
                "barrier push at t=" << t << " violates the lookahead "
                                     << "horizon " << horizon_);
  }
  s.queue.push(t, std::move(fn));
}

void ShardedEngine::drain(int index, SimTime end) {
  Shard& s = shards_[static_cast<std::size_t>(index)];
  tls_running = RunningShard{this, s.now, index};
  std::uint64_t n = 0;
  try {
    while (!s.queue.empty() && s.queue.top_time() < end) {
      Event e = s.queue.pop();
      s.now = e.time;
      tls_running.now = e.time;
      ++n;
      e.fn();
    }
  } catch (...) {
    if (s.error == nullptr) s.error = std::current_exception();
  }
  tls_running = RunningShard{};
  s.executed += n;
  if (n > 0) ++s.busy_windows;
}

void ShardedEngine::claim_and_drain(SimTime end) {
  for (;;) {
    const int idx = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= shard_count()) return;
    drain(idx, end);
  }
}

void ShardedEngine::run_window(SimTime end) {
  if (pool_.empty()) {
    // Inline mode: drain shards in index order on this thread.  Same
    // results by construction — shard drains are mutually independent.
    for (int i = 0; i < shard_count(); ++i) drain(i, end);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    cur_end_ = end;
    next_shard_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  cv_start_.notify_all();
  claim_and_drain(end);
  // Every shard has been claimed (the counter passed shard_count()), and a
  // claimant only leaves its loop after finishing the drains it claimed —
  // so active_ == 0 here means the window is fully drained.
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return active_ == 0; });
}

void ShardedEngine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime end = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      end = cur_end_;
      ++active_;
    }
    claim_and_drain(end);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (active_ > 0) continue;
    }
    cv_done_.notify_all();
  }
}

void ShardedEngine::stop_pool() {
  if (pool_.empty()) return;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

SimTime ShardedEngine::run(const BarrierFn& barrier) {
  SPB_REQUIRE(!ran_, "ShardedEngine::run() is one-shot");
  ran_ = true;
  if (threads_ > 1) {
    pool_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i)
      pool_.emplace_back([this] { worker_loop(); });
  }
  for (;;) {
    SimTime t = kNoEvent;
    for (const Shard& s : shards_)
      if (!s.queue.empty()) t = std::min(t, s.queue.top_time());
    if (t == kNoEvent) break;
    const SimTime end = t + window_;
    ++stats_.windows;
    run_window(end);
    for (const Shard& s : shards_) {
      if (s.error == nullptr) continue;
      stop_pool();
      std::rethrow_exception(s.error);
    }
    // Everything the barrier schedules must land in a later window.
    horizon_ = end;
    if (barrier) barrier();
  }
  stop_pool();
  SimTime final_time = 0;
  for (const Shard& s : shards_) final_time = std::max(final_time, s.now);
  return final_time;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.executed;
  return total;
}

std::size_t ShardedEngine::peak_queue_depth() const {
  std::size_t peak = 0;
  for (const Shard& s : shards_) peak = std::max(peak, s.queue.peak_size());
  return peak;
}

EngineStats ShardedEngine::stats() const {
  EngineStats out;
  out.windows = stats_.windows;
  std::uint64_t busy = 0;
  out.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    out.shards.push_back(ShardStats{s.executed, s.queue.peak_size(),
                                    s.busy_windows});
    busy += s.busy_windows;
  }
  out.idle_shard_windows =
      stats_.windows * static_cast<std::uint64_t>(shards_.size()) - busy;
  return out;
}

}  // namespace spb::sim
