#include "sim/sharded.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace spb::sim {

namespace {

/// Which engine/shard this thread is currently draining.  Thread-local by
/// design: each drain worker needs its own cursor, and the serial Simulator
/// path never touches it.
struct RunningShard {
  ShardedEngine* engine = nullptr;
  SimTime now = 0;
  int index = -1;
};
// Each worker owns its own copy, so there is no shared mutable state here.
// NOLINTNEXTLINE(spb-mutable-global): per-thread drain cursor by design
thread_local RunningShard tls_running;

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::infinity();

}  // namespace

ShardedEngine::ShardedEngine(int shards, double window_us, int threads)
    : shards_(static_cast<std::size_t>(std::max(shards, 1))),
      window_(window_us),
      threads_(std::clamp(threads, 1, std::max(shards, 1))),
      hardware_threads_(
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()))) {
  SPB_REQUIRE(shards >= 1, "ShardedEngine needs at least one shard");
  SPB_REQUIRE(window_us > 0,
              "ShardedEngine needs a positive lookahead window (got "
                  << window_us << " us); zero lookahead means serial");
  // Default delay matrix: the uniform self-lookahead — PR 7's global
  // windows — until set_cross_delays() widens the off-diagonal.
  cross_delays_.assign(shards_.size() * shards_.size(), window_);
  busy_list_.reserve(shards_.size());
  active_list_.reserve(shards_.size());
  eff_.assign(shards_.size(), 0);
}

ShardedEngine::~ShardedEngine() { stop_pool(); }

void ShardedEngine::set_cross_delays(const std::vector<double>& delays) {
  SPB_REQUIRE(!ran_, "set_cross_delays() after run()");
  const auto k = shards_.size();
  SPB_REQUIRE(delays.size() == k * k,
              "delay matrix must be shards^2 = " << k * k << " entries (got "
                                                 << delays.size() << ")");
  // Validate before touching cross_delays_: a throw must leave the engine
  // on its previous (consistent) matrix.
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t s = 0; s < k; ++s) {
      if (r == s) continue;
      SPB_REQUIRE(delays[r * k + s] >= window_,
                  "cross delay (" << r << ", " << s << ") = "
                                  << delays[r * k + s]
                                  << " us is below the self lookahead "
                                  << window_ << " us");
    }
  }
  cross_delays_ = delays;
  for (std::size_t r = 0; r < k; ++r) cross_delays_[r * k + r] = window_;
  // Min-plus closure: effects can chain through intermediate shards (r
  // sends to u, whose reaction sends to s), so the planning bound for
  // (r, s) must not exceed any path sum.  Every edge is >= window_ > 0,
  // so closed entries stay >= window_ and the Floyd-Warshall pass
  // terminates with a true shortest-path matrix over <= 16 shards.
  for (std::size_t via = 0; via < k; ++via)
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t s = 0; s < k; ++s)
        if (r != s)
          cross_delays_[r * k + s] =
              std::min(cross_delays_[r * k + s],
                       cross_delays_[r * k + via] + cross_delays_[via * k + s]);
}

double ShardedEngine::min_cross_delay_us() const {
  if (shard_count() < 2) return window_;
  double m = kNoEvent;
  for (int r = 0; r < shard_count(); ++r)
    for (int s = 0; s < shard_count(); ++s)
      if (r != s) m = std::min(m, delay(r, s));
  return m;
}

double ShardedEngine::max_cross_delay_us() const {
  if (shard_count() < 2) return window_;
  double m = 0;
  for (int r = 0; r < shard_count(); ++r)
    for (int s = 0; s < shard_count(); ++s)
      if (r != s) m = std::max(m, delay(r, s));
  return m;
}

SimTime ShardedEngine::now() const {
  SPB_CHECK_MSG(tls_running.engine == this && tls_running.index >= 0,
                "ShardedEngine::now() outside an event callback");
  return tls_running.now;
}

int ShardedEngine::current_shard() const {
  return tls_running.engine == this ? tls_running.index : -1;
}

void ShardedEngine::note_stage(SimTime initiate) {
  SPB_CHECK_MSG(tls_running.engine == this && tls_running.index >= 0,
                "ShardedEngine::note_stage() outside an event callback");
  SPB_REQUIRE(initiate >= tls_running.now,
              "stage initiated in the past (initiate=" << initiate << ", now="
                                                       << tls_running.now
                                                       << ")");
  Shard& s = shards_[static_cast<std::size_t>(tls_running.index)];
  // The transfer's effects may echo back onto this shard as soon as
  // initiate + window_; the drain loop re-reads limit, so the cap takes
  // effect immediately.  Drains are time-ordered, so everything already
  // executed this window is <= initiate and stays sound.
  s.limit = std::min(s.limit, initiate + window_);
  s.staged.push_back(initiate);
  ++stats_.staged_xfers;
}

void ShardedEngine::at(SimTime t, int shard, EventFn fn) {
  SPB_REQUIRE(shard >= 0 && shard < shard_count(),
              "shard " << shard << " out of range");
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (tls_running.engine == this && tls_running.index >= 0) {
    // Drain context: a shard may only extend its own timeline.
    SPB_REQUIRE(tls_running.index == shard,
                "cross-shard push (from shard "
                    << tls_running.index << " to " << shard
                    << ") inside a window — cross-shard events must be "
                       "staged and applied at the barrier");
    SPB_REQUIRE(t >= tls_running.now, "cannot schedule an event in the past "
                                          << "(t=" << t << ", now="
                                          << tls_running.now << ")");
  } else {
    // Barrier (or pre-run) context: any shard, but never inside the span
    // that shard already drained — that is exactly the conservative
    // sub-window contract.
    SPB_REQUIRE(t >= s.frontier,
                "barrier push at t=" << t << " violates shard " << shard
                                     << "'s frontier " << s.frontier);
  }
  s.queue.push(t, std::move(fn));
}

bool ShardedEngine::plan_window() {
  // eff_r: the earliest time shard r could still initiate a cross-shard
  // effect — its queue head or the floor of its held (staged but not yet
  // applied) transfers.  Everything below is a pure function of queue and
  // staging state, so identical for every worker count.
  const int k = shard_count();
  SimTime min_held = kNoEvent;
  // Only shards with a finite eff (pending events or held transfers) can
  // constrain anyone; collecting them first turns the O(k^2) bound scan
  // into O(k * active) — most windows have a handful of active shards.
  active_list_.clear();
  for (int r = 0; r < k; ++r) {
    Shard& s = shards_[static_cast<std::size_t>(r)];
    const SimTime top = s.queue.empty() ? kNoEvent : s.queue.top_time();
    const SimTime held = held_floor(s);
    eff_[static_cast<std::size_t>(r)] = std::min(top, held);
    min_held = std::min(min_held, held);
    if (top != kNoEvent || held != kNoEvent) active_list_.push_back(r);
  }
  if (active_list_.empty()) return false;

  busy_list_.clear();
  ++stats_.windows;
  SimTime horizon = kNoEvent;
  for (int s = 0; s < k; ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    SimTime end = held_floor(sh) + window_;
    for (const int r : active_list_) {
      if (r == s) continue;
      end = std::min(end, eff_[static_cast<std::size_t>(r)] + delay(r, s));
    }
    sh.limit = end;
    horizon = std::min(horizon, end);
    if (!sh.queue.empty() && sh.queue.top_time() < end) {
      busy_list_.push_back(s);
      ++sh.busy_windows;
    } else {
      ++sh.idle_windows;
    }
  }
  // A window always makes progress: either some shard's head is below its
  // end (it drains >= 1 event), or every end exceeds every head — which
  // forces the global minimum eff to be a held transfer's floor, and that
  // transfer is consumed by this barrier because safe_horizon lands at
  // least one cross-delay past it.
  SPB_CHECK_MSG(!busy_list_.empty() || horizon > min_held,
                "sub-window plan made no progress");
  return true;
}

void ShardedEngine::drain(int index) {
  Shard& s = shards_[static_cast<std::size_t>(index)];
  tls_running = RunningShard{this, s.now, index};
  std::uint64_t n = 0;
  try {
    // s.limit may shrink mid-drain (note_stage); re-read it every event.
    while (!s.queue.empty() && s.queue.top_time() < s.limit) {
      Event e = s.queue.pop();
      s.now = e.time;
      tls_running.now = e.time;
      ++n;
      e.fn();
    }
  } catch (...) {
    if (s.error == nullptr) s.error = std::current_exception();
  }
  tls_running = RunningShard{};
  s.executed += n;
}

void ShardedEngine::claim_and_drain() {
  const int busy = static_cast<int>(busy_list_.size());
  for (;;) {
    const int i = next_busy_.fetch_add(1, std::memory_order_relaxed);
    if (i >= busy) return;
    drain(busy_list_[static_cast<std::size_t>(i)]);
  }
}

void ShardedEngine::run_window() {
  const int busy = static_cast<int>(busy_list_.size());
  if (busy == 0) return;
  // Engagement is occupancy-driven: never more workers than there are
  // other busy shards, never more than the host has spare cores.  Purely a
  // wall-clock policy — drains are mutually independent, so who drains
  // what cannot change results.
  const int engage =
      std::min({static_cast<int>(pool_.size()), busy - 1,
                hardware_threads_ - 1});
  if (engage <= 0) {
    // Inline mode: drain the busy shards in index order on this thread.
    for (int i = 0; i < busy; ++i)
      drain(busy_list_[static_cast<std::size_t>(i)]);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    next_busy_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  for (int i = 0; i < engage; ++i) cv_start_.notify_one();
  claim_and_drain();
  // Every busy shard has been claimed (the counter passed busy), and a
  // claimant only leaves its loop after finishing the drains it claimed —
  // so active_ == 0 here means the window is fully drained.
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return active_ == 0; });
}

void ShardedEngine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      ++active_;
    }
    claim_and_drain();
    {
      const std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (active_ > 0) continue;
    }
    cv_done_.notify_all();
  }
}

void ShardedEngine::stop_pool() {
  if (pool_.empty()) return;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

SimTime ShardedEngine::run(const BarrierFn& barrier) {
  SPB_REQUIRE(!ran_, "ShardedEngine::run() is one-shot");
  ran_ = true;
  // A single-core host can never engage a worker (run_window caps engage
  // at hardware_threads_ - 1), so don't pay the spawns there; pool size is
  // wall-clock policy only and cannot affect results.
  const int spawn =
      std::min(threads_, hardware_threads_) - 1;
  if (spawn > 0) {
    pool_.reserve(static_cast<std::size_t>(spawn));
    for (int i = 0; i < spawn; ++i)
      pool_.emplace_back([this] { worker_loop(); });
  }
  while (plan_window()) {
    run_window();
    for (const Shard& s : shards_) {
      if (s.error == nullptr) continue;
      stop_pool();
      std::rethrow_exception(s.error);
    }
    // Lock in how far each shard got (limit may have shrunk mid-drain) and
    // the staging-safe horizon the barrier may consume up to.  Frontiers
    // are monotone: each shard's eff floor only moves forward, so planned
    // ends never step back — the max is a safety net, not a correction.
    SimTime safe = kNoEvent;
    std::uint64_t held = 0;
    for (Shard& s : shards_) {
      s.frontier = std::max(s.frontier, s.limit);
      safe = std::min(safe, s.frontier);
    }
    safe_horizon_ = safe;
    if (barrier) barrier();
    // The barrier consumed exactly the staged transfers initiated before
    // safe_horizon_ (in its own canonical order); prune our mirror of the
    // staging stream the same way so held floors stay in sync.
    for (Shard& s : shards_) {
      while (s.staged_cursor < s.staged.size() &&
             s.staged[s.staged_cursor] < safe_horizon_)
        ++s.staged_cursor;
      if (s.staged_cursor == s.staged.size()) {
        s.staged.clear();
        s.staged_cursor = 0;
      }
      held += s.staged.size() - s.staged_cursor;
    }
    stats_.held_xfers += held;
  }
  stop_pool();
  SimTime final_time = 0;
  for (const Shard& s : shards_) final_time = std::max(final_time, s.now);
  return final_time;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.executed;
  return total;
}

std::size_t ShardedEngine::peak_queue_depth() const {
  std::size_t peak = 0;
  for (const Shard& s : shards_) peak = std::max(peak, s.queue.peak_size());
  return peak;
}

EngineStats ShardedEngine::stats() const {
  EngineStats out;
  out.windows = stats_.windows;
  out.staged_xfers = stats_.staged_xfers;
  out.held_xfers = stats_.held_xfers;
  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  out.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    out.shards.push_back(ShardStats{s.executed, s.queue.peak_size(),
                                    s.busy_windows, s.idle_windows});
    busy += s.busy_windows;
    idle += s.idle_windows;
  }
  // Idle slots are counted directly per shard (never derived by
  // subtraction, which would wrap if a count were ever lost); the
  // busy/idle split must still tile the windows x shards grid exactly.
  SPB_REQUIRE(busy + idle ==
                  stats_.windows * static_cast<std::uint64_t>(shards_.size()),
              "shard busy/idle window counts (" << busy << " + " << idle
                                                << ") do not tile "
                                                << stats_.windows << " x "
                                                << shards_.size()
                                                << " shard-windows");
  out.idle_shard_windows = idle;
  return out;
}

}  // namespace spb::sim
