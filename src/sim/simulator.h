// The simulation clock and main loop.  Single-threaded, deterministic:
// callbacks run strictly in (time, insertion) order, and the clock never
// goes backwards.  Everything in spb — the network model, the message-
// passing runtime, the rank coroutines — is driven from this loop.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/event_queue.h"

namespace spb::sim {

class Simulator {
 public:
  /// Current simulated time in microseconds.
  SimTime now() const { return now_; }

  /// Schedules fn at absolute time t (t must be >= now()).
  void at(SimTime t, EventFn fn);

  /// Schedules fn after a non-negative delay.
  void after(SimTime delay, EventFn fn);

  /// Runs until the event queue is empty.  Returns the final clock value.
  SimTime run();

  /// Runs at most max_events events (guard against runaway simulations in
  /// tests); returns true if the queue drained.
  bool run_bounded(std::uint64_t max_events);

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// High-water mark of the pending-event queue (see EventQueue::peak_size).
  std::size_t peak_queue_depth() const { return queue_.peak_size(); }

  bool idle() const { return queue_.empty(); }

 private:
  void step();

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace spb::sim
