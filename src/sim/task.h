// C++20 coroutine task type for simulated processes.
//
// A rank's "program" in the message-passing runtime is written as an
// ordinary coroutine:
//
//   sim::Task program(mp::Comm& comm) {
//     co_await comm.send(dst, payload);
//     auto msg = co_await comm.recv(src);
//     ...
//   }
//
// Tasks are lazy (the runtime schedules the first resume at simulated time
// 0), support nesting via `co_await subtask(...)` with symmetric transfer,
// and propagate exceptions to the awaiter / runtime.  All execution is
// single-threaded inside the Simulator loop, so no synchronization is
// involved.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "common/check.h"

namespace spb::sim {

class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    /// Awaiter that resumes us when the sub-task finishes (or no-ops for a
    /// top-level task, where on_done fires instead).
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    std::function<void()> on_done;
    bool finished = false;

    Task get_return_object() {
      return Task(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto& p = h.promise();
        p.finished = true;
        if (p.on_done) p.on_done();
        if (p.continuation) return p.continuation;
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.promise().finished; }

  /// Begins a top-level task: resumes the coroutine now and arranges for
  /// on_done to run at completion.  Exceptions escaping the coroutine are
  /// stored; call rethrow_if_failed() after the simulation drains.
  void start(std::function<void()> on_done);

  /// Rethrows an exception captured from the coroutine body, if any.
  void rethrow_if_failed() const;

  /// Awaiting a Task runs it as a child coroutine; control returns to the
  /// parent when the child co_returns.  Implemented with symmetric transfer
  /// so arbitrarily deep nesting does not grow the host stack.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle child;
      bool await_ready() const noexcept {
        return !child || child.promise().finished;
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() const {
        if (child && child.promise().exception)
          std::rethrow_exception(child.promise().exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

}  // namespace spb::sim
