#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace spb::sim {

void EventQueue::push(SimTime t, std::function<void()> fn) {
  SPB_REQUIRE(fn != nullptr, "cannot schedule a null event callback");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

Event EventQueue::pop() {
  SPB_REQUIRE(!heap_.empty(), "pop() on an empty event queue");
  // priority_queue::top() is const&; moving out of the callback requires a
  // const_cast-free copy.  Events are popped once, so copy the function.
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace spb::sim
