#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace spb::sim {

void EventQueue::push(SimTime t, EventFn fn) {
  SPB_REQUIRE(static_cast<bool>(fn), "cannot schedule a null event callback");
  SPB_REQUIRE(t >= 0, "cannot schedule an event at negative time " << t);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    SPB_CHECK_MSG(slot < kSlotMask, "event queue slot space exhausted");
    slots_.push_back(std::move(fn));
  }
  const std::uint64_t seq = next_seq_++;
  SPB_CHECK_MSG(seq < (std::uint64_t{1} << (64 - kSlotBits)),
                "event sequence space exhausted");
  // + 0.0 normalizes -0.0, whose bit pattern would order last.
  heap_.push_back(
      Key{std::bit_cast<std::uint64_t>(t + 0.0), (seq << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_) peak_ = heap_.size();
}

Event EventQueue::pop() {
  SPB_REQUIRE(!heap_.empty(), "pop() on an empty event queue");
  const Key top = heap_.front();
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  const auto slot = static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
  Event out{std::bit_cast<SimTime>(top.tkey), top.seq_slot >> kSlotBits,
            std::move(slots_[slot])};
  free_slots_.push_back(slot);
  return out;
}

void EventQueue::sift_up(std::size_t i) {
  const Key key = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Key key = heap_[i];
  const Key* h = heap_.data();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    std::size_t best;
    if (first + 4 <= n) {
      // Full node (the overwhelmingly common case): branchless min-of-4
      // over one cache line.
      best = first;
      best = earlier(h[first + 1], h[best]) ? first + 1 : best;
      best = earlier(h[first + 2], h[best]) ? first + 2 : best;
      best = earlier(h[first + 3], h[best]) ? first + 3 : best;
    } else if (first < n) {
      best = first;
      for (std::size_t c = first + 1; c < n; ++c)
        if (earlier(h[c], h[best])) best = c;
    } else {
      break;
    }
    if (!earlier(h[best], key)) break;
    heap_[i] = h[best];
    i = best;
  }
  heap_[i] = key;
}

}  // namespace spb::sim
