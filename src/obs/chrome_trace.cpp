#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.h"

namespace spb::obs {

namespace {

/// One emitted trace record, pre-sorted before serialization.
struct Rec {
  int tid = 0;
  double ts = 0;
  double dur = 0;  // slices only
  char ph = 'X';   // 'X' slice, 's'/'f' flow, 'i' instant
  int seq = 0;     // recording order, the sort tiebreaker
  std::string name;
  const char* cat = "comm";
  std::uint64_t flow_id = 0;  // 's'/'f' only
  // Slice/instant args (all optional).
  bool has_comm_args = false;
  int tag = 0;
  Bytes wire_bytes = 0;
  double arrive_us = 0;  // sends only (0 = omit)
  bool show_blocked = false;
  bool blocked = false;
  std::string phase;  // attributed phase name ("" = none)
};

std::string rank_label(Rank r) { return "r" + std::to_string(r); }

void write_rec(JsonWriter& w, const Rec& r) {
  w.begin_object();
  w.field("name", std::string_view(r.name));
  w.field("cat", r.cat);
  char ph[2] = {r.ph, 0};
  w.field("ph", static_cast<const char*>(ph));
  w.field("pid", 0);
  w.field("tid", r.tid);
  w.field("ts", r.ts, 3);
  if (r.ph == 'X') w.field("dur", r.dur, 3);
  if (r.ph == 's' || r.ph == 'f') {
    w.field("id", r.flow_id);
    if (r.ph == 'f') w.field("bp", "e");
  }
  if (r.ph == 'i') w.field("s", "t");  // thread-scoped instant
  if (r.has_comm_args || !r.phase.empty()) {
    w.key("args");
    w.begin_object();
    if (r.has_comm_args) {
      w.field("tag", r.tag);
      w.field("wire_bytes", static_cast<std::uint64_t>(r.wire_bytes));
      if (r.arrive_us > 0) w.field("arrive_us", r.arrive_us, 3);
      if (r.show_blocked) w.field("blocked", r.blocked);
    }
    if (!r.phase.empty()) w.field("phase", std::string_view(r.phase));
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const mp::Trace& trace,
                        std::string_view process_name) {
  using Kind = mp::TraceEvent::Kind;
  const auto& names = trace.phase_names();
  const auto phase_name = [&names](int id) -> std::string {
    if (id < 0 || id >= static_cast<int>(names.size())) return {};
    return names[static_cast<std::size_t>(id)];
  };

  // Flow arrows pair FIFO per (src, dst, tag) — the runtime's own matching
  // order (see header).
  std::map<std::tuple<Rank, Rank, int>, std::deque<std::uint64_t>> inflight;
  std::uint64_t next_flow = 1;

  std::vector<Rec> recs;
  recs.reserve(trace.size() * 2);
  Rank max_rank = -1;
  int seq = 0;
  for (const mp::TraceEvent& e : trace.events()) {
    max_rank = std::max(max_rank, e.rank);
    Rec r;
    r.tid = e.rank;
    r.ts = e.begin_us;
    r.dur = e.end_us - e.begin_us;
    r.seq = seq++;
    r.phase = phase_name(e.phase);
    switch (e.kind) {
      case Kind::kSend: {
        r.name = "send -> " + rank_label(e.peer);
        r.has_comm_args = true;
        r.tag = e.tag;
        r.wire_bytes = e.wire_bytes;
        r.arrive_us = e.arrive_us;
        recs.push_back(r);
        Rec flow;
        flow.ph = 's';
        flow.tid = e.rank;
        flow.ts = e.begin_us;
        flow.seq = r.seq;
        flow.name = "msg";
        flow.flow_id = next_flow;
        inflight[{e.rank, e.peer, e.tag}].push_back(next_flow);
        ++next_flow;
        recs.push_back(std::move(flow));
        break;
      }
      case Kind::kRecv: {
        r.name = "recv <- " + rank_label(e.peer);
        r.has_comm_args = true;
        r.tag = e.tag;
        r.wire_bytes = e.wire_bytes;
        r.show_blocked = true;
        r.blocked = e.blocked;
        recs.push_back(r);
        auto it = inflight.find({e.peer, e.rank, e.tag});
        if (it != inflight.end() && !it->second.empty()) {
          Rec flow;
          flow.ph = 'f';
          flow.tid = e.rank;
          flow.ts = e.end_us;
          flow.seq = r.seq;
          flow.name = "msg";
          flow.flow_id = it->second.front();
          it->second.pop_front();
          recs.push_back(std::move(flow));
        }
        break;
      }
      case Kind::kCompute:
        r.name = "compute";
        recs.push_back(std::move(r));
        break;
      case Kind::kDrop:
        r.ph = 'i';
        r.cat = "fault";
        r.name = "drop -> " + rank_label(e.peer);
        recs.push_back(std::move(r));
        break;
      case Kind::kRetransmit:
        r.ph = 'i';
        r.cat = "fault";
        r.name = "retransmit -> " + rank_label(e.peer);
        recs.push_back(std::move(r));
        break;
      case Kind::kPhaseBegin:
        break;  // the matching kPhaseEnd carries the full span
      case Kind::kPhaseEnd:
        r.cat = "phase";
        r.name = r.phase.empty() ? "phase" : r.phase;
        r.phase.clear();  // the name already says it
        recs.push_back(std::move(r));
        break;
    }
  }

  // Per-track monotone timestamps; equal-ts slices order longest-first so
  // enclosing phases precede the operations they contain.
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.dur != b.dur) return a.dur > b.dur;
    return a.seq < b.seq;
  });

  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  {
    // Process metadata, then one thread_name record per rank track.
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", 0);
    w.key("args");
    w.begin_object();
    w.field("name", process_name);
    w.end_object();
    w.end_object();
    for (Rank r = 0; r <= max_rank; ++r) {
      w.begin_object();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", 0);
      w.field("tid", r);
      w.key("args");
      w.begin_object();
      w.field("name", std::string_view("rank " + std::to_string(r)));
      w.end_object();
      w.end_object();
    }
  }
  for (const Rec& r : recs) write_rec(w, r);
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  os << "\n";
}

}  // namespace spb::obs
