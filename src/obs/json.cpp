#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace spb::obs {

void JsonWriter::prepare_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  SPB_CHECK_MSG(stack_.empty() || stack_.back() == Scope::kArray,
                "JSON object members need a key() first");
  SPB_CHECK_MSG(!(stack_.empty() && wrote_top_level_),
                "only one top-level JSON value");
  if (!stack_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
  if (stack_.empty()) wrote_top_level_ = true;
}

void JsonWriter::begin_object() {
  prepare_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  SPB_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                "end_object() without begin_object()");
  SPB_CHECK_MSG(!pending_key_, "dangling key at end_object()");
  stack_.pop_back();
  first_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  prepare_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  SPB_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                "end_array() without begin_array()");
  stack_.pop_back();
  first_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  SPB_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                "key() outside an object");
  SPB_CHECK_MSG(!pending_key_, "two keys in a row");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  write_string(k);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::write_string(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::value(std::string_view s) {
  prepare_value();
  write_string(s);
}

void JsonWriter::value(bool b) {
  prepare_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::value(std::int64_t v) {
  prepare_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  prepare_value();
  os_ << v;
}

void JsonWriter::value(double v, int decimals) {
  prepare_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  os_ << buf;
}

}  // namespace spb::obs
