// Minimal streaming JSON writer for the observability exporters.  Emits
// strict JSON (UTF-8 pass-through, control characters escaped) with
// deterministic number formatting so golden-file tests stay stable across
// platforms: doubles print as fixed-point with a caller-chosen number of
// decimals, never in scientific notation.
//
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("name"); w.value("2-Step");
//   w.key("time_us"); w.value(123.456, 3);
//   w.key("phases"); w.begin_array(); ... w.end_array();
//   w.end_object();
//
// Commas and nesting are tracked internally; mismatched begin/end or a
// value without a key inside an object trips an SPB_CHECK.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace spb::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter() = default;
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member name; must be followed by exactly one value/container.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::int64_t v);
  void value(std::uint64_t v);
  /// Fixed-point with `decimals` digits; non-finite values emit null.
  void value(double v, int decimals = 3);

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }
  void field(std::string_view k, double v, int decimals) {
    key(k);
    value(v, decimals);
  }

  /// All containers closed (diagnostics for callers that want to assert).
  bool complete() const { return stack_.empty() && wrote_top_level_; }

 private:
  enum class Scope { kObject, kArray };

  void prepare_value();
  void write_string(std::string_view s);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;   // parallel to stack_: no comma needed yet
  bool pending_key_ = false;  // a key was written, a value must follow
  bool wrote_top_level_ = false;
};

}  // namespace spb::obs
