// Chrome-trace / Perfetto export of an mp::Trace.
//
// Mapping (Trace Event Format, JSON array form — load the file in
// https://ui.perfetto.dev or chrome://tracing):
//
//   rank r             -> track (pid 0, tid r), named "rank r"
//   kSend              -> "X" complete event "send -> r<dst>" + a flow
//                         start ("s") bound inside the slice
//   kRecv              -> "X" complete event "recv <- r<src>" + the flow
//                         finish ("f"), drawing the send->recv arrow
//   kCompute           -> "X" complete event "compute"
//   kDrop/kRetransmit  -> "i" instant events on the sender's track
//   phases             -> "X" complete events named after the phase,
//                         enclosing the operations they attribute
//
// Flow arrows pair sends and receives FIFO per (src, dst, tag) — exactly
// the runtime's matching order (guaranteed delivery, duplicate suppression
// and per-pair mailbox sequencing make this sound even under fault
// injection).  Events are emitted sorted by (track, ts), so consumers that
// expect monotone timestamps per track need no post-sorting.
#pragma once

#include <ostream>

#include "mp/trace.h"

namespace spb::obs {

/// Writes `trace` as a complete Trace-Event-Format JSON document.
/// `process_name` labels the single emitted process (e.g. the algorithm).
void write_chrome_trace(std::ostream& os, const mp::Trace& trace,
                        std::string_view process_name = "mppsim");

}  // namespace spb::obs
