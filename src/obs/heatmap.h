// ASCII rendering of per-link utilization collected by a
// net::LinkUsageProbe (see stop::RunOptions::link_stats).
//
// On a 2-D mesh the renderer draws the physical grid twice — busy time and
// queue time — one digit 0..9 per node, scaled to the hottest link of the
// run, so hot spots (2-Step's funnel into P0) read at a glance.  On every
// topology it appends a "hottest links" table with busy-us, queued-us and
// reservation counts, using Topology::describe_link for human-readable
// link names.
#pragma once

#include <string>

#include "net/network.h"
#include "net/topology.h"

namespace spb::obs {

/// Renders `usage` over `topo`; `top_n` bounds the hottest-links table.
std::string render_link_heatmap(const net::Topology& topo,
                                const net::LinkUsageProbe& usage,
                                int top_n = 8);

}  // namespace spb::obs
