// Single-document JSON run report: one stop::run() distilled into the
// numbers the paper argues with — timing, Figure-2 metrics, fault
// counters, the per-phase breakdown, and a link-utilization histogram.
// This is the payload of the spb_report CLI; tests parse it back.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "common/types.h"
#include "net/topology.h"
#include "stop/run.h"

namespace spb::obs {

/// What was run, for the report header (the RunResult does not carry it).
struct ReportContext {
  std::string algorithm;
  std::string machine;
  std::string distribution;
  int sources = 0;
  Bytes message_bytes = 0;
  int p = 0;
  std::uint64_t seed = 1;  // distribution seed
  std::string faults;      // textual fault spec ("" = none)
};

/// Writes the full report.  `topo` (optional) adds human-readable link
/// names to the link table; link statistics appear only when the run was
/// made with RunOptions::link_stats.
void write_run_report(std::ostream& os, const ReportContext& ctx,
                      const stop::RunResult& result,
                      const net::Topology* topo = nullptr);

}  // namespace spb::obs
