// Single-document JSON run report: one stop::run() distilled into the
// numbers the paper argues with — timing, Figure-2 metrics, fault
// counters, the per-phase breakdown, and a link-utilization histogram.
// This is the payload of the spb_report CLI; tests parse it back.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/topology.h"
#include "stop/run.h"

namespace spb::obs {

/// What was run, for the report header (the RunResult does not carry it).
struct ReportContext {
  std::string algorithm;
  std::string machine;
  std::string distribution;
  int sources = 0;
  Bytes message_bytes = 0;
  int p = 0;
  std::uint64_t seed = 1;  // distribution seed
  std::string faults;      // textual fault spec ("" = none)
};

/// Planner provenance for a run that was planned before it was executed.
/// Plain data on purpose: obs sits beside plan in the layering and must not
/// depend on it — callers (tools/spb_plan) copy the fields over from
/// plan::Plan / plan::CacheStats.
struct PlannerSection {
  /// Canonical problem signature key, "%016x" hex.
  std::string signature;
  /// The length bucket representative the table was priced at, bytes.
  Bytes planned_bytes = 0;
  struct Entry {
    std::string algorithm;
    double predicted_us = 0;
  };
  /// Ranked table, ascending predicted time (ranked.front() = chosen).
  std::vector<Entry> ranked;
  /// True when the plan came out of the cache without repricing.
  bool cache_hit = false;
  /// Cache totals at report time.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

/// Writes the full report.  `topo` (optional) adds human-readable link
/// names to the link table; link statistics appear only when the run was
/// made with RunOptions::link_stats.  `planner` (optional) adds a
/// "planner" section recording how the executed algorithm was chosen.
void write_run_report(std::ostream& os, const ReportContext& ctx,
                      const stop::RunResult& result,
                      const net::Topology* topo = nullptr,
                      const PlannerSection* planner = nullptr);

/// One serving session distilled: request counters, queue pressure, the
/// sharded plan-cache statistics, and per-request latency percentiles.
/// Plain data like PlannerSection (obs must not depend on serve): the
/// serve layer and its drivers copy the fields over, then emit the report
/// with write_serve_report (spb_serve --report, bench/ext_serve).
struct ServeSection {
  std::string machine;
  int workers = 0;

  /// Requests answered, by outcome ("shed" = explicit overload responses).
  std::uint64_t requests_plan = 0;
  std::uint64_t requests_execute = 0;
  std::uint64_t requests_stats = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t requests_shed = 0;

  std::uint64_t queue_limit = 0;
  std::uint64_t queue_max_depth = 0;

  struct CacheShard {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t size = 0;
  };
  /// Per-shard statistics; the writer also emits their field-wise sum.
  std::vector<CacheShard> cache_shards;
  std::uint64_t cache_capacity = 0;

  /// Per-request latency distribution (plan + execute requests).
  std::uint64_t latency_count = 0;
  double latency_p50_us = 0;
  double latency_p95_us = 0;
  double latency_p99_us = 0;
  double latency_max_us = 0;

  /// Filled by drivers that timed a whole session (0 = sections omitted).
  double wall_ms = 0;
  double requests_per_sec = 0;
};

/// Writes the serve report as a standalone JSON document.
void write_serve_report(std::ostream& os, const ServeSection& serve);

}  // namespace spb::obs
