#include "obs/report.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "obs/json.h"

namespace spb::obs {

namespace {

void write_metrics(JsonWriter& w, const mp::RunMetrics& m) {
  w.key("metrics");
  w.begin_object();
  w.field("congestion", static_cast<std::uint64_t>(m.congestion));
  w.field("wait", m.max_waits);
  w.field("send_rec", m.max_send_recv);
  w.field("av_msg_lgth", m.av_msg_lgth, 1);
  w.field("av_act_proc", m.av_act_proc, 2);
  w.field("iterations", static_cast<std::uint64_t>(m.iterations));
  w.field("total_sends", m.total_sends);
  w.field("total_recvs", m.total_recvs);
  w.field("total_bytes_sent", static_cast<std::uint64_t>(m.total_bytes_sent));
  w.end_object();
}

void write_faults(JsonWriter& w, const mp::RunMetrics& m) {
  w.key("faults");
  w.begin_object();
  w.field("transit_drops", m.transit_drops);
  w.field("retransmits", m.retransmits);
  w.field("duplicates", m.duplicates);
  w.end_object();
}

void write_network(JsonWriter& w, const net::NetworkStats& n) {
  w.key("network");
  w.begin_object();
  w.field("transfers", n.transfers);
  w.field("total_hops", n.total_hops);
  w.field("total_bytes", static_cast<std::uint64_t>(n.total_bytes));
  w.field("total_link_busy_us", n.total_link_busy_us, 1);
  w.field("max_link_busy_us", n.max_link_busy_us, 1);
  w.field("total_stall_us", n.total_stall_us, 1);
  w.field("degraded_transfers", n.degraded_transfers);
  w.field("detours", n.detours);
  w.end_object();
}

void write_phases(JsonWriter& w,
                  const std::vector<mp::PhaseTotals>& phases) {
  w.key("phases");
  w.begin_array();
  for (const mp::PhaseTotals& ph : phases) {
    w.begin_object();
    w.field("name", std::string_view(ph.name));
    w.field("entries", ph.entries);
    w.field("sends", ph.sends);
    w.field("recvs", ph.recvs);
    w.field("waits", ph.waits);
    w.field("bytes_sent", static_cast<std::uint64_t>(ph.bytes_sent));
    w.field("bytes_received",
            static_cast<std::uint64_t>(ph.bytes_received));
    w.field("wait_us", ph.wait_us, 1);
    w.field("compute_us", ph.compute_us, 1);
    w.field("total_span_us", ph.total_span_us, 1);
    w.field("max_span_us", ph.max_span_us, 1);
    w.end_object();
  }
  w.end_array();
}

void write_links(JsonWriter& w, const net::LinkUsageProbe& usage,
                 const net::Topology* topo) {
  w.key("links");
  w.begin_object();

  const std::size_t n = usage.busy_us.size();
  double max_busy = 0;
  double total_busy = 0;
  double total_queued = 0;
  std::size_t used = 0;
  for (std::size_t l = 0; l < n; ++l) {
    max_busy = std::max(max_busy, usage.busy_us[l]);
    total_busy += usage.busy_us[l];
    total_queued += usage.queued_us[l];
    if (usage.reservations[l] > 0) ++used;
  }
  w.field("link_space", static_cast<std::uint64_t>(n));
  w.field("links_used", static_cast<std::uint64_t>(used));
  w.field("max_busy_us", max_busy, 1);
  w.field("total_busy_us", total_busy, 1);
  w.field("total_queued_us", total_queued, 1);

  // Histogram of used links over 8 equal busy-time buckets [0, max].
  w.key("busy_histogram");
  w.begin_array();
  constexpr int kBuckets = 8;
  std::vector<std::uint64_t> hist(kBuckets, 0);
  if (max_busy > 0) {
    for (std::size_t l = 0; l < n; ++l) {
      if (usage.reservations[l] == 0) continue;
      const int b = std::min(
          kBuckets - 1,
          static_cast<int>(usage.busy_us[l] / max_busy * kBuckets));
      ++hist[static_cast<std::size_t>(b)];
    }
  }
  for (const std::uint64_t h : hist) w.value(h);
  w.end_array();

  // Hottest links, busy-time order (ties by id: deterministic output).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&usage](std::size_t a, std::size_t b) {
              if (usage.busy_us[a] != usage.busy_us[b])
                return usage.busy_us[a] > usage.busy_us[b];
              return a < b;
            });
  w.key("top");
  w.begin_array();
  int shown = 0;
  for (const std::size_t l : order) {
    if (shown >= 8 || usage.busy_us[l] <= 0) break;
    ++shown;
    w.begin_object();
    w.field("link", static_cast<std::uint64_t>(l));
    if (topo != nullptr)
      w.field("desc", std::string_view(
                          topo->describe_link(static_cast<LinkId>(l))));
    w.field("busy_us", usage.busy_us[l], 1);
    w.field("queued_us", usage.queued_us[l], 1);
    w.field("reservations", usage.reservations[l]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_parallel(JsonWriter& w, const mp::ParallelStats& ps) {
  // Every field here is worker-thread-count independent (see
  // mp::ParallelStats), so reports diff clean across SPB_SIM_THREADS.
  w.key("parallel");
  w.begin_object();
  w.field("shards", static_cast<std::int64_t>(ps.shards));
  w.field("window_us", ps.window_us, 3);
  w.field("lookahead_min_us", ps.lookahead_min_us, 3);
  w.field("lookahead_max_us", ps.lookahead_max_us, 3);
  w.field("windows", ps.windows);
  w.field("idle_shard_windows", ps.idle_shard_windows);
  w.field("staged_xfers", ps.staged_xfers);
  w.field("held_xfers", ps.held_xfers);
  const std::uint64_t slots =
      ps.windows * static_cast<std::uint64_t>(ps.shards);
  w.field("window_efficiency",
          slots == 0 ? 0.0
                     : 1.0 - static_cast<double>(ps.idle_shard_windows) /
                                 static_cast<double>(slots),
          4);
  w.key("per_shard");
  w.begin_array();
  for (const mp::ParallelStats::Shard& s : ps.per_shard) {
    w.begin_object();
    w.field("events", s.events);
    w.field("peak_queue_depth", s.peak_queue_depth);
    w.field("busy_windows", s.busy_windows);
    w.field("idle_windows", s.idle_windows);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_planner(JsonWriter& w, const PlannerSection& ps) {
  w.key("planner");
  w.begin_object();
  w.field("signature", std::string_view(ps.signature));
  w.field("planned_bytes", static_cast<std::uint64_t>(ps.planned_bytes));
  w.field("cache_hit", ps.cache_hit);
  w.key("cache");
  w.begin_object();
  w.field("hits", ps.cache_hits);
  w.field("misses", ps.cache_misses);
  w.field("evictions", ps.cache_evictions);
  const std::uint64_t lookups = ps.cache_hits + ps.cache_misses;
  w.field("hit_rate",
          lookups == 0 ? 0.0
                       : static_cast<double>(ps.cache_hits) /
                             static_cast<double>(lookups),
          4);
  w.end_object();
  w.key("ranked");
  w.begin_array();
  for (const PlannerSection::Entry& e : ps.ranked) {
    w.begin_object();
    w.field("algorithm", std::string_view(e.algorithm));
    w.field("predicted_us", e.predicted_us, 3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_run_report(std::ostream& os, const ReportContext& ctx,
                      const stop::RunResult& result,
                      const net::Topology* topo,
                      const PlannerSection* planner) {
  JsonWriter w(os);
  w.begin_object();
  w.field("algorithm", std::string_view(ctx.algorithm));
  w.field("machine", std::string_view(ctx.machine));
  w.field("distribution", std::string_view(ctx.distribution));
  w.field("sources", ctx.sources);
  w.field("message_bytes", static_cast<std::uint64_t>(ctx.message_bytes));
  w.field("p", ctx.p);
  w.field("seed", ctx.seed);
  if (!ctx.faults.empty()) w.field("fault_spec", std::string_view(ctx.faults));

  w.field("time_us", result.time_us, 3);
  w.field("time_ms", result.time_us / 1000.0, 4);
  w.field("events", result.outcome.events);
  w.field("peak_queue_depth",
          static_cast<std::uint64_t>(result.outcome.peak_queue_depth));

  write_metrics(w, result.outcome.metrics);
  write_faults(w, result.outcome.metrics);
  write_network(w, result.outcome.network);
  write_phases(w, result.outcome.phases);
  if (result.link_usage.link_space() > 0)
    write_links(w, result.link_usage, topo);
  if (result.outcome.par.parallel()) write_parallel(w, result.outcome.par);
  if (planner != nullptr) write_planner(w, *planner);
  w.end_object();
  os << "\n";
}

void write_serve_report(std::ostream& os, const ServeSection& serve) {
  JsonWriter w(os);
  w.begin_object();
  w.field("machine", std::string_view(serve.machine));
  w.field("workers", serve.workers);

  w.key("requests");
  w.begin_object();
  w.field("plan", serve.requests_plan);
  w.field("execute", serve.requests_execute);
  w.field("stats", serve.requests_stats);
  w.field("errors", serve.requests_error);
  w.field("shed", serve.requests_shed);
  w.field("total", serve.requests_plan + serve.requests_execute +
                       serve.requests_stats + serve.requests_error +
                       serve.requests_shed);
  w.end_object();

  w.key("queue");
  w.begin_object();
  w.field("limit", serve.queue_limit);
  w.field("max_depth", serve.queue_max_depth);
  w.end_object();

  ServeSection::CacheShard total;
  for (const ServeSection::CacheShard& s : serve.cache_shards) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.coalesced += s.coalesced;
    total.size += s.size;
  }
  w.key("cache");
  w.begin_object();
  w.field("shards", static_cast<std::uint64_t>(serve.cache_shards.size()));
  w.field("capacity", serve.cache_capacity);
  w.field("size", total.size);
  w.field("hits", total.hits);
  w.field("misses", total.misses);
  w.field("evictions", total.evictions);
  w.field("coalesced", total.coalesced);
  const std::uint64_t lookups = total.hits + total.misses;
  w.field("hit_rate",
          lookups == 0 ? 0.0
                       : static_cast<double>(total.hits) /
                             static_cast<double>(lookups),
          4);
  w.key("per_shard");
  w.begin_array();
  for (const ServeSection::CacheShard& s : serve.cache_shards) {
    w.begin_object();
    w.field("hits", s.hits);
    w.field("misses", s.misses);
    w.field("evictions", s.evictions);
    w.field("coalesced", s.coalesced);
    w.field("size", s.size);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("latency");
  w.begin_object();
  w.field("count", serve.latency_count);
  w.field("p50_us", serve.latency_p50_us, 3);
  w.field("p95_us", serve.latency_p95_us, 3);
  w.field("p99_us", serve.latency_p99_us, 3);
  w.field("max_us", serve.latency_max_us, 3);
  w.end_object();

  if (serve.wall_ms > 0) {
    w.key("throughput");
    w.begin_object();
    w.field("wall_ms", serve.wall_ms, 3);
    w.field("requests_per_sec", serve.requests_per_sec, 1);
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

}  // namespace spb::obs
