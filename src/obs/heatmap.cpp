#include "obs/heatmap.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/str.h"

namespace spb::obs {

namespace {

/// Per-node max over its outgoing links, as digits scaled to global_max.
std::string grid_digits(const net::Mesh2D& mesh,
                        const std::vector<double>& per_link,
                        double global_max) {
  const int slots = mesh.slots_per_node();
  std::string out;
  for (int row = 0; row < mesh.rows(); ++row) {
    out += "  ";
    for (int col = 0; col < mesh.cols(); ++col) {
      const NodeId n = row * mesh.cols() + col;
      double v = 0;
      for (int s = 0; s < slots; ++s) {
        const auto l = static_cast<std::size_t>(n * slots + s);
        v = std::max(v, per_link[l]);
      }
      const int digit =
          global_max > 0 ? std::min(9, static_cast<int>(v / global_max *
                                                        9.999))
                         : 0;
      out += static_cast<char>('0' + digit);
    }
    out += "\n";
  }
  return out;
}

}  // namespace

std::string render_link_heatmap(const net::Topology& topo,
                                const net::LinkUsageProbe& usage,
                                int top_n) {
  SPB_REQUIRE(usage.link_space() == topo.link_space(),
              "usage probe does not match the topology");
  const auto links = static_cast<std::size_t>(topo.link_space());

  double max_busy = 0;
  double max_queued = 0;
  for (std::size_t l = 0; l < links; ++l) {
    max_busy = std::max(max_busy, usage.busy_us[l]);
    max_queued = std::max(max_queued, usage.queued_us[l]);
  }

  std::string out;
  out += "link utilization on " + topo.name() + " (hottest link " +
         fixed(max_busy, 0) + " us busy, " + fixed(max_queued, 0) +
         " us queued)\n";

  if (const auto* mesh = dynamic_cast<const net::Mesh2D*>(&topo)) {
    out += "per-node hottest outgoing link, busy time 0..9:\n";
    out += grid_digits(*mesh, usage.busy_us, max_busy);
    out += "per-node hottest outgoing link, queue time 0..9:\n";
    out += grid_digits(*mesh, usage.queued_us, max_queued);
  }

  // Hottest links by busy time, ties by id for determinism.
  std::vector<std::size_t> order(links);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&usage](std::size_t a,
                                                 std::size_t b) {
    if (usage.busy_us[a] != usage.busy_us[b])
      return usage.busy_us[a] > usage.busy_us[b];
    return a < b;
  });

  out += "hottest links:\n";
  int shown = 0;
  for (const std::size_t l : order) {
    if (shown >= top_n || usage.busy_us[l] <= 0) break;
    ++shown;
    out += "  " + pad_right(topo.describe_link(static_cast<LinkId>(l)), 28) +
           pad_left(fixed(usage.busy_us[l], 0), 10) + " us busy" +
           pad_left(fixed(usage.queued_us[l], 0), 10) + " us queued" +
           pad_left(std::to_string(usage.reservations[l]), 8) + " xfers\n";
  }
  if (shown == 0) out += "  (no link carried traffic)\n";
  return out;
}

}  // namespace spb::obs
