// Layer 4 of the schedule model-checker: DPOR-lite exploration of
// alternative delivery orders.
//
// The structural layer (structure.h) reduces a schedule's nondeterminism
// to one question per pool: in which order do the pool's message classes
// arrive?  This layer answers it mechanically, by exhausting every
// arrival order of every pool under the real issuance constraints — a
// segment's sends are issued only once its class is delivered, so one
// pool's order can gate the supply of another pool on another rank.
//
// The state space is *lumped*: a state is, per rank, the current item
// index plus a bitmask of consumed pool segments.  Which segments were
// consumed matters; in which order they were consumed does not (held
// payloads are unions, segment sends are fixed by the class bijection),
// so n! arrival orders of one pool collapse to 2^n lumped states — and
// memoized DFS shares them across ranks' interleavings.
//
// Three partial-order reductions keep ≤16-rank shapes tractable:
//
//   eager-send advance   sends never block (the runtime's sends are
//                        eager) and pinned receives consume a unique
//                        FIFO-determined message, so both are advanced
//                        deterministically; a pool with exactly one
//                        pending compatible class has no choice either;
//   persistent sets      pool moves on different ranks are independent
//                        (classes are per-destination, issuance only
//                        grows), so branching explores one rank's
//                        choices at a time without losing reachable
//                        states or deadlocks;
//   send-free collapse   a rank whose remaining program issues no sends
//                        (a pure drain: gather root, alltoall drain
//                        phase) cannot influence any other rank, so it
//                        is frozen during exploration and resolved by a
//                        direct starvation check at the end.
//
// A stuck state — no rank can move, some rank unfinished — is a deadlock
// witness and is reported with every parked receive.  If every explored
// path reaches the unique all-consumed terminal state, the schedule is
// deadlock-free under all delivery orders, and (with the structural
// conditions) delivery-order-deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "mp/schedule.h"
#include "verify/structure.h"

namespace spb::verify {

struct ExploreOptions {
  /// Lumped-state budget; exploration stops (exhaustive=false) beyond it.
  std::uint64_t max_states = 250'000;
};

struct ExploreResult {
  /// Every reachable lumped state was visited within the budget.
  bool exhaustive = false;
  /// Some delivery order reaches a stuck state.
  bool deadlock_found = false;
  /// Multi-line description of the first stuck state found.
  std::string deadlock_witness;
  /// All explored paths reach the unique all-consumed terminal state.
  bool deterministic = false;

  std::uint64_t states = 0;         // distinct lumped states visited
  std::uint64_t branch_points = 0;  // states with >= 2 delivery choices
  std::uint64_t terminals = 0;      // distinct terminal states (expect 1)
  int passive_ranks = 0;            // ranks collapsed by the drain rule
  /// Diagnostic notes (budget exhaustion, oversized pools, anomalies).
  std::string note;
};

ExploreResult explore(const mp::Schedule& schedule, const Structure& structure,
                      const ExploreOptions& options = {});

}  // namespace spb::verify
