// The determinism certificate: one verdict per (algorithm, problem)
// aggregating every model-checker layer, emitted as JSON through
// obs::JsonWriter so CI can archive it as an artifact.
//
// A schedule is *certified* when all of the following hold:
//
//   1. the recording run itself completed (no deadlock, no CheckError);
//   2. the recorded match graph is complete, tag-disciplined and
//      FIFO-safe (verify::check_match_graph);
//   3. the wait-for graph is acyclic (verify::check_deadlock_free);
//   4. the pool/segment structure satisfies the confluence conditions —
//      class bijection, segment self-containment, steal safety
//      (verify::extract_structure);
//   5. exhaustive exploration of alternative delivery orders finds no
//      stuck state and reaches the unique all-consumed terminal state
//      (verify::explore).
//
// Together, 2-5 say: every delivery order the runtime could produce
// executes the same per-rank programs with the same per-receive
// deliveries and terminates — the final payload assignment cannot depend
// on event-order, which is the property the intra-run parallelism work
// (ROADMAP items 1 and 3) needs as its baseline.
//
// Certificates carrying `dispatch_assumption: true` additionally rely on
// pool segments being message-driven (structure.h); bench/ext_verify
// backs that assumption with a dynamic fault-perturbation cross-check.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "mp/schedule.h"
#include "obs/json.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "verify/explore.h"
#include "verify/match.h"
#include "verify/structure.h"

namespace spb::verify {

struct CertifyOptions {
  ExploreOptions explore;
};

struct Certificate {
  // Provenance (empty when certifying a bare schedule).
  std::string algorithm;
  std::string machine;
  int ranks = 0;
  int sources = 0;
  Bytes message_bytes = 0;

  /// The recording run completed; `recorded_failure` holds the runtime
  /// diagnostic otherwise.
  bool recorded_completed = true;
  std::string recorded_failure;

  MatchCheck match;
  DeadlockCheck deadlock;
  Structure structure;
  ExploreResult exploration;

  bool certified = false;
  /// One line per failed obligation (empty when certified).
  std::vector<std::string> reasons;

  std::string verdict() const { return certified ? "certified" : "rejected"; }
  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Runs layers 2-5 on an already-recorded (possibly mutated) schedule.
/// `sources` are the problem's source ranks.
Certificate certify_schedule(const mp::Schedule& schedule,
                             std::span<const Rank> sources,
                             const CertifyOptions& options = {});

/// Records one run of `algorithm` on `problem` and certifies it,
/// including obligation 1 (the recording completed).
Certificate certify(const stop::Algorithm& algorithm,
                    const stop::Problem& problem,
                    const CertifyOptions& options = {});

/// Emits the certificate as one JSON object on `w` (caller owns the
/// surrounding document, e.g. an array of certificates).
void write_certificate(obs::JsonWriter& w, const Certificate& cert);

/// Convenience: a complete JSON document with a single certificate.
void write_certificate_json(std::ostream& os, const Certificate& cert);

}  // namespace spb::verify
