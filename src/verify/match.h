// Layer 1+2 of the schedule model-checker: the recorded match graph and
// the wait-for graph.
//
// src/analyze re-derives a matching from the (rank, peer, tag) filters and
// never trusts the recorded edges; this layer does the complementary job.
// It treats the recorded match edges as the *claim* ("this is the matching
// the run produced") and proves the claim well-formed:
//
//   match-completeness   every send is consumed by exactly one receive and
//                        every posted receive completed against exactly one
//                        send, with both edges agreeing (bijectivity);
//   tag discipline       every matched pair satisfies the receive's source
//                        and tag filters and agrees on the wire size;
//   FIFO safety          within one (src, dst, tag) channel, messages are
//                        consumed in the order they were sent — the runtime
//                        promise mp/mailbox.h documents, re-proved per
//                        schedule instead of assumed.
//
// check_deadlock_free() then builds the wait-for graph (program-order
// edges within a rank, match edges from each receive to the send it
// consumed) and proves it acyclic; a cycle is returned as the full op
// chain so the report names every rank that hangs.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "mp/schedule.h"

namespace spb::verify {

struct MatchIssue {
  enum class Kind {
    kUnconsumedSend,   // send with no receive edge
    kUnmatchedRecv,    // posted receive that never completed
    kDanglingEdge,     // edge points at a missing / wrong-kind op
    kBrokenBijection,  // send->recv and recv->send edges disagree
    kFilterViolation,  // matched pair violates the receive's src/tag filter
    kSizeDisagreement, // matched pair disagrees on the wire size
    kFifoViolation,    // (src, dst, tag) channel consumed out of order
  };

  Kind kind;
  /// Full description naming rank / step / peer / tag.
  std::string message;
  /// Primary op id this issue anchors to.
  int op = -1;
};

std::string match_issue_kind_name(MatchIssue::Kind kind);

struct MatchCheck {
  std::vector<MatchIssue> issues;
  int sends = 0;
  int recvs = 0;
  int matched_pairs = 0;
  /// Receives with a wildcard source or tag filter — the only ops whose
  /// match is chosen by delivery order (see explore.h).
  int wildcard_recvs = 0;

  bool ok() const { return issues.empty(); }
  std::string to_string(int max_report = 16) const;
};

/// Proves the recorded matching complete, filter-respecting and FIFO-safe.
MatchCheck check_match_graph(const mp::Schedule& schedule);

struct DeadlockCheck {
  /// Empty = acyclic.  Otherwise one wait-for cycle as op ids, in order.
  std::vector<int> cycle;
  /// Human-readable chain for the cycle (empty when acyclic).
  std::string message;
  /// Longest dependency chain (ops) — the schedule's logical depth.
  int critical_depth = 0;

  bool ok() const { return cycle.empty(); }
};

/// Proves the wait-for graph of the recorded matching acyclic.
DeadlockCheck check_deadlock_free(const mp::Schedule& schedule);

}  // namespace spb::verify
