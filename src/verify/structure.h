// Layer 3 of the schedule model-checker: the pool/segment structure of
// every rank's program and the confluence conditions that make delivery
// order irrelevant.
//
// The runtime's only delivery-order freedom lives in wildcard receives:
// each rank is one sequential coroutine with at most one parked receive,
// the mailbox delivers every (src, dst, tag) channel in FIFO order, so a
// receive with a fully pinned filter always consumes one specific message.
// A *wildcard* receive (kAnySource and/or kAnyTag) instead consumes
// whichever compatible message the event order delivers first — that
// choice is the entire nondeterminism budget of a schedule.
//
// This layer decomposes each rank's program into
//
//   item     a send, a pinned receive, or a pool;
//   segment  one wildcard receive plus the sends issued before the next
//            receive — the program text executed per delivery;
//   pool     a maximal run of consecutive segments whose receives share
//            one wildcard filter (a drain loop: gather's root, the
//            alltoall drain, Uncoordinated's forwarding loop).
//
// and proves, per pool, the structural conditions under which all segment
// permutations commute to the same final state:
//
//   class bijection    each segment consumed a distinct message class
//                      (src, tag) — so "which message" determines "which
//                      segment" and delivery order only permutes them;
//   self-containment   a segment's sends carry only chunks the rank held
//                      before the pool plus chunks its own delivery
//                      brought — no segment depends on a sibling's
//                      delivery, so permuting segments never changes what
//                      any segment can send;
//   steal safety       no send in the whole schedule is compatible with
//                      the pool's filter unless it belongs to one of the
//                      pool's classes or is provably consumed before the
//                      pool posts (earlier in the rank's program) — the
//                      machine-checked form of the tag discipline
//                      documented in mp/message.h.
//
// Pools whose segments issue sends additionally rely on the
// *message-driven dispatch* assumption: the program reacts to the class
// of the delivered message (as Uncoordinated dispatches on m.tag), not to
// the arrival position.  The certificate records this assumption, and
// bench/ext_verify cross-checks it dynamically by re-running under a
// fault plan that perturbs real arrival order.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "mp/schedule.h"

namespace spb::verify {

/// A message class: every message is identified up to delivery order by
/// (source rank, tag) at a fixed destination.
struct MsgClass {
  Rank src = kNoRank;
  int tag = 0;
  bool operator==(const MsgClass&) const = default;
  auto operator<=>(const MsgClass&) const = default;
};

/// One wildcard receive and the sends issued before the next receive.
struct Segment {
  int recv_id = -1;
  std::vector<int> send_ids;
  /// Class of the message the recorded run delivered to this segment.
  MsgClass cls;
};

/// A maximal run of same-filter wildcard segments on one rank.
struct Pool {
  Rank rank = kNoRank;
  Rank src_filter = kNoRank;
  int tag_filter = 0;
  std::vector<Segment> segments;
  /// Any segment issues sends — the pool needs the message-driven
  /// dispatch assumption (see file comment).
  bool has_sends = false;
};

struct Item {
  enum class Kind { kSend, kPinnedRecv, kPool };
  Kind kind = Kind::kSend;
  /// kSend / kPinnedRecv: the op id.  kPool: first recv op id (reports).
  int op = -1;
  /// kPool: index into Structure::pools.
  int pool = -1;
};

struct StructureIssue {
  enum class Kind {
    kUnboundSegment,     // wildcard recv without a recorded match: the
                         // class that drove the segment is unknown
    kClassCollision,     // two segments of one pool consumed equal classes
    kSegmentDependency,  // a segment sends chunks a sibling delivered
    kStealHazard,        // a foreign compatible class can reach the pool
  };
  Kind kind;
  std::string message;
  int op = -1;
};

std::string structure_issue_kind_name(StructureIssue::Kind kind);

struct Structure {
  /// Per-rank item lists, program order.
  std::vector<std::vector<Item>> programs;
  std::vector<Pool> pools;
  std::vector<StructureIssue> issues;
  /// Some pool has sends: the message-driven dispatch assumption is load-
  /// bearing for this schedule's certificate.
  bool rebinding_assumed = false;

  bool ok() const { return issues.empty(); }
  std::string to_string(int max_report = 16) const;
};

/// Decomposes the schedule and checks the confluence conditions.
/// `sources` are the problem's source ranks — a rank's pre-run chunk
/// holdings, needed for segment self-containment.
Structure extract_structure(const mp::Schedule& schedule,
                            std::span<const Rank> sources);

}  // namespace spb::verify
