#include "verify/certificate.h"

#include <ostream>
#include <sstream>

#include "analyze/record.h"

namespace spb::verify {

namespace {

void append_reasons(const Certificate& cert, std::vector<std::string>& out) {
  if (!cert.recorded_completed) {
    out.push_back("recording run failed: " + cert.recorded_failure);
  }
  for (const auto& issue : cert.match.issues) {
    out.push_back("match: [" + match_issue_kind_name(issue.kind) + "] " +
                  issue.message);
  }
  if (!cert.deadlock.ok()) {
    out.push_back("wait-for graph: " + cert.deadlock.message);
  }
  for (const auto& issue : cert.structure.issues) {
    out.push_back("structure: [" + structure_issue_kind_name(issue.kind) +
                  "] " + issue.message);
  }
  if (cert.exploration.deadlock_found) {
    out.push_back("exploration: " + cert.exploration.deadlock_witness);
  } else if (!cert.exploration.deterministic) {
    out.push_back("exploration: not exhaustive (" + cert.exploration.note +
                  ")");
  }
}

}  // namespace

std::string Certificate::to_string() const {
  std::ostringstream os;
  os << verdict();
  if (!algorithm.empty()) os << " " << algorithm;
  if (!machine.empty()) os << " on " << machine;
  os << ": " << match.sends << " sends, " << match.recvs << " recvs, "
     << structure.pools.size() << " pool(s), " << exploration.states
     << " states (" << exploration.branch_points << " branch points), depth "
     << deadlock.critical_depth;
  if (structure.rebinding_assumed) os << ", dispatch assumption";
  for (const auto& reason : reasons) os << "\n  - " << reason;
  return os.str();
}

Certificate certify_schedule(const mp::Schedule& schedule,
                             std::span<const Rank> sources,
                             const CertifyOptions& options) {
  Certificate cert;
  cert.ranks = schedule.rank_count();
  cert.sources = static_cast<int>(sources.size());
  cert.match = check_match_graph(schedule);
  cert.deadlock = check_deadlock_free(schedule);
  cert.structure = extract_structure(schedule, sources);
  cert.exploration = explore(schedule, cert.structure, options.explore);
  cert.certified = cert.recorded_completed && cert.match.ok() &&
                   cert.deadlock.ok() && cert.structure.ok() &&
                   cert.exploration.deterministic;
  append_reasons(cert, cert.reasons);
  return cert;
}

Certificate certify(const stop::Algorithm& algorithm,
                    const stop::Problem& problem,
                    const CertifyOptions& options) {
  const analyze::RecordedRun run = analyze::record_run(algorithm, problem);
  Certificate cert =
      certify_schedule(run.schedule, problem.sources, options);
  cert.algorithm = algorithm.name();
  cert.machine = problem.machine.name;
  cert.message_bytes = problem.message_bytes;
  if (!run.completed) {
    cert.recorded_completed = false;
    cert.recorded_failure = run.failure;
    cert.certified = false;
    cert.reasons.clear();
    append_reasons(cert, cert.reasons);
  }
  return cert;
}

void write_certificate(obs::JsonWriter& w, const Certificate& cert) {
  w.begin_object();
  w.field("verdict", cert.verdict());
  w.field("certified", cert.certified);
  if (!cert.algorithm.empty()) w.field("algorithm", cert.algorithm);
  if (!cert.machine.empty()) w.field("machine", cert.machine);
  w.field("ranks", cert.ranks);
  w.field("sources", cert.sources);
  if (cert.message_bytes > 0) {
    w.field("message_bytes", static_cast<std::uint64_t>(cert.message_bytes));
  }
  w.field("recorded_completed", cert.recorded_completed);
  if (!cert.recorded_failure.empty()) {
    w.field("recorded_failure", cert.recorded_failure);
  }

  w.key("match");
  w.begin_object();
  w.field("ok", cert.match.ok());
  w.field("sends", cert.match.sends);
  w.field("recvs", cert.match.recvs);
  w.field("matched_pairs", cert.match.matched_pairs);
  w.field("wildcard_recvs", cert.match.wildcard_recvs);
  w.key("issues");
  w.begin_array();
  for (const auto& issue : cert.match.issues) {
    w.begin_object();
    w.field("kind", match_issue_kind_name(issue.kind));
    w.field("op", issue.op);
    w.field("message", issue.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("wait_for");
  w.begin_object();
  w.field("acyclic", cert.deadlock.ok());
  w.field("critical_depth", cert.deadlock.critical_depth);
  if (!cert.deadlock.ok()) {
    w.key("cycle");
    w.begin_array();
    for (int id : cert.deadlock.cycle) w.value(id);
    w.end_array();
  }
  w.end_object();

  w.key("structure");
  w.begin_object();
  w.field("ok", cert.structure.ok());
  w.field("pools", static_cast<int>(cert.structure.pools.size()));
  w.field("dispatch_assumption", cert.structure.rebinding_assumed);
  w.key("issues");
  w.begin_array();
  for (const auto& issue : cert.structure.issues) {
    w.begin_object();
    w.field("kind", structure_issue_kind_name(issue.kind));
    w.field("op", issue.op);
    w.field("message", issue.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("exploration");
  w.begin_object();
  w.field("exhaustive", cert.exploration.exhaustive);
  w.field("deterministic", cert.exploration.deterministic);
  w.field("deadlock_found", cert.exploration.deadlock_found);
  w.field("states", cert.exploration.states);
  w.field("branch_points", cert.exploration.branch_points);
  w.field("terminals", cert.exploration.terminals);
  w.field("passive_ranks", cert.exploration.passive_ranks);
  if (!cert.exploration.note.empty()) {
    w.field("note", cert.exploration.note);
  }
  if (cert.exploration.deadlock_found) {
    w.field("witness", cert.exploration.deadlock_witness);
  }
  w.end_object();

  w.key("reasons");
  w.begin_array();
  for (const auto& reason : cert.reasons) w.value(reason);
  w.end_array();

  w.end_object();
}

void write_certificate_json(std::ostream& os, const Certificate& cert) {
  obs::JsonWriter w(os);
  write_certificate(w, cert);
  os << "\n";
}

}  // namespace spb::verify
