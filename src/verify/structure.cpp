#include "verify/structure.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "mp/mailbox.h"
#include "mp/message.h"

namespace spb::verify {

namespace {

bool is_wildcard(const mp::ScheduleOp& recv) {
  return recv.peer == mp::kAnySource || recv.tag == mp::kAnyTag;
}

std::string class_str(const MsgClass& c) {
  return "(src=" + std::to_string(c.src) + ", tag=" + std::to_string(c.tag) +
         ")";
}

std::string filter_str(Rank src_filter, int tag_filter) {
  std::string src = src_filter == mp::kAnySource ? std::string("*")
                                                 : std::to_string(src_filter);
  std::string tag = tag_filter == mp::kAnyTag ? std::string("*")
                                              : std::to_string(tag_filter);
  return "(src=" + src + ", tag=" + tag + ")";
}

/// True iff every send of the segment carries only chunks from `allowed`.
bool sends_contained(const mp::Schedule& schedule, const Segment& seg,
                     const std::set<Rank>& allowed) {
  for (int sid : seg.send_ids) {
    for (Rank c : schedule.op(sid).chunk_sources) {
      if (!allowed.contains(c)) return false;
    }
  }
  return true;
}

}  // namespace

std::string structure_issue_kind_name(StructureIssue::Kind kind) {
  switch (kind) {
    case StructureIssue::Kind::kUnboundSegment:
      return "unbound-segment";
    case StructureIssue::Kind::kClassCollision:
      return "class-collision";
    case StructureIssue::Kind::kSegmentDependency:
      return "segment-dependency";
    case StructureIssue::Kind::kStealHazard:
      return "steal-hazard";
  }
  return "unknown";
}

std::string Structure::to_string(int max_report) const {
  std::ostringstream os;
  os << (ok() ? "STRUCTURE OK" : "STRUCTURE BROKEN") << ": " << pools.size()
     << " pool(s)" << (rebinding_assumed ? " (dispatch assumption in use)" : "")
     << ", " << issues.size() << " issue(s)\n";
  int shown = 0;
  for (const auto& issue : issues) {
    if (shown++ >= max_report) {
      os << "  ... " << (issues.size() - static_cast<std::size_t>(max_report))
         << " more\n";
      break;
    }
    os << "  [" << structure_issue_kind_name(issue.kind) << "] "
       << issue.message << "\n";
  }
  return os.str();
}

Structure extract_structure(const mp::Schedule& schedule,
                            std::span<const Rank> sources) {
  Structure out;
  out.programs.resize(static_cast<std::size_t>(schedule.rank_count()));
  const auto& ops = schedule.ops();

  auto add_issue = [&out](StructureIssue::Kind kind, std::string msg, int op) {
    out.issues.push_back({kind, std::move(msg), op});
  };

  auto delivery_of = [&](int recv_id) {
    std::set<Rank> d;
    for (Rank c : ops[static_cast<std::size_t>(recv_id)].chunk_sources) {
      d.insert(c);
    }
    return d;
  };

  for (Rank r = 0; r < schedule.rank_count(); ++r) {
    auto& items = out.programs[static_cast<std::size_t>(r)];

    // Chunk sources this rank may hold at the current program point
    // (grow-only over-approximation; repositioning forwards chunks away,
    // but a chunk once seen stays representable).
    std::set<Rank> held;
    if (std::find(sources.begin(), sources.end(), r) != sources.end()) {
      held.insert(r);
    }

    bool pool_open = false;
    Pool pool;
    std::set<Rank> held_before_pool;

    auto close_pool = [&]() {
      if (!pool_open) return;
      // Per-delivery sends must be computable from the one delivery that
      // triggered them.  The final segment is special: program text after
      // the drain loop is indistinguishable from the last iteration in a
      // linear trace, so when the tail only makes sense with the *whole*
      // pool delivered (gather-then-broadcast), it is re-attributed to
      // pool completion instead of flagged.
      std::vector<int> post_pool_sends;
      for (std::size_t i = 0; i < pool.segments.size(); ++i) {
        Segment& seg = pool.segments[i];
        if (seg.send_ids.empty()) continue;
        std::set<Rank> allowed = held_before_pool;
        if (seg.recv_id >= 0) {
          for (Rank c : delivery_of(seg.recv_id)) allowed.insert(c);
        }
        if (sends_contained(schedule, seg, allowed)) continue;
        if (i + 1 == pool.segments.size()) {
          // Tail rescue: hoist past the pool, re-check against everything
          // the pool delivered.
          std::set<Rank> after_pool = held_before_pool;
          for (const Segment& s : pool.segments) {
            for (Rank c : delivery_of(s.recv_id)) after_pool.insert(c);
          }
          if (sends_contained(schedule, seg, after_pool)) {
            post_pool_sends = std::move(seg.send_ids);
            seg.send_ids.clear();
            continue;
          }
        }
        add_issue(StructureIssue::Kind::kSegmentDependency,
                  "rank " + std::to_string(r) + " pool " +
                      filter_str(pool.src_filter, pool.tag_filter) +
                      ": segment of recv op " + std::to_string(seg.recv_id) +
                      " sends chunks delivered by sibling segments — "
                      "segment order would change what it can send",
                  seg.recv_id);
      }

      pool.has_sends = false;
      for (const Segment& seg : pool.segments) {
        if (!seg.send_ids.empty()) pool.has_sends = true;
      }
      if (pool.has_sends) out.rebinding_assumed = true;

      // Class bijection.
      std::map<MsgClass, int> seen;
      for (const Segment& seg : pool.segments) {
        if (seg.cls.src == kNoRank && seg.cls.tag == 0) continue;  // unbound
        auto [it, inserted] = seen.insert({seg.cls, seg.recv_id});
        if (!inserted) {
          add_issue(StructureIssue::Kind::kClassCollision,
                    "rank " + std::to_string(r) + " pool " +
                        filter_str(pool.src_filter, pool.tag_filter) +
                        ": class " + class_str(seg.cls) +
                        " consumed by two segments (recv ops " +
                        std::to_string(it->second) + " and " +
                        std::to_string(seg.recv_id) +
                        ") — delivery order decides which segment runs",
                    seg.recv_id);
        }
      }

      items.push_back(
          {Item::Kind::kPool, pool.segments.front().recv_id,
           static_cast<int>(out.pools.size())});
      // The pool's deliveries are held from here on.
      for (const Segment& seg : pool.segments) {
        for (Rank c : delivery_of(seg.recv_id)) held.insert(c);
      }
      out.pools.push_back(std::move(pool));
      pool = Pool{};
      pool_open = false;
      for (int sid : post_pool_sends) {
        items.push_back({Item::Kind::kSend, sid, -1});
      }
    };

    for (int id : schedule.ops_of_rank(r)) {
      const auto& op = ops[static_cast<std::size_t>(id)];
      if (op.is_send()) {
        if (pool_open) {
          pool.segments.back().send_ids.push_back(id);
        } else {
          items.push_back({Item::Kind::kSend, id, -1});
        }
        continue;
      }
      if (!is_wildcard(op)) {
        close_pool();
        items.push_back({Item::Kind::kPinnedRecv, id, -1});
        for (Rank c : op.chunk_sources) held.insert(c);
        continue;
      }
      // Wildcard receive: extend the open pool or start a new one.
      if (!pool_open || pool.src_filter != op.peer ||
          pool.tag_filter != op.tag) {
        close_pool();
        pool_open = true;
        pool.rank = r;
        pool.src_filter = op.peer;
        pool.tag_filter = op.tag;
        held_before_pool = held;
      }
      Segment seg;
      seg.recv_id = id;
      if (op.match >= 0 && op.match < static_cast<int>(ops.size()) &&
          ops[static_cast<std::size_t>(op.match)].is_send()) {
        const auto& send = ops[static_cast<std::size_t>(op.match)];
        seg.cls = {send.rank, send.tag};
      } else {
        seg.cls = {kNoRank, 0};
        add_issue(StructureIssue::Kind::kUnboundSegment,
                  "rank " + std::to_string(r) + " wildcard recv op " +
                      std::to_string(id) +
                      " has no recorded match — the class that drove this "
                      "segment is unknown",
                  id);
      }
      pool.segments.push_back(std::move(seg));
    }
    close_pool();
  }

  // Steal safety.  Position of every op within its rank's program order.
  std::vector<int> pos(ops.size(), -1);
  for (Rank r = 0; r < schedule.rank_count(); ++r) {
    const auto& rank_ops = schedule.ops_of_rank(r);
    for (std::size_t i = 0; i < rank_ops.size(); ++i) {
      pos[static_cast<std::size_t>(rank_ops[i])] = static_cast<int>(i);
    }
  }
  for (const Pool& p : out.pools) {
    std::set<MsgClass> classes;
    for (const Segment& seg : p.segments) classes.insert(seg.cls);
    const int pool_start = pos[static_cast<std::size_t>(p.segments.front().recv_id)];
    for (const auto& op : ops) {
      if (!op.is_send() || op.peer != p.rank) continue;
      if (p.src_filter != mp::kAnySource && p.src_filter != op.rank) continue;
      if (p.tag_filter != mp::kAnyTag && p.tag_filter != op.tag) continue;
      const MsgClass c{op.rank, op.tag};
      if (classes.contains(c)) continue;  // FIFO pins which one the pool gets
      // Foreign compatible class: every such message must be off the table
      // before the pool's first receive posts, i.e. consumed earlier in
      // this rank's sequential program.
      const bool consumed_before =
          op.match >= 0 && op.match < static_cast<int>(ops.size()) &&
          pos[static_cast<std::size_t>(op.match)] < pool_start;
      if (!consumed_before) {
        add_issue(StructureIssue::Kind::kStealHazard,
                  "rank " + std::to_string(p.rank) + " pool " +
                      filter_str(p.src_filter, p.tag_filter) +
                      " admits foreign class " + class_str(c) + " (send op " +
                      std::to_string(op.id) +
                      ") still in flight when the pool posts — a delivery "
                      "order exists where the pool steals it",
                  op.id);
      }
    }
  }

  return out;
}

}  // namespace spb::verify
