#include "verify/explore.h"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace spb::verify {

namespace {

constexpr std::size_t kMaxPoolSegments = 64;  // mask width

struct SegmentPlan {
  int cid = -1;                // class the recorded run delivered here
  std::vector<int> send_cids;  // classes this segment issues on delivery
};

struct PoolPlan {
  std::vector<SegmentPlan> segments;
};

struct ItemPlan {
  Item::Kind kind = Item::Kind::kSend;
  int cid = -1;   // kSend: issued class; kPinnedRecv: consumed class
  int pool = -1;  // kPool: index into Model::pools
};

struct Model {
  int rank_count = 0;
  std::vector<std::vector<ItemPlan>> items;
  /// send_free_from[r][i]: rank r's program from item i on issues no
  /// sends — the rank is a pure drain and is frozen during exploration.
  std::vector<std::vector<char>> send_free_from;
  std::vector<PoolPlan> pools;
  std::vector<std::string> class_names;  // per cid, for witnesses
  int class_count = 0;
};

struct State {
  std::vector<int> idx;             // per rank: current item
  std::vector<std::uint64_t> mask;  // per rank: consumed pool segments
  std::vector<int> pending;         // per class: issued minus consumed
};

class Explorer {
 public:
  Explorer(const Model& model, const ExploreOptions& options)
      : m_(model), opt_(options) {}

  ExploreResult run() {
    State st;
    st.idx.assign(static_cast<std::size_t>(m_.rank_count), 0);
    st.mask.assign(static_cast<std::size_t>(m_.rank_count), 0);
    st.pending.assign(static_cast<std::size_t>(m_.class_count), 0);
    dfs(std::move(st));
    result_.states = visited_.size();
    result_.exhaustive = !cap_hit_ && !result_.deadlock_found;
    result_.deterministic = result_.exhaustive && result_.terminals >= 1 &&
                            anomaly_.empty();
    if (cap_hit_) {
      result_.note = "state budget exhausted at " +
                     std::to_string(opt_.max_states) + " lumped states";
    } else if (!anomaly_.empty()) {
      result_.note = anomaly_;
    }
    return result_;
  }

 private:
  bool rank_done(const State& st, int r) const {
    return st.idx[static_cast<std::size_t>(r)] >=
           static_cast<int>(m_.items[static_cast<std::size_t>(r)].size());
  }

  bool rank_frozen(const State& st, int r) const {
    return m_.send_free_from[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(
                                st.idx[static_cast<std::size_t>(r)])] != 0;
  }

  void consume(State& st, int r, const PoolPlan& pool, int seg) const {
    const SegmentPlan& sp = pool.segments[static_cast<std::size_t>(seg)];
    --st.pending[static_cast<std::size_t>(sp.cid)];
    st.mask[static_cast<std::size_t>(r)] |= std::uint64_t{1} << seg;
    for (int c : sp.send_cids) ++st.pending[static_cast<std::size_t>(c)];
  }

  /// Unconsumed segments whose class has a pending message.
  std::vector<int> available(const State& st, int r,
                             const PoolPlan& pool) const {
    std::vector<int> avail;
    const std::uint64_t mask = st.mask[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < pool.segments.size(); ++i) {
      if ((mask >> i) & 1) continue;
      if (st.pending[static_cast<std::size_t>(pool.segments[i].cid)] > 0) {
        avail.push_back(static_cast<int>(i));
      }
    }
    return avail;
  }

  /// Deterministic moves to fixpoint: issue sends (eager), consume pinned
  /// receives (FIFO-unique), take forced single-choice pool deliveries.
  /// Frozen (send-free-remainder) ranks do not move at all.
  void auto_advance(State& st) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (int r = 0; r < m_.rank_count; ++r) {
        const auto& items = m_.items[static_cast<std::size_t>(r)];
        while (!rank_done(st, r) && !rank_frozen(st, r)) {
          int& idx = st.idx[static_cast<std::size_t>(r)];
          const ItemPlan& it = items[static_cast<std::size_t>(idx)];
          if (it.kind == Item::Kind::kSend) {
            ++st.pending[static_cast<std::size_t>(it.cid)];
            ++idx;
            changed = true;
            continue;
          }
          if (it.kind == Item::Kind::kPinnedRecv) {
            if (st.pending[static_cast<std::size_t>(it.cid)] <= 0) break;
            --st.pending[static_cast<std::size_t>(it.cid)];
            ++idx;
            changed = true;
            continue;
          }
          const PoolPlan& pool = m_.pools[static_cast<std::size_t>(it.pool)];
          if (std::popcount(st.mask[static_cast<std::size_t>(r)]) ==
              static_cast<int>(pool.segments.size())) {
            st.mask[static_cast<std::size_t>(r)] = 0;
            ++idx;
            changed = true;
            continue;
          }
          const std::vector<int> avail = available(st, r, pool);
          if (avail.size() != 1) break;  // 0 = parked, >=2 = branch point
          consume(st, r, pool, avail.front());
          changed = true;
        }
      }
    }
  }

  std::string encode(const State& st) const {
    std::string key;
    key.reserve(st.idx.size() * 12);
    for (std::size_t r = 0; r < st.idx.size(); ++r) {
      const auto idx = static_cast<std::uint32_t>(st.idx[r]);
      for (int b = 0; b < 4; ++b) {
        key.push_back(static_cast<char>((idx >> (8 * b)) & 0xff));
      }
      for (int b = 0; b < 8; ++b) {
        key.push_back(static_cast<char>((st.mask[r] >> (8 * b)) & 0xff));
      }
    }
    return key;
  }

  void describe_parked(const State& st, int r, std::ostringstream& os) const {
    const auto& items = m_.items[static_cast<std::size_t>(r)];
    const int idx = st.idx[static_cast<std::size_t>(r)];
    os << "\n  rank " << r << " parked at item " << idx << "/" << items.size();
    const ItemPlan& it = items[static_cast<std::size_t>(idx)];
    if (it.kind == Item::Kind::kPinnedRecv) {
      os << ": pinned recv waiting for "
         << m_.class_names[static_cast<std::size_t>(it.cid)];
      return;
    }
    if (it.kind != Item::Kind::kPool) return;
    const PoolPlan& pool = m_.pools[static_cast<std::size_t>(it.pool)];
    os << ": pool waiting for";
    const std::uint64_t mask = st.mask[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < pool.segments.size(); ++i) {
      if ((mask >> i) & 1) continue;
      os << " "
         << m_.class_names[static_cast<std::size_t>(pool.segments[i].cid)];
    }
  }

  void record_deadlock(const State& st, std::string_view how) {
    if (result_.deadlock_found) return;
    result_.deadlock_found = true;
    std::ostringstream os;
    os << "stuck state (" << how << "):";
    for (int r = 0; r < m_.rank_count; ++r) {
      if (!rank_done(st, r)) describe_parked(st, r, os);
    }
    result_.deadlock_witness = os.str();
  }

  /// At the unique all-active-done state, frozen drains are resolved
  /// directly: every remaining receive must have supply, in any order —
  /// drains issue nothing, so they cannot feed each other.
  void resolve_passive(State st) {
    int frozen = 0;
    for (int r = 0; r < m_.rank_count; ++r) {
      if (rank_done(st, r)) continue;
      ++frozen;
      const auto& items = m_.items[static_cast<std::size_t>(r)];
      while (!rank_done(st, r)) {
        int& idx = st.idx[static_cast<std::size_t>(r)];
        const ItemPlan& it = items[static_cast<std::size_t>(idx)];
        if (it.kind == Item::Kind::kPinnedRecv) {
          if (st.pending[static_cast<std::size_t>(it.cid)] <= 0) {
            record_deadlock(st, "drain starvation");
            return;
          }
          --st.pending[static_cast<std::size_t>(it.cid)];
          ++idx;
          continue;
        }
        SPB_CHECK_MSG(it.kind == Item::Kind::kPool,
                      "send item in a send-free remainder");
        const PoolPlan& pool = m_.pools[static_cast<std::size_t>(it.pool)];
        const std::uint64_t mask = st.mask[static_cast<std::size_t>(r)];
        for (std::size_t i = 0; i < pool.segments.size(); ++i) {
          if ((mask >> i) & 1) continue;
          if (st.pending[static_cast<std::size_t>(pool.segments[i].cid)] <=
              0) {
            record_deadlock(st, "drain starvation");
            return;
          }
          --st.pending[static_cast<std::size_t>(pool.segments[i].cid)];
        }
        st.mask[static_cast<std::size_t>(r)] = 0;
        ++idx;
      }
    }
    result_.passive_ranks = std::max(result_.passive_ranks, frozen);
    ++result_.terminals;
    for (std::size_t c = 0; c < st.pending.size(); ++c) {
      if (st.pending[c] != 0 && anomaly_.empty()) {
        anomaly_ = "terminal state leaves " + std::to_string(st.pending[c]) +
                   " undelivered message(s) of class " + m_.class_names[c];
      }
    }
  }

  void dfs(State st) {
    if (cap_hit_ || result_.deadlock_found) return;
    auto_advance(st);
    if (!visited_.insert(encode(st)).second) return;
    if (visited_.size() > opt_.max_states) {
      cap_hit_ = true;
      return;
    }

    int branch_rank = -1;
    std::vector<int> branch_avail;
    bool all_active_done = true;
    for (int r = 0; r < m_.rank_count; ++r) {
      if (rank_done(st, r) || rank_frozen(st, r)) continue;
      all_active_done = false;
      if (branch_rank >= 0) continue;
      const ItemPlan& it =
          m_.items[static_cast<std::size_t>(r)]
                  [static_cast<std::size_t>(st.idx[static_cast<std::size_t>(r)])];
      if (it.kind != Item::Kind::kPool) continue;  // parked pinned recv
      std::vector<int> avail =
          available(st, r, m_.pools[static_cast<std::size_t>(it.pool)]);
      if (avail.size() >= 2) {
        branch_rank = r;
        branch_avail = std::move(avail);
      }
    }

    if (branch_rank >= 0) {
      // Persistent set: pool moves on other ranks stay enabled whatever
      // this rank does, so exploring this rank's choices alone is sound.
      ++result_.branch_points;
      const ItemPlan& it =
          m_.items[static_cast<std::size_t>(branch_rank)][static_cast<std::size_t>(
              st.idx[static_cast<std::size_t>(branch_rank)])];
      const PoolPlan& pool = m_.pools[static_cast<std::size_t>(it.pool)];
      for (int seg : branch_avail) {
        State next = st;
        consume(next, branch_rank, pool, seg);
        dfs(std::move(next));
        if (cap_hit_ || result_.deadlock_found) return;
      }
      return;
    }

    if (!all_active_done) {
      record_deadlock(st, "no rank can move");
      return;
    }
    resolve_passive(std::move(st));
  }

  const Model& m_;
  const ExploreOptions& opt_;
  ExploreResult result_;
  std::unordered_set<std::string> visited_;
  std::string anomaly_;
  bool cap_hit_ = false;
};

/// Lowers the schedule + structure into the class-indexed model the
/// explorer walks.  Returns false (with a note) when a pool exceeds the
/// segment-mask width.
bool build_model(const mp::Schedule& schedule, const Structure& structure,
                 Model& model, std::string& note) {
  model.rank_count = schedule.rank_count();
  const auto& ops = schedule.ops();

  std::map<std::tuple<Rank, Rank, int>, int> class_ids;
  auto cid_of = [&](Rank dst, Rank src, int tag) {
    auto [it, inserted] =
        class_ids.insert({{dst, src, tag}, model.class_count});
    if (inserted) {
      ++model.class_count;
      model.class_names.push_back("(" + std::to_string(src) + " -> " +
                                  std::to_string(dst) + ", tag " +
                                  std::to_string(tag) + ")");
    }
    return it->second;
  };

  for (const Pool& pool : structure.pools) {
    if (pool.segments.size() > kMaxPoolSegments) {
      note = "pool on rank " + std::to_string(pool.rank) + " has " +
             std::to_string(pool.segments.size()) +
             " segments, beyond the segment-mask width";
      return false;
    }
    PoolPlan plan;
    for (const Segment& seg : pool.segments) {
      SegmentPlan sp;
      // An unbound class (mutated schedule) gets a supply-less class id:
      // the pool then parks forever and the explorer reports a deadlock.
      sp.cid = cid_of(pool.rank, seg.cls.src, seg.cls.tag);
      for (int sid : seg.send_ids) {
        const auto& send = ops[static_cast<std::size_t>(sid)];
        sp.send_cids.push_back(cid_of(send.peer, send.rank, send.tag));
      }
      plan.segments.push_back(std::move(sp));
    }
    model.pools.push_back(std::move(plan));
  }

  model.items.resize(static_cast<std::size_t>(model.rank_count));
  model.send_free_from.resize(static_cast<std::size_t>(model.rank_count));
  for (Rank r = 0; r < model.rank_count; ++r) {
    const auto& program = structure.programs[static_cast<std::size_t>(r)];
    auto& items = model.items[static_cast<std::size_t>(r)];
    for (const Item& item : program) {
      ItemPlan ip;
      ip.kind = item.kind;
      if (item.kind == Item::Kind::kSend) {
        const auto& op = ops[static_cast<std::size_t>(item.op)];
        ip.cid = cid_of(op.peer, op.rank, op.tag);
      } else if (item.kind == Item::Kind::kPinnedRecv) {
        const auto& op = ops[static_cast<std::size_t>(item.op)];
        ip.cid = cid_of(op.rank, op.peer, op.tag);
      } else {
        ip.pool = item.pool;
      }
      items.push_back(ip);
    }
    auto& free_from = model.send_free_from[static_cast<std::size_t>(r)];
    free_from.assign(items.size() + 1, 1);
    for (std::size_t i = items.size(); i-- > 0;) {
      bool has_sends = false;
      if (items[i].kind == Item::Kind::kSend) {
        has_sends = true;
      } else if (items[i].kind == Item::Kind::kPool) {
        const PoolPlan& pool =
            model.pools[static_cast<std::size_t>(items[i].pool)];
        for (const SegmentPlan& sp : pool.segments) {
          if (!sp.send_cids.empty()) has_sends = true;
        }
      }
      free_from[i] =
          static_cast<char>(!has_sends && free_from[i + 1] != 0 ? 1 : 0);
    }
  }
  return true;
}

}  // namespace

ExploreResult explore(const mp::Schedule& schedule, const Structure& structure,
                      const ExploreOptions& options) {
  ExploreResult bail;
  Model model;
  if (!build_model(schedule, structure, model, bail.note)) {
    return bail;
  }
  return Explorer(model, options).run();
}

}  // namespace spb::verify
