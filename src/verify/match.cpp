#include "verify/match.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "mp/mailbox.h"
#include "mp/message.h"

namespace spb::verify {

namespace {

std::string op_brief(const mp::ScheduleOp& op) {
  std::ostringstream os;
  os << "rank " << op.rank << " step " << op.step << " "
     << (op.is_send() ? "send" : "recv") << " (peer=" << op.peer
     << ", tag=" << op.tag << ")";
  return os.str();
}

bool filter_admits(const mp::ScheduleOp& recv, const mp::ScheduleOp& send) {
  if (recv.peer != mp::kAnySource && recv.peer != send.rank) return false;
  if (recv.tag != mp::kAnyTag && recv.tag != send.tag) return false;
  return send.peer == recv.rank;
}

}  // namespace

std::string match_issue_kind_name(MatchIssue::Kind kind) {
  switch (kind) {
    case MatchIssue::Kind::kUnconsumedSend:
      return "unconsumed-send";
    case MatchIssue::Kind::kUnmatchedRecv:
      return "unmatched-recv";
    case MatchIssue::Kind::kDanglingEdge:
      return "dangling-edge";
    case MatchIssue::Kind::kBrokenBijection:
      return "broken-bijection";
    case MatchIssue::Kind::kFilterViolation:
      return "filter-violation";
    case MatchIssue::Kind::kSizeDisagreement:
      return "size-disagreement";
    case MatchIssue::Kind::kFifoViolation:
      return "fifo-violation";
  }
  return "unknown";
}

std::string MatchCheck::to_string(int max_report) const {
  std::ostringstream os;
  os << (ok() ? "MATCH OK" : "MATCH BROKEN") << ": " << sends << " sends, "
     << recvs << " recvs (" << wildcard_recvs << " wildcard), "
     << matched_pairs << " matched pairs, " << issues.size() << " issue(s)\n";
  int shown = 0;
  for (const auto& issue : issues) {
    if (shown++ >= max_report) {
      os << "  ... " << (issues.size() - static_cast<std::size_t>(max_report))
         << " more\n";
      break;
    }
    os << "  [" << match_issue_kind_name(issue.kind) << "] " << issue.message
       << "\n";
  }
  return os.str();
}

MatchCheck check_match_graph(const mp::Schedule& schedule) {
  MatchCheck out;
  const auto& ops = schedule.ops();
  const int n = static_cast<int>(ops.size());

  auto add = [&out](MatchIssue::Kind kind, std::string msg, int op) {
    out.issues.push_back({kind, std::move(msg), op});
  };

  auto valid_id = [n](int id) { return id >= 0 && id < n; };

  for (const auto& op : ops) {
    if (op.is_send()) {
      ++out.sends;
      if (op.match < 0) {
        add(MatchIssue::Kind::kUnconsumedSend,
            op_brief(op) + ": message never consumed by any receive", op.id);
        continue;
      }
      if (!valid_id(op.match) || !ops[static_cast<std::size_t>(op.match)].is_recv()) {
        add(MatchIssue::Kind::kDanglingEdge,
            op_brief(op) + ": match edge points at op " +
                std::to_string(op.match) + " which is not a receive",
            op.id);
        continue;
      }
      const auto& recv = ops[static_cast<std::size_t>(op.match)];
      if (recv.match != op.id) {
        add(MatchIssue::Kind::kBrokenBijection,
            op_brief(op) + ": claims recv op " + std::to_string(op.match) +
                " but that receive matched send op " +
                std::to_string(recv.match),
            op.id);
        continue;
      }
      ++out.matched_pairs;
      if (!filter_admits(recv, op)) {
        add(MatchIssue::Kind::kFilterViolation,
            op_brief(recv) + " consumed " + op_brief(op) +
                " which its (src, tag) filter does not admit",
            recv.id);
      }
      if (recv.wire_bytes != op.wire_bytes) {
        add(MatchIssue::Kind::kSizeDisagreement,
            op_brief(op) + ": sent " + std::to_string(op.wire_bytes) +
                "B but the receive recorded " +
                std::to_string(recv.wire_bytes) + "B",
            op.id);
      }
    } else {
      ++out.recvs;
      if (op.peer == mp::kAnySource || op.tag == mp::kAnyTag) {
        ++out.wildcard_recvs;
      }
      if (!op.completed || op.match < 0) {
        add(MatchIssue::Kind::kUnmatchedRecv,
            op_brief(op) + (op.completed
                                ? ": receive has no matched send on record"
                                : ": receive never completed"),
            op.id);
        continue;
      }
      if (!valid_id(op.match) || !ops[static_cast<std::size_t>(op.match)].is_send()) {
        add(MatchIssue::Kind::kDanglingEdge,
            op_brief(op) + ": match edge points at op " +
                std::to_string(op.match) + " which is not a send",
            op.id);
        continue;
      }
      const auto& send = ops[static_cast<std::size_t>(op.match)];
      if (send.match != op.id) {
        add(MatchIssue::Kind::kBrokenBijection,
            op_brief(op) + ": claims send op " + std::to_string(op.match) +
                " but that send was consumed by recv op " +
                std::to_string(send.match),
            op.id);
      }
    }
  }

  // FIFO safety.  The mailbox delivers one (src, dst, tag) channel in send
  // order, so the k-th send of a channel must be consumed by the k-th
  // receive (in the destination's program order) that took a message from
  // that channel — regardless of which filters those receives used.
  std::map<std::tuple<Rank, Rank, int>, std::vector<int>> channel_sends;
  for (const auto& op : ops) {
    if (op.is_send()) {
      channel_sends[{op.rank, op.peer, op.tag}].push_back(op.id);
    }
  }
  std::map<std::tuple<Rank, Rank, int>, std::vector<int>> channel_recvs;
  for (Rank r = 0; r < schedule.rank_count(); ++r) {
    for (int id : schedule.ops_of_rank(r)) {
      const auto& op = ops[static_cast<std::size_t>(id)];
      if (!op.is_recv() || op.match < 0 || !valid_id(op.match)) continue;
      const auto& send = ops[static_cast<std::size_t>(op.match)];
      if (!send.is_send()) continue;
      channel_recvs[{send.rank, send.peer, send.tag}].push_back(id);
    }
  }
  for (const auto& [channel, send_ids] : channel_sends) {
    const auto it = channel_recvs.find(channel);
    if (it == channel_recvs.end()) continue;
    const auto& recv_ids = it->second;
    const std::size_t k = std::min(send_ids.size(), recv_ids.size());
    for (std::size_t i = 0; i < k; ++i) {
      const auto& recv = ops[static_cast<std::size_t>(recv_ids[i])];
      if (recv.match != send_ids[i]) {
        add(MatchIssue::Kind::kFifoViolation,
            op_brief(recv) + ": consumed send op " +
                std::to_string(recv.match) + " but FIFO order on channel (" +
                std::to_string(std::get<0>(channel)) + " -> " +
                std::to_string(std::get<1>(channel)) + ", tag " +
                std::to_string(std::get<2>(channel)) +
                ") requires send op " + std::to_string(send_ids[i]),
            recv.id);
      }
    }
  }

  return out;
}

DeadlockCheck check_deadlock_free(const mp::Schedule& schedule) {
  DeadlockCheck out;
  const auto& ops = schedule.ops();
  const int n = static_cast<int>(ops.size());

  // Edges point from an op to what must happen before it: the previous op
  // on the same rank, and — for a receive — the send it consumed.  A cycle
  // in this graph is a circular wait.
  std::vector<std::vector<int>> deps(static_cast<std::size_t>(n));
  for (Rank r = 0; r < schedule.rank_count(); ++r) {
    const auto& rank_ops = schedule.ops_of_rank(r);
    for (std::size_t i = 1; i < rank_ops.size(); ++i) {
      deps[static_cast<std::size_t>(rank_ops[i])].push_back(rank_ops[i - 1]);
    }
  }
  for (const auto& op : ops) {
    if (op.is_recv() && op.match >= 0 && op.match < n &&
        ops[static_cast<std::size_t>(op.match)].is_send()) {
      deps[static_cast<std::size_t>(op.id)].push_back(op.match);
    }
  }

  // Iterative DFS with colors; on hitting a gray node, walk the parent
  // chain back to it to extract the cycle.
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> color(static_cast<std::size_t>(n), kWhite);
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n && out.cycle.empty(); ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = kGray;
    while (!stack.empty() && out.cycle.empty()) {
      auto& [u, next] = stack.back();
      const auto& adj = deps[static_cast<std::size_t>(u)];
      if (next < adj.size()) {
        const int v = adj[next++];
        if (color[static_cast<std::size_t>(v)] == kWhite) {
          color[static_cast<std::size_t>(v)] = kGray;
          parent[static_cast<std::size_t>(v)] = u;
          stack.push_back({v, 0});
        } else if (color[static_cast<std::size_t>(v)] == kGray) {
          out.cycle.push_back(v);
          for (int w = u; w != v; w = parent[static_cast<std::size_t>(w)]) {
            out.cycle.push_back(w);
          }
          std::reverse(out.cycle.begin(), out.cycle.end());
        }
      } else {
        color[static_cast<std::size_t>(u)] = kBlack;
        stack.pop_back();
      }
    }
  }

  if (!out.cycle.empty()) {
    std::ostringstream os;
    os << "wait-for cycle of " << out.cycle.size() << " ops:";
    for (int id : out.cycle) {
      os << "\n  " << ops[static_cast<std::size_t>(id)].to_string();
    }
    out.message = os.str();
    return out;
  }

  // Acyclic: longest chain via DP over a reverse-postorder (colors are all
  // black now, so a second pass computing depth memoized works directly).
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  for (int root = 0; root < n; ++root) {
    if (depth[static_cast<std::size_t>(root)] >= 0) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& adj = deps[static_cast<std::size_t>(u)];
      if (next < adj.size()) {
        const int v = adj[next++];
        if (depth[static_cast<std::size_t>(v)] < 0) stack.push_back({v, 0});
      } else {
        int d = 1;
        for (int v : adj) {
          d = std::max(d, depth[static_cast<std::size_t>(v)] + 1);
        }
        depth[static_cast<std::size_t>(u)] = d;
        stack.pop_back();
      }
    }
  }
  for (int d : depth) out.critical_depth = std::max(out.critical_depth, d);
  return out;
}

}  // namespace spb::verify
