// Gather-to-root: every sender transmits its payload directly to the root,
// which combines them in arrival order.  This is deliberately the naive
// pattern of the paper's 2-Step algorithm — the root's ejection channel is
// the hot spot that makes 2-Step uncompetitive on the Paragon.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "mp/runtime.h"
#include "sim/task.h"

namespace spb::coll {

/// Runs rank `comm.rank()`'s part of the gather.  `senders` is the sorted
/// list of ranks holding data (the root may or may not be among them);
/// `data` is this rank's payload (the root accumulates into it, senders
/// keep their copy).  Marks one metrics iteration.  `tag` stamps the
/// gather's traffic — hierarchical algorithms pass mp::tags::kGather so
/// the root's any-source receives cannot match a later phase's kData
/// messages arriving early.
sim::Task gather_to_root(mp::Comm& comm, Rank root,
                         std::shared_ptr<const std::vector<Rank>> senders,
                         mp::Payload& data, int tag = mp::tags::kData);

}  // namespace spb::coll
