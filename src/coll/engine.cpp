#include "coll/engine.h"

#include <utility>

#include "common/check.h"

namespace spb::coll {

sim::Task run_halving(mp::Comm& comm,
                      std::shared_ptr<const std::vector<Rank>> seq,
                      int my_pos,
                      std::shared_ptr<const HalvingSchedule> sched,
                      mp::Payload& data, HalvingOptions opts) {
  SPB_REQUIRE(seq != nullptr && sched != nullptr,
              "run_halving needs a sequence and a schedule");
  SPB_REQUIRE(static_cast<int>(seq->size()) == sched->size(),
              "sequence/schedule size mismatch");
  SPB_REQUIRE(my_pos >= 0 && my_pos < sched->size(), "position out of range");
  SPB_REQUIRE((*seq)[static_cast<std::size_t>(my_pos)] == comm.rank(),
              "rank " << comm.rank() << " executing position " << my_pos
                      << " that belongs to rank "
                      << (*seq)[static_cast<std::size_t>(my_pos)]);

  if (opts.phase != nullptr) comm.begin_phase(opts.phase);
  for (int iter = 0; iter < sched->iterations(); ++iter) {
    const auto& actions = sched->actions(iter, my_pos);
    if (!actions.empty()) {
      // Sends ship the payload as of the start of the iteration; data
      // merged during this iteration travels in later iterations.
      const mp::Payload outgoing = data;
      for (const Action& a : actions) {
        if (a.type != Action::Type::kSend) continue;
        SPB_CHECK_MSG(!outgoing.empty(),
                      "schedule marked an empty rank as a sender");
        co_await comm.send((*seq)[static_cast<std::size_t>(a.peer)],
                           outgoing);
      }
      for (const Action& a : actions) {
        if (a.type != Action::Type::kRecv) continue;
        mp::Message m =
            co_await comm.recv((*seq)[static_cast<std::size_t>(a.peer)]);
        // Odd segment sizes can route the same original to a rank along
        // two converging paths; dedup keeps the payload canonical while
        // the (genuinely transferred) duplicate bytes stay accounted.
        if (opts.combine_cost) {
          co_await comm.merge(data, std::move(m.payload), /*dedup=*/true);
        } else {
          data.merge_dedup(m.payload);
        }
      }
    }
    if (opts.mark_iterations) comm.mark_iteration();
  }
  if (opts.phase != nullptr) comm.end_phase();
}

}  // namespace spb::coll
