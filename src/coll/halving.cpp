#include "coll/halving.h"

#include <algorithm>

#include "common/check.h"
#include "common/math.h"

namespace spb::coll {

namespace {

struct Segment {
  int lo = 0;
  int n = 0;
};

}  // namespace

HalvingSchedule HalvingSchedule::compute(
    const std::vector<char>& initially_active) {
  SPB_REQUIRE(!initially_active.empty(), "schedule needs >= 1 position");
  HalvingSchedule s;
  s.n_ = static_cast<int>(initially_active.size());
  s.iterations_ = s.n_ > 1 ? ilog2_ceil(s.n_) : 0;
  s.active_.push_back(initially_active);
  s.acts_.assign(static_cast<std::size_t>(s.iterations_),
                 std::vector<std::vector<Action>>(
                     static_cast<std::size_t>(s.n_)));

  std::vector<Segment> segments{{0, s.n_}};
  std::vector<char> active = initially_active;

  for (int iter = 0; iter < s.iterations_; ++iter) {
    std::vector<char> next = active;
    auto& iter_acts = s.acts_[static_cast<std::size_t>(iter)];

    // Emits the actions for "a talks to b": exchange when both are active,
    // a one-sided transfer when only one is.
    const auto connect = [&](int a, int b) {
      const bool a_has = active[static_cast<std::size_t>(a)] != 0;
      const bool b_has = active[static_cast<std::size_t>(b)] != 0;
      if (a_has) {
        iter_acts[static_cast<std::size_t>(a)].push_back(
            {Action::Type::kSend, b});
        iter_acts[static_cast<std::size_t>(b)].push_back(
            {Action::Type::kRecv, a});
        if (!b_has) {
          next[static_cast<std::size_t>(b)] = 1;
          s.activation_order_.push_back(b);
        }
      }
      if (b_has) {
        iter_acts[static_cast<std::size_t>(b)].push_back(
            {Action::Type::kSend, a});
        iter_acts[static_cast<std::size_t>(a)].push_back(
            {Action::Type::kRecv, b});
        if (!a_has) {
          next[static_cast<std::size_t>(a)] = 1;
          s.activation_order_.push_back(a);
        }
      }
    };

    // One-way push a -> b (the odd-segment fix-up).
    const auto push = [&](int a, int b) {
      if (active[static_cast<std::size_t>(a)] == 0) return;
      iter_acts[static_cast<std::size_t>(a)].push_back(
          {Action::Type::kSend, b});
      iter_acts[static_cast<std::size_t>(b)].push_back(
          {Action::Type::kRecv, a});
      if (next[static_cast<std::size_t>(b)] == 0) {
        next[static_cast<std::size_t>(b)] = 1;
        s.activation_order_.push_back(b);
      }
    };

    std::vector<Segment> children;
    for (const Segment& seg : segments) {
      if (seg.n <= 1) {
        children.push_back(seg);
        continue;
      }
      const int h = static_cast<int>(ceil_div(seg.n, 2));
      for (int i = 0; i < seg.n - h; ++i)
        connect(seg.lo + i, seg.lo + h + i);
      if (seg.n % 2 != 0) push(seg.lo + h - 1, seg.lo + h);
      children.push_back({seg.lo, h});
      children.push_back({seg.lo + h, seg.n - h});
    }

    // Sort receives after sends so the executor's two passes see them in a
    // stable order (connect/push already append sends before the matching
    // receives per position, but a position can appear in several pairs).
    for (auto& actions : iter_acts)
      std::stable_sort(actions.begin(), actions.end(),
                       [](const Action& a, const Action& b) {
                         return a.type == Action::Type::kSend &&
                                b.type == Action::Type::kRecv;
                       });

    segments = std::move(children);
    active = next;
    s.active_.push_back(active);
  }
  return s;
}

const std::vector<Action>& HalvingSchedule::actions(int iter, int pos) const {
  SPB_REQUIRE(iter >= 0 && iter < iterations_, "iteration out of range");
  SPB_REQUIRE(pos >= 0 && pos < n_, "position out of range");
  return acts_[static_cast<std::size_t>(iter)][static_cast<std::size_t>(pos)];
}

const std::vector<char>& HalvingSchedule::active_after(int iter) const {
  SPB_REQUIRE(iter >= 0 && iter <= iterations_, "iteration out of range");
  return active_[static_cast<std::size_t>(iter)];
}

int HalvingSchedule::active_count_after(int iter) const {
  const auto& a = active_after(iter);
  return static_cast<int>(std::count(a.begin(), a.end(), char{1}));
}

std::vector<int> HalvingSchedule::activity_profile(
    const std::vector<char>& active) {
  SPB_REQUIRE(!active.empty(), "profile needs >= 1 position");
  const int n = static_cast<int>(active.size());
  const int iterations = n > 1 ? ilog2_ceil(n) : 0;
  std::vector<char> cur = active;
  std::vector<int> profile;
  profile.reserve(static_cast<std::size_t>(iterations) + 1);
  profile.push_back(
      static_cast<int>(std::count(cur.begin(), cur.end(), char{1})));

  std::vector<Segment> segments{{0, n}};
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<char> next = cur;
    std::vector<Segment> children;
    children.reserve(segments.size() * 2);
    for (const Segment& seg : segments) {
      if (seg.n <= 1) {
        children.push_back(seg);
        continue;
      }
      const int h = static_cast<int>(ceil_div(seg.n, 2));
      for (int i = 0; i < seg.n - h; ++i) {
        const auto a = static_cast<std::size_t>(seg.lo + i);
        const auto b = static_cast<std::size_t>(seg.lo + h + i);
        if (cur[a] || cur[b]) next[a] = next[b] = 1;
      }
      if (seg.n % 2 != 0 &&
          cur[static_cast<std::size_t>(seg.lo + h - 1)]) {
        next[static_cast<std::size_t>(seg.lo + h)] = 1;
      }
      children.push_back({seg.lo, h});
      children.push_back({seg.lo + h, seg.n - h});
    }
    segments = std::move(children);
    cur = std::move(next);
    profile.push_back(
        static_cast<int>(std::count(cur.begin(), cur.end(), char{1})));
  }
  return profile;
}

std::vector<int> HalvingSchedule::spread_order(int n) {
  SPB_REQUIRE(n >= 1, "spread_order needs n >= 1");
  std::vector<char> active(static_cast<std::size_t>(n), 0);
  active[0] = 1;
  const HalvingSchedule s = compute(active);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(0);
  order.insert(order.end(), s.activation_order_.begin(),
               s.activation_order_.end());
  SPB_CHECK_MSG(static_cast<int>(order.size()) == n,
                "spread from position 0 reached " << order.size() << " of "
                                                  << n << " positions");
  return order;
}

}  // namespace spb::coll
