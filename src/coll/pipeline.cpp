#include "coll/pipeline.h"

#include <utility>

#include "common/check.h"
#include "common/math.h"

namespace spb::coll {

BcastTree BcastTree::from_halving(int n, int root_pos) {
  SPB_REQUIRE(n >= 1, "tree needs at least one position");
  SPB_REQUIRE(root_pos >= 0 && root_pos < n, "root out of range");
  std::vector<char> active(static_cast<std::size_t>(n), 0);
  active[static_cast<std::size_t>(root_pos)] = 1;
  const HalvingSchedule sched = HalvingSchedule::compute(active);

  BcastTree t;
  t.root = root_pos;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.assign(static_cast<std::size_t>(n), {});
  for (int iter = 0; iter < sched.iterations(); ++iter) {
    for (int pos = 0; pos < n; ++pos) {
      for (const Action& a : sched.actions(iter, pos)) {
        if (a.type == Action::Type::kSend) {
          t.children[static_cast<std::size_t>(pos)].push_back(a.peer);
        } else {
          SPB_CHECK_MSG(t.parent[static_cast<std::size_t>(pos)] == -1,
                        "position " << pos << " received twice in a single-"
                                       "source halving schedule");
          t.parent[static_cast<std::size_t>(pos)] = a.peer;
        }
      }
    }
  }
  return t;
}

BcastTree BcastTree::binary(int n, int root_pos) {
  SPB_REQUIRE(n >= 1, "tree needs at least one position");
  SPB_REQUIRE(root_pos >= 0 && root_pos < n, "root out of range");
  // Heap-shaped tree over logical indices 0..n-1, then relabel so logical
  // 0 is the root position (all other positions keep their identity by
  // swapping with the position that held logical root_pos... simpler: the
  // logical order is positions rotated so root_pos comes first).
  const auto pos_of = [n, root_pos](int logical) {
    return (logical + root_pos) % n;
  };
  BcastTree t;
  t.root = root_pos;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.assign(static_cast<std::size_t>(n), {});
  for (int j = 0; j < n; ++j) {
    for (int c = 2 * j + 1; c <= 2 * j + 2 && c < n; ++c) {
      const int parent_pos = pos_of(j);
      const int child_pos = pos_of(c);
      t.children[static_cast<std::size_t>(parent_pos)].push_back(child_pos);
      t.parent[static_cast<std::size_t>(child_pos)] = parent_pos;
    }
  }
  return t;
}

sim::Task pipelined_bcast(mp::Comm& comm,
                          std::shared_ptr<const std::vector<Rank>> seq,
                          int my_pos, std::shared_ptr<const BcastTree> tree,
                          mp::Payload& data, Bytes total_wire,
                          Bytes segment_bytes) {
  SPB_REQUIRE(seq != nullptr && tree != nullptr,
              "pipelined_bcast needs a sequence and a tree");
  SPB_REQUIRE(segment_bytes > 0, "segment size must be positive");
  SPB_REQUIRE(total_wire > 0, "broadcast size must be positive");
  const int n = static_cast<int>(seq->size());
  SPB_REQUIRE(my_pos >= 0 && my_pos < n, "position out of range");
  if (n == 1) co_return;

  const int segments = static_cast<int>(
      ceil_div(static_cast<std::int64_t>(total_wire),
               static_cast<std::int64_t>(segment_bytes)));
  const Bytes seg_wire = static_cast<Bytes>(ceil_div(
      static_cast<std::int64_t>(total_wire), segments));

  const auto& children = tree->children[static_cast<std::size_t>(my_pos)];
  const int parent = tree->parent[static_cast<std::size_t>(my_pos)];
  const bool am_root = my_pos == tree->root;
  SPB_CHECK(am_root == (parent == -1));

  for (int k = 0; k < segments; ++k) {
    const bool last = k == segments - 1;
    if (!am_root) {
      mp::Message m = co_await comm.recv(
          (*seq)[static_cast<std::size_t>(parent)], mp::tags::kData);
      if (last) {
        // The final segment carries the payload; a broadcast lands in its
        // destination buffer, so no combining cost — dedup only collapses
        // a source rank's own chunk with the broadcast copy of it.
        data.merge_dedup(m.payload);
      }
    }
    // Earlier segments are timing-bearing filler; the payload rides last.
    for (const int child : children) {
      // Named local, not a ternary temporary in the co_await expression:
      // GCC 12 destroys conditional-expression argument temporaries of a
      // suspended call twice (frame teardown + statement end).
      mp::Payload outgoing;
      if (last) outgoing = data;
      co_await comm.send_sized((*seq)[static_cast<std::size_t>(child)],
                               std::move(outgoing), seg_wire,
                               mp::tags::kData);
    }
    comm.mark_iteration();
  }
}

}  // namespace spb::coll
