#include "coll/barrier.h"

#include "mp/payload.h"

namespace spb::coll {

sim::Task dissemination_barrier(mp::Comm& comm) {
  const int p = comm.size();
  const Rank me = comm.rank();
  // Token payloads carry 1 byte; the source id doubles as the round stamp
  // so the mailbox keeps rounds apart via per-source FIFO.
  for (int step = 1; step < p; step <<= 1) {
    const Rank to = static_cast<Rank>((me + step) % p);
    const Rank from = static_cast<Rank>(((me - step) % p + p) % p);
    // Named local (see pipeline.cpp: GCC 12 mishandles non-trivial prvalue
    // arguments inside co_await expressions).
    mp::Payload token = mp::Payload::original(me, 1);
    co_await comm.send(to, std::move(token));
    (void)co_await comm.recv(from);
  }
}

}  // namespace spb::coll
