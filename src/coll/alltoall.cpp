#include "coll/alltoall.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/math.h"
#include "mp/mailbox.h"

namespace spb::coll {

bool uses_xor_schedule(int n) { return is_pow2(n); }

int exchange_partner(int n, int pos, int t) {
  SPB_REQUIRE(n >= 2, "exchange needs at least two participants");
  SPB_REQUIRE(t >= 1 && t < n, "round " << t << " outside 1.." << (n - 1));
  SPB_REQUIRE(pos >= 0 && pos < n, "position out of range");
  if (uses_xor_schedule(n)) return pos ^ t;
  return (pos + t) % n;
}

sim::Task personalized_exchange(
    mp::Comm& comm, std::shared_ptr<const std::vector<Rank>> seq, int my_pos,
    std::shared_ptr<const std::vector<char>> is_source, mp::Payload& data) {
  SPB_REQUIRE(seq != nullptr && is_source != nullptr,
              "exchange needs a sequence and source flags");
  SPB_REQUIRE(seq->size() == is_source->size(),
              "sequence/source-flag size mismatch");
  const int n = static_cast<int>(seq->size());
  SPB_REQUIRE(my_pos >= 0 && my_pos < n, "position out of range");
  SPB_REQUIRE((*seq)[static_cast<std::size_t>(my_pos)] == comm.rank(),
              "rank/position mismatch in personalized_exchange");

  const bool am_source = (*is_source)[static_cast<std::size_t>(my_pos)] != 0;
  SPB_CHECK_MSG(am_source == !data.empty(),
                "rank " << comm.rank()
                        << " source flag disagrees with its payload");

  // All sends first: round t pushes my original to my round-t partner.
  // The original is a copy of the initial payload — later merges must not
  // leak into outgoing messages.
  if (am_source && n >= 2) {
    const mp::Payload original = data;
    for (int t = 1; t < n; ++t) {
      const int peer = exchange_partner(n, my_pos, t);
      co_await comm.send((*seq)[static_cast<std::size_t>(peer)], original);
      comm.mark_iteration();
    }
  }

  // Then drain the expected originals, in whatever order they arrive.  No
  // combining cost: the algorithm never merges messages into bigger ones.
  int expected = static_cast<int>(
      std::count(is_source->begin(), is_source->end(), char{1}));
  if (am_source) --expected;
  for (int k = 0; k < expected; ++k) {
    mp::Message m = co_await comm.recv(mp::kAnySource, mp::tags::kData);
    data.merge(m.payload);
    comm.mark_iteration();
  }
}

}  // namespace spb::coll
