#include "coll/gather.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "mp/mailbox.h"

namespace spb::coll {

sim::Task gather_to_root(mp::Comm& comm, Rank root,
                         std::shared_ptr<const std::vector<Rank>> senders,
                         mp::Payload& data, int tag) {
  SPB_REQUIRE(senders != nullptr, "gather needs a sender list");
  const Rank me = comm.rank();
  const bool sending =
      std::binary_search(senders->begin(), senders->end(), me);

  if (me == root) {
    int expected = static_cast<int>(senders->size());
    if (sending) --expected;  // the root's own data is already local
    for (int k = 0; k < expected; ++k) {
      mp::Message m = co_await comm.recv(mp::kAnySource, tag);
      // Gatherv semantics: each message lands at its pre-computed offset in
      // the root's buffer — no combining cost, unlike the Br_* merges.
      data.merge(m.payload);
    }
  } else if (sending) {
    co_await comm.send(root, data, tag);
  }
  comm.mark_iteration();
}

}  // namespace spb::coll
