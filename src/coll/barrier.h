// Dissemination barrier: ceil(log2 p) rounds; in round k, rank r signals
// (r + 2^k) mod p and waits for (r - 2^k) mod p.  The paper's algorithms
// avoid global synchronization, but user programs (and the examples) need
// one, and it exercises the runtime's many-small-messages path.
#pragma once

#include "mp/runtime.h"
#include "sim/task.h"

namespace spb::coll {

/// Runs rank `comm.rank()`'s part of a full barrier; returns when every
/// rank is known to have entered it.
sim::Task dissemination_barrier(mp::Comm& comm);

}  // namespace spb::coll
