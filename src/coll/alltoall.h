// Personalized all-to-all exchange schedule (paper reference [8]): the
// message exchange consists of n-1 permutations over n participants.  On
// power-of-two participant counts round t pairs position i with i XOR t (a
// perfect matching); otherwise round t sends to (i + t) mod n and receives
// from (i - t) mod n.
//
// Used by PersAlltoAll / MPI_Alltoall: every *source* pushes its original
// (uncombined) message to every other participant; receives are drained
// after all sends so no round ever waits on a message — the low-wait
// behaviour the paper credits for MPI_Alltoall's T3D win.
//
// Participants are given as a position-indexed rank sequence so the same
// code serves whole-machine runs and the Part_* group runs.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "mp/runtime.h"
#include "sim/task.h"

namespace spb::coll {

/// True when n participants use the XOR matching schedule.
bool uses_xor_schedule(int n);

/// Destination position of position `pos` in round `t` (1 <= t < n).
int exchange_partner(int n, int pos, int t);

/// Runs position `my_pos`'s part of the exchange.  `seq` maps positions to
/// ranks; `is_source[pos]` flags the positions holding an original; `data`
/// is this rank's payload and accumulates everything.  Marks one metrics
/// iteration per send round and per receive.
sim::Task personalized_exchange(
    mp::Comm& comm, std::shared_ptr<const std::vector<Rank>> seq, int my_pos,
    std::shared_ptr<const std::vector<char>> is_source, mp::Payload& data);

}  // namespace spb::coll
