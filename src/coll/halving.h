// The recursive-halving communication structure underlying Br_Lin (paper
// Section 2), as a pure combinatorial schedule — no simulator types here,
// so the ideal-distribution generators can reuse it.
//
// A segment of n positions runs ceil(log2 n) iterations.  In the first
// iteration, with h = ceil(n/2), position i < n-h pairs with position i+h;
// both keep the union of their data (an exchange if both held data, a
// one-sided send if only one did, nothing if neither).  For odd n the last
// position of the first half (h-1) is unpaired; it pushes its data one-way
// to position h so the second half's collective holdings stay complete.
// The segment then splits into [0,h) and [h,n) and recurses.
//
// Invariant (proved by the property tests): if any position of a segment
// holds data at the start of its first iteration, then after the segment's
// iterations every position holds the union of the segment's initial data.
// Applied to the whole machine this is exactly s-to-p broadcasting with
// message combining.
#pragma once

#include <vector>

#include "common/types.h"

namespace spb::coll {

/// One communication action of one position in one iteration, peer given
/// as a position inside the segment.
struct Action {
  enum class Type { kSend, kRecv };
  Type type = Type::kSend;
  int peer = -1;
  bool operator==(const Action&) const = default;
};

class HalvingSchedule {
 public:
  /// Builds the full schedule for `initially_active` (one flag per
  /// position; at least one position, any activity pattern including all-
  /// inactive, which yields an empty schedule).
  static HalvingSchedule compute(const std::vector<char>& initially_active);

  int size() const { return n_; }
  int iterations() const { return iterations_; }

  /// Actions of `pos` in `iter`, sends listed before receives.
  const std::vector<Action>& actions(int iter, int pos) const;

  /// Activity flags after `iter` iterations (iter == 0 gives the initial
  /// flags) — used by tests and by the metric analysis.
  const std::vector<char>& active_after(int iter) const;

  /// Number of active positions after `iter` iterations.
  int active_count_after(int iter) const;

  /// Positions in the order they first become active when the schedule is
  /// run with only position 0 active.  NOTE: a k-prefix of this order is
  /// NOT an ideal k-source placement (e.g. on n = 10 the prefix {0, 5}
  /// pairs in the very first iteration — the paper's R(20)-on-10x10
  /// observation); use dist::ideal_positions for placements.
  static std::vector<int> spread_order(int n);

  /// Active-position counts after each iteration for a given initial
  /// pattern, without materializing actions: profile[t] = active count
  /// after t iterations (profile[0] = initial count).  This is the cheap
  /// objective the ideal-placement search maximizes.
  static std::vector<int> activity_profile(const std::vector<char>& active);

 private:
  int n_ = 0;
  int iterations_ = 0;
  /// acts_[iter][pos] — at most one exchange plus one extra send/recv.
  std::vector<std::vector<std::vector<Action>>> acts_;
  /// active_[iter][pos]; active_[0] is the initial pattern.
  std::vector<std::vector<char>> active_;
  /// Positions in first-activation order (excluding initially active).
  std::vector<int> activation_order_;

  friend std::vector<int> spread_order_impl(int n);
};

}  // namespace spb::coll
