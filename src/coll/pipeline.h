// Segmented, pipelined one-to-all broadcast.
//
// Store-and-forward of a large combined message through a log-depth tree
// serializes the full message on every level — fine for the paper's own
// NX implementation on the Paragon, but vendor-tuned collectives (the
// Cray T3D MPI the paper calls into) pipeline: the message is cut into
// segments and a node forwards segment k while receiving segment k+1, so
// the end-to-end time is roughly depth * segment_cost + size / bandwidth.
//
// Segments are pure timing traffic (sized filler messages); the symbolic
// payload rides the last segment, so the chunk-algebra correctness check
// still sees exactly one delivery per rank.
#pragma once

#include <memory>
#include <vector>

#include "coll/halving.h"
#include "common/types.h"
#include "mp/runtime.h"
#include "sim/task.h"

namespace spb::coll {

/// Broadcast tree extracted from a single-source HalvingSchedule: every
/// position has at most one parent; children are listed in send order
/// (earliest halving iteration first, i.e. biggest subtree first).
struct BcastTree {
  int root = 0;
  std::vector<int> parent;                 // -1 for the root
  std::vector<std::vector<int>> children;  // send order per position

  /// Builds the tree for n positions with the source at position
  /// `root_pos` (the halving pattern the paper's 2-Step broadcast uses).
  /// Fan-out at the root is log2(n) — fine store-and-forward, poor when
  /// pipelining (the root repeats every segment once per child).
  static BcastTree from_halving(int n, int root_pos);

  /// Balanced binary tree rooted at `root_pos`: fan-out 2 everywhere, depth
  /// ceil(log2 n) — the shape vendor collectives pipeline through.
  static BcastTree binary(int n, int root_pos);
};

/// Runs position `my_pos` of a pipelined broadcast of `total_wire` bytes in
/// segments of at most `segment_bytes`.  The root's `data` is the payload;
/// every other rank's `data` receives it (merged without combining cost —
/// a broadcast lands in its destination buffer, it does not combine).
/// Marks one metrics iteration per segment handled.
sim::Task pipelined_bcast(mp::Comm& comm,
                          std::shared_ptr<const std::vector<Rank>> seq,
                          int my_pos, std::shared_ptr<const BcastTree> tree,
                          mp::Payload& data, Bytes total_wire,
                          Bytes segment_bytes);

}  // namespace spb::coll
