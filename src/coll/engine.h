// Coroutine executor for a HalvingSchedule: runs one rank's slice of the
// schedule over the message-passing runtime, combining received messages
// into `data` (with the configured CPU cost).  All Br_* algorithms, the
// one-to-all broadcast and the repositioning algorithms funnel through
// this.
#pragma once

#include <memory>
#include <vector>

#include "coll/halving.h"
#include "common/types.h"
#include "mp/runtime.h"
#include "sim/task.h"

namespace spb::coll {

/// Options for run_halving.
struct HalvingOptions {
  /// Call Comm::mark_iteration() after every halving iteration (the paper's
  /// metric buckets).  Off when a halving phase is embedded in a larger
  /// algorithm that marks its own phases.
  bool mark_iterations = true;
  /// Charge the message-combining CPU cost on merges (Br_* algorithms do;
  /// the paper's PersAlltoAll-style algorithms do not combine).
  bool combine_cost = true;
  /// When set, the whole halving run is bracketed in this named phase
  /// (Comm::begin_phase) so metrics and exported timelines attribute it.
  /// Null = no annotation.  The string must outlive the task (callers pass
  /// literals).
  const char* phase = nullptr;
};

/// Executes position `my_pos` of `sched` where position i of the schedule
/// is rank (*seq)[i].  `data` is the rank's payload, merged in place;
/// it must outlive the task.  Shared pointers keep the schedule alive for
/// the lifetime of all p coroutines.
sim::Task run_halving(mp::Comm& comm,
                      std::shared_ptr<const std::vector<Rank>> seq,
                      int my_pos,
                      std::shared_ptr<const HalvingSchedule> sched,
                      mp::Payload& data, HalvingOptions opts = {});

}  // namespace spb::coll
