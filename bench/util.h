// Shared scaffolding for the figure-reproduction benches: run-and-average
// helpers, series printing, and qualitative shape checks that turn each
// bench into an acceptance test (failed expectations set a non-zero exit
// code but keep printing, so one bad series does not hide the rest).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/str.h"
#include "common/table.h"
#include "options.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace spb::bench {

// Timed runs must not pay schedule-recording or tracing overhead; both are
// opt-in and the benches rely on the default staying off.
static_assert(!stop::RunOptions{}.trace,
              "RunOptions::trace must default to off for timed benches");
static_assert(!stop::RunOptions{}.record_schedule,
              "RunOptions::record_schedule must default to off for timed "
              "benches");
static_assert(!stop::RunOptions{}.faults.any(),
              "RunOptions::faults must default to no-faults so the fault "
              "hooks stay zero-cost in timed benches");
static_assert(!stop::RunOptions{}.link_stats,
              "RunOptions::link_stats must default to off so the network "
              "usage probe stays a null pointer in timed benches");
static_assert(stop::RunOptions{}.sim_threads == 0,
              "RunOptions::sim_threads must default to 0 (the classic "
              "serial loop) so serial benches never pay the sharded "
              "engine's dispatch");

// The fluent RunConfig builder must lower to exactly the default
// RunOptions when nothing is configured — benches that migrate to it pay
// nothing.
static_assert(stop::RunConfig{}.options().verify &&
                  !stop::RunConfig{}.options().trace &&
                  !stop::RunConfig{}.options().record_schedule &&
                  !stop::RunConfig{}.options().link_stats &&
                  !stop::RunConfig{}.options().faults.any() &&
                  stop::RunConfig{}.options().sim_threads == 0,
              "RunConfig{} must lower to the all-off default RunOptions");
static_assert(stop::RunConfig{}.sim_threads(8).options().sim_threads == 8,
              "RunConfig::sim_threads must lower into RunOptions");

/// Milliseconds for one algorithm/problem pair (single deterministic run —
/// the simulator has no noise to average away).
double time_ms(const stop::AlgorithmPtr& alg, const stop::Problem& pb);

/// One cell of a figure sweep: an algorithm on a problem instance.
struct SweepCase {
  stop::AlgorithmPtr algorithm;
  stop::Problem problem;
};

/// Times every case, fanning out over `jobs` worker threads (see
/// bench/sweep_runner.h).  Returns milliseconds in case order; each run is
/// an independent deterministic simulation, so the results are identical
/// for every job count.
std::vector<double> time_ms_sweep(const std::vector<SweepCase>& cases,
                                  int jobs);

/// Worker-thread count for figure benches: the SPB_BENCH_JOBS environment
/// variable when set (0 = all cores), otherwise 1.
int default_jobs();

/// Global pass/fail state of the current bench binary.
class Checker {
 public:
  explicit Checker(std::string bench_name);

  /// Records an expectation; prints PASS/FAIL with the label.
  void expect(bool ok, const std::string& claim);

  /// Ratio check with tolerance: ok iff lo <= a/b <= hi.
  void expect_ratio(double a, double b, double lo, double hi,
                    const std::string& claim);

  /// Exit code for main(): 0 if everything held.
  int exit_code() const;

  int failures() const { return failures_; }

 private:
  std::string name_;
  int checks_ = 0;
  int failures_ = 0;
};

/// Prints a section header.
void section(const std::string& title);

}  // namespace spb::bench
