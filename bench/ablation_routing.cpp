// Ablation: dimension order of the mesh routing (XY vs YX).  The paper's
// conclusions must not hinge on which dimension the wormhole router fixes
// first — the Br_* family's advantage has to survive flipping it.
//
// Finding: the message-combining algorithms are routing-order robust
// (within ~25%), but the permutation-flood PersAlltoAll swings by ±60%
// (its p-1 shift permutations align with whichever dimension goes first)
// — one more way the uncoordinated traffic patterns are fragile.
#include "util.h"

namespace {

spb::machine::MachineConfig paragon_yx(int rows, int cols) {
  auto m = spb::machine::paragon(rows, cols);
  m.topology =
      std::make_shared<spb::net::Mesh2D>(rows, cols, /*y_first=*/true);
  m.name += " (YX routing)";
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: XY vs YX mesh routing (10x10 Paragon, "
                      "s=30, L=4K)"});
  bench::Checker check("Ablation — XY vs YX mesh routing (10x10 Paragon)");

  const auto xy = machine::paragon(10, 10);
  const auto yx = paragon_yx(10, 10);
  const int s = opt.sources_or(30);
  const Bytes L = opt.len_or(4096);

  TextTable t;
  t.row()
      .cell("algorithm")
      .cell("dist")
      .cell("XY [ms]")
      .cell("YX [ms]")
      .cell("YX/XY");
  double pers_swing = 1.0;
  for (const auto& alg :
       {stop::make_two_step(false), stop::make_pers_alltoall(false),
        stop::make_br_lin(), stop::make_br_xy_source()}) {
    const bool combining = alg->name() != "PersAlltoAll";
    for (const dist::Kind kind : {dist::Kind::kEqual, dist::Kind::kRow}) {
      const stop::Problem pbx = stop::make_problem(xy, kind, s, L);
      const stop::Problem pby = stop::make_problem(yx, kind, s, L);
      const double a = bench::time_ms(alg, pbx);
      const double b = bench::time_ms(alg, pby);
      t.row()
          .cell(alg->name())
          .cell(dist::kind_name(kind))
          .num(a, 2)
          .num(b, 2)
          .num(b / a, 3);
      if (combining) {
        check.expect(b > a * 0.75 && b < a * 1.35,
                     alg->name() + "/" + dist::kind_name(kind) +
                         ": routing order moves the time < 35%");
      } else {
        pers_swing = std::max({pers_swing, b / a, a / b});
      }
    }
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(pers_swing > 1.25,
               "PersAlltoAll's permutation flood is routing-order "
               "sensitive (swing " + fixed(pers_swing, 2) + "x)");

  // The headline ordering survives the flip.
  const stop::Problem pby = stop::make_problem(yx, dist::Kind::kEqual, s, L);
  check.expect(bench::time_ms(stop::make_br_xy_source(), pby) <
                   bench::time_ms(stop::make_two_step(false), pby),
               "Br_xy_source still beats 2-Step under YX routing");
  check.expect(bench::time_ms(stop::make_br_lin(), pby) <
                   bench::time_ms(stop::make_pers_alltoall(false), pby),
               "Br_Lin still beats PersAlltoAll under YX routing");
  return check.exit_code();
}
