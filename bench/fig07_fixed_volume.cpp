// Figure 7: 10x10 Paragon, right diagonal distribution, total message
// volume fixed at 80K while the number of sources varies — the paper's
// demonstration that "if the data is spread among a larger number of
// sources, the broadcast is faster".  (Their example: 80K over 5 sources
// takes ~11.4 ms with Br_xy_source, over 40 sources only ~7.3 ms.)
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 7: fixed total volume (--len, default 80K) "
                      "spread over a swept source count (10x10 Paragon, "
                      "Dr)"});
  bench::Checker check(
      "Figure 7 — 10x10 Paragon, Dr, total volume 80K, s varies");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  const Bytes total = opt.len_or(80 * 1024);
  const dist::Kind kind = opt.dist_or(dist::Kind::kDiagRight);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim()};
  const std::vector<int> source_counts = {2, 5, 10, 20, 40, 80};

  TextTable t;
  t.row().cell("s").cell("L");
  for (const auto& a : algorithms) t.cell(a->name());
  std::map<std::string, std::map<int, double>> ms;
  for (const int s : source_counts) {
    const Bytes L = total / static_cast<Bytes>(s);
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    t.row().num(static_cast<std::int64_t>(s)).cell(human_bytes(L));
    for (const auto& a : algorithms) {
      const double v = bench::time_ms(a, pb);
      ms[a->name()][s] = v;
      t.num(v, 2);
    }
  }
  std::printf("%s\n", t.render().c_str());

  for (const auto& a : algorithms) {
    check.expect(ms[a->name()][40] < ms[a->name()][5],
                 a->name() + ": 40 sources beat 5 sources for the same "
                             "total volume");
    check.expect(ms[a->name()][20] < ms[a->name()][2],
                 a->name() + ": 20 sources beat 2 sources");
  }
  // The paper's concrete pair: 5 vs 40 sources differ by roughly 1.6x
  // (11.4 vs 7.3 ms); accept a generous band around that ratio.
  check.expect_ratio(ms["Br_xy_source"][5], ms["Br_xy_source"][40], 1.15,
                     3.0, "the 5-source run is markedly slower than the "
                          "40-source run");
  return check.exit_code();
}
