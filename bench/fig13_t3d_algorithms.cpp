// Figure 13: the three-way comparison on a 128-processor T3D, L = 4K.
//  (a) equal distribution, source count 5..128;
//  (b) all source distributions at s = 40.
//
// Paper claims reproduced:
//  * contrary to the Paragon results, MPI_Alltoall gives the best
//    performance (large bandwidth + no combining + no waiting);
//  * MPI_AllGather and MPI_Alltoall converge as the source count grows
//    (AllGather rises towards the nearly-flat Alltoall and crosses near
//    s ~ p/2; the P0 congestion puts it above at s = p);
//  * Br_Lin performs poorly — the wait cost and the cost of combining
//    messages (and the resulting delay before the next iteration);
//  * in (b), MPI_Alltoall performs well for every distribution pattern,
//    and no distribution is clearly ideal for the T3D.
#include <algorithm>

#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 13: three-way comparison on the T3D "
                      "(p=128, L=4K; s and distributions swept)"});
  bench::Checker check("Figure 13 — T3D p=128, L=4K, three algorithms");

  const auto machine = opt.machine_or(machine::t3d(128));
  const Bytes L = opt.len_or(4096);
  const auto allgather = stop::make_two_step(true);
  const auto alltoall = stop::make_pers_alltoall(true);
  const auto br_lin = stop::make_br_lin();

  bench::section("(a) equal distribution, s varies");
  TextTable ta;
  ta.row().cell("s").cell("MPI_AllGather").cell("MPI_Alltoall").cell(
      "Br_Lin");
  std::map<std::string, std::map<int, double>> ms;
  for (const int s : {5, 10, 20, 40, 64, 96, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, L);
    ms["gather"][s] = bench::time_ms(allgather, pb);
    ms["a2a"][s] = bench::time_ms(alltoall, pb);
    ms["br"][s] = bench::time_ms(br_lin, pb);
    ta.row()
        .num(static_cast<std::int64_t>(s))
        .num(ms["gather"][s], 2)
        .num(ms["a2a"][s], 2)
        .num(ms["br"][s], 2);
  }
  std::printf("%s\n", ta.render().c_str());

  check.expect(ms["a2a"][128] / ms["a2a"][5] < 2.5,
               "MPI_Alltoall's curve is nearly flat in s");
  for (const int s : {96, 128}) {
    check.expect(ms["a2a"][s] < ms["gather"][s],
                 "MPI_Alltoall best at s=" + std::to_string(s));
    check.expect(ms["a2a"][s] < ms["br"][s],
                 "MPI_Alltoall beats Br_Lin at s=" + std::to_string(s));
    check.expect(ms["br"][s] > ms["gather"][s],
                 "Br_Lin worst at s=" + std::to_string(s) +
                     " (wait + combining)");
  }
  check.expect(ms["a2a"][64] < ms["br"][64],
               "MPI_Alltoall beats Br_Lin already at s=64");
  // Convergence: the AllGather/Alltoall gap at s=128 is small relative to
  // the curves' magnitudes after the crossover.
  check.expect_ratio(ms["gather"][128], ms["a2a"][128], 0.9, 2.2,
                     "AllGather and Alltoall converge at s ~ p");
  check.expect(ms["gather"][10] < ms["a2a"][10],
               "at small s AllGather starts below the Alltoall floor "
               "(the fan-out cost dominates Alltoall there)");

  bench::section("(b) s = 40, distributions");
  const std::vector<dist::Kind> kinds = {
      dist::Kind::kRow,       dist::Kind::kColumn, dist::Kind::kEqual,
      dist::Kind::kDiagRight, dist::Kind::kBand,   dist::Kind::kSquare,
      dist::Kind::kCross};
  TextTable tb;
  tb.row().cell("dist").cell("MPI_AllGather").cell("MPI_Alltoall").cell(
      "Br_Lin");
  std::vector<double> a2a_b;
  std::vector<double> gather_b;
  std::vector<double> br_b;
  bool alltoall_near_best = true;
  for (const dist::Kind k : kinds) {
    const stop::Problem pb = stop::make_problem(machine, k, 40, L);
    const double g = bench::time_ms(allgather, pb);
    const double a = bench::time_ms(alltoall, pb);
    const double b = bench::time_ms(br_lin, pb);
    gather_b.push_back(g);
    a2a_b.push_back(a);
    br_b.push_back(b);
    alltoall_near_best &= a < std::min(g, b) * 1.6;
    tb.row().cell(dist::kind_name(k)).num(g, 2).num(a, 2).num(b, 2);
  }
  std::printf("%s\n", tb.render().c_str());

  // In our model the AllGather/Alltoall crossover sits near s ~ p/2, so at
  // s=40 Alltoall need not literally win; the claims that carry over are
  // that it "performs well for all distribution patterns" and that it is
  // by far the least distribution-sensitive algorithm (EXPERIMENTS.md
  // discusses the crossover shift).
  check.expect(alltoall_near_best,
               "MPI_Alltoall performs well for all distribution patterns");
  const auto spread_of = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) /
           *std::min_element(v.begin(), v.end());
  };
  check.expect(spread_of(a2a_b) < 1.1,
               "MPI_Alltoall is nearly distribution-insensitive");
  check.expect(spread_of(a2a_b) < spread_of(br_b),
               "Br_Lin varies more across distributions than Alltoall");
  check.expect(spread_of(br_b) < 2.0,
               "T3D distribution differences are not as striking as on "
               "the Paragon");
  return check.exit_code();
}
