// Extension: the cost-model planner against the measured oracle.
//
// For every (distribution x sources x length) combo on the paper's 16x16
// repositioning setup, the oracle measures ALL registered algorithms in
// the simulator and the planner picks one from the cost model alone.  The
// planner is useful when its pick's measured time stays within a small
// factor of the measured best — a ranking bet, not a timing bet.  On top,
// the plan cache must (a) produce byte-identical ranked tables for any
// --jobs fan-out and (b) absorb a seeded mixed-request replay with a high
// hit rate (plan once, execute many).
#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "plan/cache.h"
#include "plan/planner.h"
#include "sweep_runner.h"
#include "util.h"

// The planner must never touch the simulator: pricing a plan is pure
// combinatorics, statically guaranteed off the timed hot path (the same
// contract bench/util.h pins for RunOptions::record_schedule).
static_assert(spb::plan::CostModel::kSimulatorFree,
              "plan::CostModel must price plans without running the "
              "simulator");

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): bench main

struct Combo {
  dist::Kind kind;
  int sources;
  Bytes len;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: cost-model planner vs measured oracle "
                      "(16x16 Paragon), plan-cache determinism and replay"});
  bench::Checker check("Extension — broadcast planner, 16x16 Paragon");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const plan::Planner planner(machine);
  const auto algorithms = stop::all_algorithms();

  // All distributions x two source densities x three length buckets.
  const std::vector<int> s_values = {std::max(2, (3 * machine.p) / 16),
                                     std::max(2, (3 * machine.p) / 8)};
  const std::vector<Bytes> l_values = {1024, 6144, 32768};
  std::vector<Combo> combos;
  for (const dist::Kind kind : dist::all_kinds())
    for (const int s : s_values)
      for (const Bytes len : l_values) combos.push_back({kind, s, len});

  // Oracle: measure every algorithm on every combo (one deterministic
  // simulation each), fanned out over --jobs workers; the planner picks
  // from the cost model alone and pays its pick's measured time.  Returns
  // the fraction of combos whose regret stays within `bound`.
  const auto regret_section = [&](const machine::MachineConfig& m,
                                  const std::vector<Combo>& cs,
                                  std::vector<stop::Problem>& problems,
                                  double bound, int* within, double* worst) {
    const plan::Planner local_planner(m);
    problems.clear();
    problems.reserve(cs.size());
    std::vector<bench::SweepCase> cases;
    cases.reserve(cs.size() * algorithms.size());
    for (const Combo& c : cs) {
      problems.push_back(
          stop::make_problem(m, c.kind, c.sources, c.len, opt.seed_or(1)));
      for (const auto& alg : algorithms)
        cases.push_back({alg, problems.back()});
    }
    const std::vector<double> ms = bench::time_ms_sweep(cases, opt.jobs);

    TextTable t;
    t.row()
        .cell("dist")
        .cell("s")
        .cell("L")
        .cell("oracle best")
        .cell("[ms]")
        .cell("planner pick")
        .cell("[ms]")
        .cell("regret");
    *within = 0;
    *worst = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const Combo& c = cs[i];
      const std::size_t base = i * algorithms.size();

      std::size_t best_idx = 0;
      for (std::size_t a = 1; a < algorithms.size(); ++a)
        if (ms[base + a] < ms[base + best_idx]) best_idx = a;
      const double oracle_ms = ms[base + best_idx];

      const plan::Plan plan =
          local_planner.plan(problems[i].sources, c.len,
                             std::string(dist::kind_name(c.kind)));
      const auto pick_it =
          std::find_if(algorithms.begin(), algorithms.end(),
                       [&plan](const stop::AlgorithmPtr& alg) {
                         return alg->name() == plan.best();
                       });
      const std::size_t pick_idx =
          static_cast<std::size_t>(pick_it - algorithms.begin());
      const double pick_ms = ms[base + pick_idx];

      const double regret = pick_ms / oracle_ms;
      *worst = std::max(*worst, regret);
      if (regret <= bound) ++*within;
      t.row()
          .cell(dist::kind_name(c.kind))
          .num(static_cast<std::int64_t>(c.sources))
          .num(static_cast<std::int64_t>(c.len))
          .cell(algorithms[best_idx]->name())
          .num(oracle_ms, 2)
          .cell(plan.best())
          .num(pick_ms, 2)
          .num(regret, 3);
    }
    std::printf("== %s ==\n%s\n", m.name.c_str(), t.render().c_str());
  };

  std::vector<stop::Problem> problems;
  int within_bound = 0;
  double worst_regret = 0;
  regret_section(machine, combos, problems, 1.15, &within_bound,
                 &worst_regret);
  const int total = static_cast<int>(combos.size());
  check.expect(within_bound * 10 >= total * 9,
               "planner regret <= 1.15x the measured best on >= 90% of "
               "combos (" + std::to_string(within_bound) + "/" +
                   std::to_string(total) + ", worst " +
                   fixed(worst_regret, 3) + ")");

  // The registry's new machine families: the planner must carry its
  // ranking bet onto the k-ary n-cube and the two-level cluster, where
  // the candidate list includes the hierarchical algorithms.
  for (const char* spec : {"torus4x4x4x4", "cluster8x4"}) {
    const machine::MachineConfig m = machine::from_name(spec);
    std::vector<Combo> cs;
    for (const dist::Kind kind : dist::all_kinds())
      for (const int s :
           {std::max(2, (3 * m.p) / 16), std::max(2, (3 * m.p) / 8)})
        for (const Bytes len : {Bytes{1024}, Bytes{32768}})
          cs.push_back({kind, s, len});
    std::vector<stop::Problem> pbs;
    int within = 0;
    double worst = 0;
    regret_section(m, cs, pbs, 1.25, &within, &worst);
    check.expect(within * 10 >= static_cast<int>(cs.size()) * 9,
                 std::string(spec) +
                     ": planner regret <= 1.25x the measured best on >= "
                     "90% of combos (" + std::to_string(within) + "/" +
                     std::to_string(cs.size()) + ", worst " +
                     fixed(worst, 3) + ")");
  }

  // Determinism across --jobs: plan every combo through a shared PlanCache
  // from 1 and from N worker threads; the concatenated ranked tables must
  // be byte-identical (plans land in index-addressed slots, so order of
  // arrival cannot leak into the output).
  const auto planned_tables = [&](int jobs) {
    plan::PlanCache cache(plan::PlanCache::kDefaultCapacity);
    std::vector<std::string> texts(combos.size());
    bench::SweepRunner(jobs).run(
        combos.size(), [&](std::size_t i) {
          const plan::Plan p = cache.plan(
              planner, problems[i].sources, combos[i].len,
              std::string(dist::kind_name(combos[i].kind)));
          texts[i] = p.table_text();
        });
    std::string all;
    for (const std::string& text : texts) all += text;
    return all;
  };
  const std::string serial = planned_tables(1);
  const std::string parallel =
      planned_tables(std::max(4, bench::SweepRunner::hardware_jobs()));
  check.expect(serial == parallel && !serial.empty(),
               "ranked tables are byte-identical across --jobs fan-outs");

  // Seeded mixed-request replay: 250 requests drawn from a 32-template
  // pool, with in-bucket length jitter (exact L varies, signatures
  // don't) — the plan-once-execute-many regime the cache exists for.
  {
    plan::PlanCache cache(plan::PlanCache::kDefaultCapacity);
    constexpr int kRequests = 250;
    constexpr int kPool = 32;
    Rng pool_rng(opt.seed_or(1) ^ 0x9e3779b97f4a7c15ULL);
    std::vector<Combo> pool;
    pool.reserve(kPool);
    const auto& kinds = dist::all_kinds();
    for (int i = 0; i < kPool; ++i)
      pool.push_back(
          {kinds[pool_rng.next_below(kinds.size())],
           s_values[pool_rng.next_below(s_values.size())],
           l_values[pool_rng.next_below(l_values.size())]});
    Rng stream_rng(opt.seed_or(1));
    for (int i = 0; i < kRequests; ++i) {
      const Combo& c = pool[stream_rng.next_below(pool.size())];
      const Bytes jitter = static_cast<Bytes>(stream_rng.next_below(
          static_cast<std::uint64_t>(c.len / 8 + 1)));
      const stop::Problem pb = stop::make_problem(
          machine, c.kind, c.sources, c.len + jitter, opt.seed_or(1));
      cache.plan(planner, pb.sources, c.len + jitter,
                 std::string(dist::kind_name(c.kind)));
    }
    const plan::CacheStats stats = cache.stats();
    check.expect(stats.hit_rate() >= 0.8,
                 "plan-cache hit rate >= 80% on the seeded mixed-request "
                 "replay (" + fixed(stats.hit_rate() * 100, 1) + "%, " +
                     std::to_string(stats.misses) + " distinct problems)");
  }

  return check.exit_code();
}
