// Extension: graceful degradation under deterministic fault injection.
//
// The paper's machines were assumed healthy; this bench asks how the five
// base algorithms behave when the machine is not — transient message drops
// (with NIC-style retransmission), a subset of links at a fraction of
// their bandwidth, and a straggler node — and verifies that every
// algorithm still completes a correct broadcast at every intensity (the
// runtime's retransmit/reorder machinery guarantees delivery, so
// stop::run's verification is the real assertion here).
//
// What to expect: Br_* tolerate drops best (their O(log p) rounds give
// each message slack before the next dependency), while 2-Step's
// root-bottlenecked gather amplifies a straggler at P0's row and
// PersAlltoAll pays the most retransmissions because it moves the most
// messages.  Link degradation hurts everyone roughly in proportion to the
// traffic they push across the degraded cut.
#include "util.h"

namespace {

struct Intensity {
  const char* label;
  const char* spec;  // FaultSpec::parse input, "" = no faults
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: fault-intensity sweep over the five "
                      "base algorithms (8x8 Paragon, E(16), L=2K)"});
  bench::Checker check(
      "Extension — fault-intensity sweep, five base algorithms (8x8 "
      "Paragon)");

  const auto machine = opt.machine_or(machine::paragon(8, 8));
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false), stop::make_pers_alltoall(false),
      stop::make_br_lin(), stop::make_br_xy_source(), stop::make_br_xy_dim()};

  const Intensity levels[] = {
      {"healthy", ""},
      {"drop2%", "drop=0.02"},
      {"drop10%", "drop=0.1"},
      {"links/4", "links=0.25x4,lat=2"},
      {"straggler", "straggle=1x3"},
      {"combined", "drop=0.1,links=0.25x4,lat=2,straggle=1x3"},
  };
  const int s = opt.sources_or(16);
  const Bytes L = opt.len_or(2048);
  const std::uint64_t kFaultSeed = opt.seed_or(42);

  const stop::Problem pb =
      stop::make_problem(machine, opt.dist_or(dist::Kind::kEqual), s, L);

  TextTable t;
  {
    auto& head = t.row().cell("algorithm");
    for (const Intensity& lv : levels) head.cell(std::string(lv.label) + " [ms]");
    head.cell("retx@drop10%").cell("deg@links/4");
  }

  // times[alg][level]
  std::vector<std::vector<double>> times(
      algorithms.size(), std::vector<double>(std::size(levels), 0.0));
  bool deterministic = true;
  bool all_verified = true;

  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    std::uint64_t retx = 0;
    std::uint64_t degraded = 0;
    for (std::size_t lv = 0; lv < std::size(levels); ++lv) {
      stop::RunOptions opt;
      opt.faults = fault::FaultSpec::parse(levels[lv].spec);
      opt.fault_seed = kFaultSeed;
      try {
        const stop::RunResult r = stop::run(*algorithms[a], pb, opt);
        times[a][lv] = r.time_us / 1000.0;
        if (std::string(levels[lv].label) == "drop10%")
          retx = r.outcome.metrics.retransmits;
        if (std::string(levels[lv].label) == "links/4")
          degraded = r.outcome.network.degraded_transfers;
        if (std::string(levels[lv].label) == "combined") {
          // Identical seed + spec must reproduce byte-identical metrics.
          const stop::RunResult again = stop::run(*algorithms[a], pb, opt);
          deterministic = deterministic &&
                          again.time_us == r.time_us &&
                          again.outcome.metrics.retransmits ==
                              r.outcome.metrics.retransmits &&
                          again.outcome.metrics.duplicates ==
                              r.outcome.metrics.duplicates;
        }
      } catch (const CheckError&) {
        all_verified = false;
        times[a][lv] = -1;
      }
    }
    auto& row = t.row().cell(algorithms[a]->name());
    for (std::size_t lv = 0; lv < std::size(levels); ++lv)
      row.num(times[a][lv], 2);
    row.num(static_cast<std::int64_t>(retx))
        .num(static_cast<std::int64_t>(degraded));
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(all_verified,
               "every algorithm verifies at every fault intensity");
  check.expect(deterministic,
               "identical fault seed+spec reproduces identical runs");
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::string name = algorithms[a]->name();
    check.expect(times[a][5] >= times[a][0],
                 name + ": the combined fault load never speeds a run up");
    check.expect(times[a][2] >= times[a][1],
                 name + ": 10% drops cost at least as much as 2%");
  }
  return check.exit_code();
}
