// Extension (beyond the paper): the Br_Lin halving pattern on a hypercube.
//
// The paper notes Br_Lin's linear array "does not have to be a physical
// one"; on an iPSC-style hypercube it is better than logical — pairing i
// with i + p/2 is a dimension exchange, so every halving iteration uses a
// dedicated link per node and Br_Lin runs contention-free.  The same
// machine generation debated mesh vs hypercube; this bench shows what the
// debate looked like for s-to-p broadcasting.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: Br_Lin on a hypercube vs a mesh "
                      "(p=64, E(s), L=16K; s swept)"});
  bench::Checker check("Extension — Br_Lin on hypercube vs mesh (p=64)");

  const auto cube = machine::hypercube(6);
  auto mesh = machine::paragon(8, 8);
  // Same software and wire parameters; only the topology differs.
  mesh.net = cube.net;
  mesh.comm = cube.comm;
  mesh.mpi_extra_us = cube.mpi_extra_us;

  const auto br = stop::make_br_lin();
  const auto pers = stop::make_pers_alltoall(false);

  TextTable t;
  t.row()
      .cell("s")
      .cell("L")
      .cell("Br_Lin mesh")
      .cell("Br_Lin cube")
      .cell("cube gain")
      .cell("PersA2A cube");
  std::map<int, double> gain;
  for (const int s : {8, 32, 64}) {
    const Bytes L = opt.len_or(16384);
    const stop::Problem pm =
        stop::make_problem(mesh, dist::Kind::kEqual, s, L);
    const stop::Problem pc =
        stop::make_problem(cube, dist::Kind::kEqual, s, L);
    const double on_mesh = bench::time_ms(br, pm);
    const double on_cube = bench::time_ms(br, pc);
    gain[s] = on_mesh / on_cube;
    t.row()
        .num(static_cast<std::int64_t>(s))
        .cell(human_bytes(L))
        .num(on_mesh, 2)
        .num(on_cube, 2)
        .num(on_mesh / on_cube, 2)
        .num(bench::time_ms(pers, pc), 2);
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(gain[64] > 1.05,
               "the hypercube's dedicated dimension links beat the mesh "
               "at full load");
  check.expect(gain[64] >= gain[8],
               "the topology advantage grows with traffic");

  // Contention-free claim, checked on the network counters: Br_Lin on the
  // cube must stall (wait for links) for ~nothing.
  const stop::Problem pc =
      stop::make_problem(cube, dist::Kind::kEqual, 64, 16384);
  const stop::RunResult r = stop::run(*br, pc);
  check.expect(r.outcome.network.total_stall_us <
                   0.01 * r.outcome.network.total_link_busy_us,
               "Br_Lin on the hypercube is effectively contention-free");
  return check.exit_code();
}
