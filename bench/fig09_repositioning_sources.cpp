// Figure 9: percentage difference between Repos_xy_source and
// Br_xy_source on a 16x16 Paragon, L = 6K, sources varying 16..192, four
// input distributions (E, B, Cr, Sq).  Positive = repositioning wins.
//
// Paper claims reproduced:
//  * significant gains on the cross and square-block distributions;
//  * the band distribution is already near-ideal on a square mesh, so
//    repositioning costs a little instead of helping;
//  * the gain tapers off as the number of sources grows large.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 9: repositioning gain vs source count "
                      "(swept; 16x16 Paragon, L=6K, four distributions)"});
  bench::Checker check(
      "Figure 9 — Repos_xy_source vs Br_xy_source, 16x16, L=6K");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const Bytes L = opt.len_or(6144);
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  const std::vector<dist::Kind> kinds = {dist::Kind::kEqual,
                                         dist::Kind::kBand,
                                         dist::Kind::kCross,
                                         dist::Kind::kSquare};
  const std::vector<int> source_counts = {16, 32, 48, 64, 96, 128, 160, 192};

  TextTable t;
  t.row().cell("s");
  for (const dist::Kind k : kinds) t.cell(dist::kind_name(k) + " gain");
  // gain = (base - repos) / base, positive when repositioning is faster.
  std::map<std::string, std::map<int, double>> gain;
  for (const int s : source_counts) {
    t.row().num(static_cast<std::int64_t>(s));
    for (const dist::Kind k : kinds) {
      const stop::Problem pb = stop::make_problem(machine, k, s, L);
      const double base_ms = bench::time_ms(base, pb);
      const double repos_ms = bench::time_ms(repos, pb);
      const double g = (base_ms - repos_ms) / base_ms;
      gain[dist::kind_name(k)][s] = g;
      t.cell(signed_percent(g, 1));
    }
  }
  std::printf("%s\n", t.render().c_str());

  for (const int s : {32, 48, 64}) {
    check.expect(gain["Cr"][s] > 0.05,
                 "repositioning wins on the cross distribution at s=" +
                     std::to_string(s));
    check.expect(gain["Sq"][s] > 0.05,
                 "repositioning wins on the square block at s=" +
                     std::to_string(s));
  }
  const auto average = [&](const std::string& k) {
    double sum = 0;
    for (const int s : source_counts) sum += gain[k][s];
    return sum / static_cast<double>(source_counts.size());
  };
  check.expect(average("Cr") > 0.10 && average("Sq") > 0.05,
               "significant average gain on the hard distributions");
  for (const int s : {32, 96}) {
    check.expect(gain["B"][s] < 0.05,
                 "the near-ideal band distribution gains nothing at s=" +
                     std::to_string(s));
    check.expect(gain["B"][s] > -0.25,
                 "repositioning the band costs only a few percent at s=" +
                     std::to_string(s));
  }
  check.expect(gain["Cr"][192] < gain["Cr"][48],
               "the cross gain tapers off for large source counts");
  return check.exit_code();
}
