#include "util.h"

#include <cstdio>

#include "common/str.h"

namespace spb::bench {

double time_ms(const stop::AlgorithmPtr& alg, const stop::Problem& pb) {
  return stop::run_ms(*alg, pb);
}

Checker::Checker(std::string bench_name) : name_(std::move(bench_name)) {
  std::printf("==== %s ====\n", name_.c_str());
}

void Checker::expect(bool ok, const std::string& claim) {
  ++checks_;
  if (!ok) ++failures_;
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
}

void Checker::expect_ratio(double a, double b, double lo, double hi,
                           const std::string& claim) {
  const double ratio = b != 0 ? a / b : 0;
  expect(ratio >= lo && ratio <= hi,
         claim + " (ratio " + fixed(ratio, 2) + ", want " + fixed(lo, 2) +
             ".." + fixed(hi, 2) + ")");
}

int Checker::exit_code() const {
  std::printf("---- %s: %d/%d checks passed ----\n\n", name_.c_str(),
              checks_ - failures_, checks_);
  return failures_ == 0 ? 0 : 1;
}

void section(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

}  // namespace spb::bench
