#include "util.h"

#include <cstdio>
#include <cstdlib>

#include "common/str.h"
#include "sweep_runner.h"

namespace spb::bench {

double time_ms(const stop::AlgorithmPtr& alg, const stop::Problem& pb) {
  return stop::run_ms(*alg, pb);
}

std::vector<double> time_ms_sweep(const std::vector<SweepCase>& cases,
                                  int jobs) {
  std::vector<double> ms(cases.size());
  const SweepRunner runner(jobs);
  runner.run(cases.size(), [&](std::size_t i) {
    ms[i] = time_ms(cases[i].algorithm, cases[i].problem);
  });
  return ms;
}

int default_jobs() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, before
  // the SweepRunner spawns any worker thread.
  const char* env = std::getenv("SPB_BENCH_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  const int jobs = std::atoi(env);
  return jobs == 0 ? SweepRunner::hardware_jobs() : jobs;
}

Checker::Checker(std::string bench_name) : name_(std::move(bench_name)) {
  std::printf("==== %s ====\n", name_.c_str());
}

void Checker::expect(bool ok, const std::string& claim) {
  ++checks_;
  if (!ok) ++failures_;
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
}

void Checker::expect_ratio(double a, double b, double lo, double hi,
                           const std::string& claim) {
  const double ratio = b != 0 ? a / b : 0;
  expect(ratio >= lo && ratio <= hi,
         claim + " (ratio " + fixed(ratio, 2) + ", want " + fixed(lo, 2) +
             ".." + fixed(hi, 2) + ")");
}

int Checker::exit_code() const {
  std::printf("---- %s: %d/%d checks passed ----\n\n", name_.c_str(),
              checks_ - failures_, checks_);
  return failures_ == 0 ? 0 : 1;
}

void section(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

}  // namespace spb::bench
