// Section 5.2 (text): Part_xy_source vs Repos_xy_source vs Br_xy_source
// on a 16x16 Paragon.  "Our results showed that for the Intel Paragon the
// partitioning approach hardly ever gives a better performance than
// repositioning alone.  The reason lies in the cost of the final
// permutation" — the cross-seam exchange of s*L-byte messages.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Section 5.2: partitioning vs repositioning "
                      "(16x16 Paragon; dist/s/L swept)"});
  bench::Checker check(
      "Section 5.2 — partitioning vs repositioning, 16x16 Paragon");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  const auto part = stop::make_partitioning(base);

  TextTable t;
  t.row()
      .cell("dist")
      .cell("s")
      .cell("L")
      .cell("Br_xy_source")
      .cell("Repos")
      .cell("Part");
  int part_wins = 0;
  int cases = 0;
  double worst_part_vs_repos = 0;
  for (const dist::Kind kind :
       {dist::Kind::kEqual, dist::Kind::kCross, dist::Kind::kSquare}) {
    for (const int s : {32, 64, 128}) {
      for (const Bytes L : {Bytes{2048}, Bytes{8192}}) {
        const stop::Problem pb = stop::make_problem(machine, kind, s, L);
        const double b = bench::time_ms(base, pb);
        const double r = bench::time_ms(repos, pb);
        const double p = bench::time_ms(part, pb);
        t.row()
            .cell(dist::kind_name(kind))
            .num(static_cast<std::int64_t>(s))
            .cell(human_bytes(L))
            .num(b, 2)
            .num(r, 2)
            .num(p, 2);
        ++cases;
        if (p < r) ++part_wins;
        worst_part_vs_repos = std::max(worst_part_vs_repos, p / r);
      }
    }
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(part_wins <= cases / 4,
               "partitioning hardly ever beats repositioning (" +
                   std::to_string(part_wins) + "/" + std::to_string(cases) +
                   " wins)");
  check.expect(worst_part_vs_repos > 1.15,
               "the final permutation makes partitioning markedly slower "
               "in the worst case");
  return check.exit_code();
}
