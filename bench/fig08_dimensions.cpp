// Figure 8: a 120-node Paragon in different shapes (4x30 ... 10x12/12x10),
// equal distribution, L = 4K, three source counts.
//
// Paper claims reproduced:
//  * for a small source count (s=8) the machine shape hardly matters;
//  * for more sources the shape changes performance considerably;
//  * the paper's anomaly: s=15 can run *faster* than s=8 on some shapes,
//    because E(15) lands on diagonal-ish positions that spread fast while
//    E(8) tends to sit inside columns.
#include <algorithm>

#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 8: 120-node Paragon shapes (swept), E(s), "
                      "L=4K, three source counts"});
  bench::Checker check("Figure 8 — p=120 Paragon, shapes vary, E(s), L=4K");

  struct Shape {
    int rows;
    int cols;
  };
  const std::vector<Shape> shapes = {{4, 30}, {5, 24}, {6, 20},
                                     {8, 15}, {10, 12}, {12, 10}};
  const Bytes L = opt.len_or(4096);
  const dist::Kind kind = opt.dist_or(dist::Kind::kEqual);
  const auto alg = stop::make_br_lin();
  const std::vector<int> source_counts = {8, 15, 60};

  TextTable t;
  t.row().cell("shape");
  for (const int s : source_counts)
    t.cell("s=" + std::to_string(s) + " [ms]");
  std::map<int, std::vector<double>> by_s;
  for (const Shape& sh : shapes) {
    const auto machine = machine::paragon(sh.rows, sh.cols);
    t.row().cell(std::to_string(sh.rows) + "x" + std::to_string(sh.cols));
    for (const int s : source_counts) {
      const stop::Problem pb = stop::make_problem(machine, kind, s, L);
      const double v = bench::time_ms(alg, pb);
      by_s[s].push_back(v);
      t.num(v, 2);
    }
  }
  std::printf("%s\n", t.render().c_str());

  const auto spread = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) /
           *std::min_element(v.begin(), v.end());
  };
  check.expect(spread(by_s[8]) < 1.5,
               "s=8: machine shape changes Br_Lin's time by < 1.5x");
  check.expect(spread(by_s[60]) > spread(by_s[8]),
               "more sources make the machine shape matter more");
  // The anomaly exists on at least one shape: s=15 faster than s=8.
  bool anomaly = false;
  for (std::size_t i = 0; i < by_s[8].size(); ++i)
    anomaly |= by_s[15][i] < by_s[8][i];
  check.expect(anomaly,
               "on some 120-node shape, 15 sources run faster than 8 "
               "(distribution/dimension interaction)");
  return check.exit_code();
}
