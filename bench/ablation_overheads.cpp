// Ablation: sensitivity of the Paragon orderings to the software-overhead
// and bandwidth calibration.  The paper's headline (Br_* >> 2-Step,
// PersAlltoAll) should be robust across a band of plausible mid-90s
// parameters, not an artifact of one tuned point.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: Paragon calibration robustness "
                      "(10x10, E(30), L=4K; parameters swept)"});
  bench::Checker check("Ablation — Paragon calibration robustness");

  struct Variant {
    std::string name;
    double overhead_scale;
    double bandwidth_scale;
  };
  const std::vector<Variant> variants = {
      {"calibrated", 1.0, 1.0},
      {"slow software (x2 overhead)", 2.0, 1.0},
      {"fast software (x0.5)", 0.5, 1.0},
      {"slow wire (x0.5 bandwidth)", 1.0, 0.5},
      {"fast wire (x2 bandwidth)", 1.0, 2.0},
  };

  TextTable t;
  t.row()
      .cell("variant")
      .cell("Br_xy_source")
      .cell("Br_Lin")
      .cell("2-Step")
      .cell("PersAlltoAll");
  for (const Variant& v : variants) {
    auto machine = opt.machine_or(machine::paragon(10, 10));
    machine.comm.send_overhead_us *= v.overhead_scale;
    machine.comm.recv_overhead_us *= v.overhead_scale;
    machine.net.bytes_per_us *= v.bandwidth_scale;
    const stop::Problem pb =
        stop::make_problem(machine, opt.dist_or(dist::Kind::kEqual),
                           opt.sources_or(30), opt.len_or(4096));
    const double xy = bench::time_ms(stop::make_br_xy_source(), pb);
    const double br = bench::time_ms(stop::make_br_lin(), pb);
    const double ts = bench::time_ms(stop::make_two_step(false), pb);
    const double pa = bench::time_ms(stop::make_pers_alltoall(false), pb);
    t.row().cell(v.name).num(xy, 2).num(br, 2).num(ts, 2).num(pa, 2);
    check.expect(xy < ts && xy < pa && br < ts && br < pa,
                 "Br_* still ahead under '" + v.name + "'");
  }
  std::printf("%s\n", t.render().c_str());
  return check.exit_code();
}
