// Figure 10: the same Repos_xy_source vs Br_xy_source comparison on a
// 16x16 Paragon with s = 75, message length varying 32B..16K.
//
// Paper claims reproduced:
//  * for messages under ~1K, repositioning pays only for the cross
//    distribution;
//  * the benefit grows with the message length for the hard
//    distributions, then tapers off at the largest lengths.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 10: repositioning gain vs message length "
                      "(swept; 16x16 Paragon, s=75)"});
  bench::Checker check(
      "Figure 10 — Repos_xy_source vs Br_xy_source, 16x16, s=75");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const int s = opt.sources_or(75);
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  const std::vector<dist::Kind> kinds = {dist::Kind::kEqual,
                                         dist::Kind::kBand,
                                         dist::Kind::kCross,
                                         dist::Kind::kSquare};
  const std::vector<Bytes> lengths = {32,   256,  1024, 2048,
                                      4096, 8192, 16384};

  TextTable t;
  t.row().cell("L");
  for (const dist::Kind k : kinds) t.cell(dist::kind_name(k) + " gain");
  std::map<std::string, std::map<Bytes, double>> gain;
  for (const Bytes L : lengths) {
    t.row().cell(human_bytes(L));
    for (const dist::Kind k : kinds) {
      const stop::Problem pb = stop::make_problem(machine, k, s, L);
      const double base_ms = bench::time_ms(base, pb);
      const double repos_ms = bench::time_ms(repos, pb);
      const double g = (base_ms - repos_ms) / base_ms;
      gain[dist::kind_name(k)][L] = g;
      t.cell(signed_percent(g, 1));
    }
  }
  std::printf("%s\n", t.render().c_str());

  // "For a message size of less than 1K, repositioning pays only for the
  // cross distribution."
  check.expect(gain["Cr"][256] > 0.0,
               "sub-1K messages: the cross distribution already pays");
  check.expect(gain["Sq"][256] < 0.05 && gain["E"][256] < 0.0 &&
                   gain["B"][256] < 0.0,
               "sub-1K messages: no other distribution pays yet");
  check.expect(gain["Cr"][8192] > gain["Cr"][256],
               "the cross gain grows with the message length");
  check.expect(gain["Sq"][8192] > gain["Sq"][256],
               "the square-block gain grows with the message length");
  check.expect(gain["Cr"][8192] > 0.10,
               "large messages: double-digit gain on the cross");
  for (const Bytes L : {Bytes{1024}, Bytes{16384}}) {
    check.expect(gain["B"][L] < 0.08,
                 "the band distribution never gains much (L=" +
                     human_bytes(L) + ")");
  }
  return check.exit_code();
}
