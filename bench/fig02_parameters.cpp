// Figure 2 (table): algorithm-dependent and distribution-dependent
// parameters for 2-Step, PersAlltoAll and Br_Lin on the equal
// distribution — measured from the runtime's per-rank counters and printed
// next to the paper's asymptotic claims.
//
//   congestion   max sends+recvs one processor handles in one iteration
//   wait         max number of blocking receives of any processor
//   #send/rec    max total send+recv operations of any processor
//   av_msg_lgth  max over ranks of the mean message length
//   av_act_proc  average number of active processors per iteration
//
// The paper distinguishes s = 2^l from s != 2^l for Br_Lin: with a
// power-of-two source count the equal distribution aligns with the halving
// pattern, early iterations only grow messages, and performance suffers.
#include <cmath>

#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 2: algorithm/distribution parameters "
                      "(16x16 Paragon, E(32)/E(37), L=1K)"});
  bench::Checker check("Figure 2 — algorithm/distribution parameters");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const int p = machine.p;
  const Bytes L = opt.len_or(1024);

  struct Row {
    std::string algorithm;
    int s;
    stop::RunResult result;
  };
  std::vector<Row> rows;
  for (const int s : {32, 37}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, L);
    for (const auto& alg :
         {stop::make_two_step(false), stop::make_pers_alltoall(false),
          stop::make_br_lin()}) {
      rows.push_back({alg->name(), s, stop::run(*alg, pb)});
    }
  }

  TextTable t;
  t.row()
      .cell("algorithm")
      .cell("s")
      .cell("congestion")
      .cell("wait")
      .cell("#send/rec")
      .cell("av_msg_lgth")
      .cell("av_act_proc")
      .cell("time[ms]");
  for (const auto& r : rows) {
    const auto& m = r.result.outcome.metrics;
    t.row()
        .cell(r.algorithm)
        .num(static_cast<std::int64_t>(r.s))
        .num(static_cast<std::int64_t>(m.congestion))
        .num(static_cast<std::int64_t>(m.max_waits))
        .num(static_cast<std::int64_t>(m.max_send_recv))
        .num(m.av_msg_lgth, 0)
        .num(m.av_act_proc, 1)
        .num(r.result.time_us / 1000.0, 2);
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "paper's asymptotics (equal distribution):\n"
      "  2-Step        congestion O(s), wait O(1), #send/rec O(p),\n"
      "                av_msg_lgth O(sL), av_act_proc O(p/log p)\n"
      "  PersAlltoAll  congestion O(1), wait O(1), #send/rec O(p),\n"
      "                av_msg_lgth O(L), av_act_proc O(p)\n"
      "  Br_Lin        congestion O(1), wait O(log p), #send/rec O(log p);\n"
      "                s = 2^l grows messages before spreading sources\n\n");

  const auto& two_step_32 = rows[0].result.outcome.metrics;
  const auto& pers_32 = rows[1].result.outcome.metrics;
  const auto& br_32 = rows[2].result.outcome.metrics;
  const auto& br_37 = rows[5].result.outcome.metrics;

  check.expect(two_step_32.congestion >= 30,
               "2-Step congestion is O(s): the gather concentrates ~s "
               "receives at P0 in one step");
  check.expect(pers_32.congestion <= 4,
               "PersAlltoAll congestion is O(1) per round");
  check.expect(br_32.congestion <= 6, "Br_Lin congestion is O(1)");
  check.expect(two_step_32.max_send_recv >=
                   static_cast<std::uint64_t>(30),
               "2-Step #send/rec at the root is O(s)");
  check.expect(pers_32.max_send_recv >=
                   static_cast<std::uint64_t>(p - 1),
               "PersAlltoAll sources issue p-1 sends");
  const auto log_p = static_cast<std::uint64_t>(std::log2(p));
  check.expect(br_32.max_send_recv <= 3 * log_p + 4,
               "Br_Lin #send/rec is O(log p)");
  check.expect(br_32.max_waits <= log_p + 2 && br_32.max_waits >= 1,
               "Br_Lin waits once per iteration at most: O(log p)");
  check.expect(pers_32.av_msg_lgth < 1.2 * static_cast<double>(L) + 64,
               "PersAlltoAll never combines: av_msg_lgth stays O(L)");
  check.expect(br_32.av_msg_lgth > 3 * static_cast<double>(L),
               "Br_Lin combines: av_msg_lgth grows well beyond L");
  check.expect(two_step_32.av_msg_lgth >
                   0.5 * static_cast<double>(L) * 32,
               "2-Step's root handles O(sL) messages");

  // The s = 2^l alignment: with s=32 on p=256 every source pairs with a
  // source in the early iterations, so fewer processors are active on
  // average than with s=37, and the run is slower despite fewer sources.
  check.expect(br_32.av_act_proc < br_37.av_act_proc,
               "Br_Lin s=2^l activates processors slower than s!=2^l");
  check.expect(rows[2].result.time_us > rows[5].result.time_us,
               "Br_Lin on E(32) is slower than on E(37) despite fewer "
               "sources (the paper's power-of-two penalty)");
  return check.exit_code();
}
