// Extension of the paper's closing T3D conjecture: "a random distribution
// appears to be a good choice for the T3D.  However, generating a random
// distribution and communicating such a distribution to all processors
// may entail more overhead than what was needed in the repositioning
// algorithms on the Paragon."
//
// We can measure what the authors could only conjecture: how close the
// equal distribution gets to genuinely random placements, and what a
// repositioning pass to a random target would cost on top.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: random source distributions on the T3D "
                      "(p=128, s=48, L=4K)"});
  bench::Checker check("Extension — random distributions on the T3D");

  const auto machine = opt.machine_or(machine::t3d(128));
  const Bytes L = opt.len_or(4096);
  const int s = opt.sources_or(48);
  const auto br = stop::make_br_lin();
  const auto a2a = stop::make_pers_alltoall(true);

  TextTable t;
  t.row().cell("distribution").cell("Br_Lin [ms]").cell(
      "MPI_Alltoall [ms]");
  double br_equal = 0;
  double br_square = 0;
  double br_random_sum = 0;
  constexpr int kRandomTrials = 5;
  for (const dist::Kind kind :
       {dist::Kind::kEqual, dist::Kind::kSquare, dist::Kind::kCross}) {
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    const double b = bench::time_ms(br, pb);
    if (kind == dist::Kind::kEqual) br_equal = b;
    if (kind == dist::Kind::kSquare) br_square = b;
    t.row().cell(dist::kind_name(kind)).num(b, 2).num(
        bench::time_ms(a2a, pb), 2);
  }
  for (int seed = 1; seed <= kRandomTrials; ++seed) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kRandom, s, L,
                           static_cast<std::uint64_t>(seed));
    const double b = bench::time_ms(br, pb);
    br_random_sum += b;
    t.row()
        .cell("Rand(seed " + std::to_string(seed) + ")")
        .num(b, 2)
        .num(bench::time_ms(a2a, pb), 2);
  }
  std::printf("%s\n", t.render().c_str());
  const double br_random = br_random_sum / kRandomTrials;

  check.expect(br_random < br_square,
               "random placements beat the clustered square block for "
               "Br_Lin");
  check.expect_ratio(br_equal, br_random, 0.6, 1.4,
                     "the equal distribution indeed 'resembles a uniformly "
                     "random distribution' in cost");
  return check.exit_code();
}
