// Ablation: the message-combining CPU cost that the paper blames for
// Br_Lin's poor T3D showing.  Sweeping combine_per_byte_us shows the
// crossover: with cheap combining Br_Lin beats MPI_Alltoall on the T3D
// (as it does on the Paragon); at the calibrated cost the order flips.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: message-combining cost sweep on the T3D "
                      "(p=128, E(64), L=4K)"});
  bench::Checker check("Ablation — combining cost sweep on the T3D");

  TextTable t;
  t.row()
      .cell("combine us/B")
      .cell("Br_Lin [ms]")
      .cell("MPI_Alltoall [ms]")
      .cell("Br_Lin wins");
  std::map<double, bool> br_wins;
  std::map<double, double> br_ms;
  const std::vector<double> costs = {0.0, 0.005, 0.015, 0.025, 0.05};
  for (const double cost : costs) {
    auto machine = opt.machine_or(machine::t3d(128));
    machine.comm.combine_per_byte_us = cost;
    const stop::Problem pb =
        stop::make_problem(machine, opt.dist_or(dist::Kind::kEqual),
                           opt.sources_or(64), opt.len_or(4096));
    const double br = bench::time_ms(stop::make_br_lin(), pb);
    const double a2a = bench::time_ms(stop::make_pers_alltoall(true), pb);
    br_wins[cost] = br < a2a;
    br_ms[cost] = br;
    t.row()
        .num(cost, 3)
        .num(br, 2)
        .num(a2a, 2)
        .cell(br < a2a ? "yes" : "no");
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(br_wins[0.0],
               "free combining: Br_Lin would beat MPI_Alltoall on the T3D "
               "too");
  check.expect(!br_wins[0.025],
               "at the calibrated combining cost the T3D ordering flips");
  check.expect(br_ms[0.05] > br_ms[0.0] * 1.5,
               "Br_Lin's critical path is combine-bound at high cost");
  return check.exit_code();
}
