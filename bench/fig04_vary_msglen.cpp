// Figure 4: 10x10 Paragon, right diagonal distribution Dr(30), message
// length varying from 32 bytes to 16K.
//
// Paper claims reproduced:
//  * 2-Step and PersAlltoAll perform poorly regardless of message size;
//  * PersAlltoAll's curve is almost flat up to L ~ 1K (overhead-bound);
//  * the Br_* algorithms barely move until ~512 bytes and then grow
//    linearly with L.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 4: time vs message length (10x10 Paragon, "
                      "Dr(30), L=32..16K)"});
  bench::Checker check("Figure 4 — 10x10 Paragon, Dr(30), L=32..16K");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  const int s = opt.sources_or(30);
  const dist::Kind kind = opt.dist_or(dist::Kind::kDiagRight);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false), stop::make_pers_alltoall(false),
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim(),
  };
  const std::vector<Bytes> lengths = {32,   128,  512,   1024,
                                      2048, 4096, 8192, 16384};

  std::vector<bench::SweepCase> cases;
  for (const Bytes L : lengths) {
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    for (const auto& a : algorithms) cases.push_back({a, pb});
  }
  const std::vector<double> timed = bench::time_ms_sweep(cases, opt.jobs);

  TextTable t;
  t.row().cell("L");
  for (const auto& a : algorithms) t.cell(a->name());
  std::map<std::string, std::map<Bytes, double>> ms;
  std::size_t next = 0;
  for (const Bytes L : lengths) {
    t.row().cell(human_bytes(L));
    for (const auto& a : algorithms) {
      const double v = timed[next++];
      ms[a->name()][L] = v;
      t.num(v, 2);
    }
  }
  std::printf("%s\n", t.render().c_str());

  for (const Bytes L : lengths) {
    check.expect(ms["Br_Lin"][L] < ms["2-Step"][L] &&
                     ms["Br_Lin"][L] < ms["PersAlltoAll"][L],
                 "Br_Lin ahead of both baselines at L=" + human_bytes(L));
  }
  check.expect_ratio(ms["PersAlltoAll"][1024], ms["PersAlltoAll"][32], 1.0,
                     1.5, "PersAlltoAll almost flat from 32B to 1K");
  check.expect_ratio(ms["Br_xy_source"][512], ms["Br_xy_source"][32], 1.0,
                     1.8, "Br_xy_source moves little until 512B");
  // Linear growth for large messages: 16K ~ 2x 8K within a band.
  check.expect_ratio(ms["Br_xy_source"][16384], ms["Br_xy_source"][8192],
                     1.5, 2.5, "Br_xy_source linear in L for large L");
  check.expect_ratio(ms["2-Step"][16384], ms["2-Step"][8192], 1.5, 2.5,
                     "2-Step linear in L for large L");
  return check.exit_code();
}
