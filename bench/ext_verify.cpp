// ext_verify — determinism-certificate acceptance gate.
//
// Three claims, all prerequisites for the intra-run parallelism work:
//
//   1. Certification: every registered algorithm is deadlock-free and
//      delivery-order-deterministic on three <= 16-rank shapes — a 1xN
//      chain (paragon1x8), the paper's paragon4x4, and a non-power-of-two
//      mesh (paragon3x5) — certified by the src/verify model-checker.
//   2. Zero false negatives: seeded mutations that drop a match, swap a
//      tag, or close a cyclic wait are all *rejected* by the same
//      checker.
//   3. Dispatch assumption: certificates that rely on message-driven
//      dispatch (pools whose segments send — see src/verify/structure.h)
//      are cross-checked dynamically by re-running under a fault plan
//      that perturbs real arrival order (degraded links + stragglers);
//      the final payload assignment must not move.
//
// --out PATH writes every certificate as a JSON array (CI uploads it as
// the determinism-certificate artifact).
#include <fstream>
#include <iostream>
#include <vector>

#include "analyze/mutate.h"
#include "analyze/record.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "obs/json.h"
#include "util.h"
#include "verify/certificate.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): bench main

struct Shape {
  const char* label;
  int rows, cols;
  int sources;
};

// s stays small so exploration is dense but bounded; 3x5 exercises the
// non-power-of-two paths of every halving/partitioning algorithm.
constexpr Shape kShapes[] = {
    {"paragon1x8", 1, 8, 2},
    {"paragon4x4", 4, 4, 4},
    {"paragon3x5", 3, 5, 3},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description =
           "determinism certificates for all algorithms on <=16-rank "
           "shapes, mutation rejection, fault-order cross-check"});
  const Bytes bytes = opt.len_or(2048);

  bench::Checker check("ext_verify");
  std::vector<verify::Certificate> certificates;

  // --- 1. certification on every shape --------------------------------
  for (const Shape& shape : kShapes) {
    const machine::MachineConfig machine =
        machine::paragon(shape.rows, shape.cols);
    for (const stop::AlgorithmPtr& alg : stop::all_algorithms()) {
      const stop::Problem pb = stop::make_problem(
          machine, dist::Kind::kRow, shape.sources, bytes, opt.seed_or(1));
      verify::Certificate cert = verify::certify(*alg, pb);
      check.expect(cert.certified, std::string(shape.label) + " " +
                                       alg->name() + ": " + cert.to_string());
      check.expect(cert.deadlock.ok() && !cert.exploration.deadlock_found,
                   std::string(shape.label) + " " + alg->name() +
                       ": deadlock-free under all delivery orders");
      check.expect(cert.exploration.exhaustive,
                   std::string(shape.label) + " " + alg->name() +
                       ": exploration exhaustive (" +
                       std::to_string(cert.exploration.states) + " states)");
      certificates.push_back(std::move(cert));
    }
  }

  // --- 2. mutation self-test: zero false negatives ---------------------
  {
    const machine::MachineConfig machine = machine::paragon(4, 4);
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kRow, 4, bytes, 1);
    const stop::AlgorithmPtr alg = stop::find_algorithm("2-Step");
    const analyze::RecordedRun run = analyze::record_run(*alg, pb);
    for (const analyze::Mutation m :
         {analyze::Mutation::kDropSend, analyze::Mutation::kTagMismatch,
          analyze::Mutation::kCyclicWait}) {
      const analyze::MutationResult mutant =
          analyze::apply_mutation(run.schedule, m, opt.seed_or(1));
      verify::Certificate cert =
          verify::certify_schedule(mutant.schedule, pb.sources);
      check.expect(!cert.certified, "mutation " + analyze::mutation_name(m) +
                                        " rejected (" + mutant.description +
                                        ")");
      cert.algorithm = "2-Step[" + analyze::mutation_name(m) + "]";
      cert.machine = machine.name;
      certificates.push_back(std::move(cert));
    }
  }

  // --- 3. dynamic cross-check of the dispatch assumption ---------------
  // Degraded links, added latency and stragglers reshuffle real arrival
  // order without touching the logical schedule; if any pool secretly
  // dispatched on arrival position instead of message class, the final
  // payload assignment would move.
  {
    const fault::FaultSpec spec =
        fault::FaultSpec::parse("links=0.25x4,lat=2,straggle=2x3");
    for (const Shape& shape : kShapes) {
      const machine::MachineConfig machine =
          machine::paragon(shape.rows, shape.cols);
      const auto plan = std::make_shared<const fault::FaultPlan>(
          spec, opt.seed_or(1) + 17, machine.topology->link_space(),
          machine.p);
      for (const stop::AlgorithmPtr& alg : stop::all_algorithms()) {
        const stop::Problem pb = stop::make_problem(
            machine, dist::Kind::kRow, shape.sources, bytes, opt.seed_or(1));
        const analyze::RecordedRun clean = analyze::record_run(*alg, pb);
        const analyze::RecordedRun shuffled =
            analyze::record_run(*alg, pb, plan);
        check.expect(clean.completed && shuffled.completed,
                     std::string(shape.label) + " " + alg->name() +
                         ": completes with perturbed arrival order");
        check.expect(clean.final_payloads == shuffled.final_payloads,
                     std::string(shape.label) + " " + alg->name() +
                         ": final payload assignment unmoved by arrival "
                         "order");
      }
    }
  }

  if (!opt.out.empty()) {
    std::ofstream os(opt.out);
    if (!os.good()) {
      std::cerr << "ext_verify: cannot open --out file " << opt.out << "\n";
      return 2;
    }
    obs::JsonWriter w(os);
    w.begin_array();
    for (const auto& cert : certificates) {
      verify::write_certificate(w, cert);
    }
    w.end_array();
    os << "\n";
    std::cout << "wrote " << certificates.size() << " certificates to "
              << opt.out << "\n";
  }

  return check.exit_code();
}
