// perf_harness — dependency-free perf-regression harness.
//
// Times the simulator's hot paths (event queue, payload merge, route
// cache, one end-to-end run, and the analyzer sweep serial vs parallel)
// with plain steady_clock loops and emits the numbers as JSON.
// tools/bench_compare.py diffs the output against bench/BENCH_baseline.json
// with per-metric tolerances; CI runs the quick tier on every push.
//
//   perf_harness                      # full tier, writes BENCH_core.json
//   perf_harness out.json --quick     # CI tier (shorter timing windows)
//   perf_harness out.json --jobs 4    # thread count for the sweep metric
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/sweep.h"
#include "dist/distribution.h"
#include "machine/config.h"
#include "mp/payload.h"
#include "net/route_cache.h"
#include "net/topology.h"
#include "options.h"
#include "sim/event_queue.h"
#include "stop/algorithm.h"
#include "stop/run.h"
#include "sweep_runner.h"

namespace {

using namespace spb;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Calls `body` repeatedly until `min_ms` of wall time has accumulated
/// (one untimed warm-up call first) and returns nanoseconds per operation,
/// where one call of `body` performs `ops_per_call` operations.
template <typename F>
double time_ns_per_op(double min_ms, std::uint64_t ops_per_call, F&& body) {
  body();  // warm-up: populate caches, settle allocations
  std::uint64_t calls = 0;
  const Clock::time_point t0 = Clock::now();
  double ms = 0;
  do {
    body();
    ++calls;
    ms = elapsed_ms(t0);
  } while (ms < min_ms);
  return ms * 1e6 / (static_cast<double>(calls) * ops_per_call);
}

struct Metrics {
  std::vector<std::pair<std::string, double>> values;
  void add(const std::string& name, double v) { values.push_back({name, v}); }
};

// One op = one push plus one pop+invoke at steady depth `depth`.
void bench_event_queue(Metrics& m, double min_ms) {
  constexpr int depth = 1024;
  constexpr int ops_per_call = 8192;
  std::uint64_t sum = 0;
  struct Delivery {
    std::uint64_t* sink;
    std::uint32_t slot;
    double at;
  };
  sim::EventQueue q;
  double now = 0;
  for (int i = 0; i < depth; ++i) {
    const Delivery d{&sum, static_cast<std::uint32_t>(i),
                     static_cast<double>((i * 7919) % 1000)};
    q.push(d.at, [d] { *d.sink += d.slot; });
  }
  const double ns = time_ns_per_op(min_ms, ops_per_call, [&] {
    for (int i = 0; i < ops_per_call; ++i) {
      sim::Event ev = q.pop();
      ev.fn();
      now = ev.time;
      const Delivery d{&sum, static_cast<std::uint32_t>(i), now + 1.0};
      q.push(d.at, [d] { *d.sink += d.slot; });
    }
  });
  m.add("event_queue_push_pop_ns", ns);
  m.add("event_queue_events_per_sec", 1e9 / ns);
  m.add("event_queue_depth", depth);
}

void bench_payload_merge(Metrics& m, double min_ms) {
  const auto steady_merge = [&](const mp::Payload& a, const mp::Payload& b) {
    mp::Payload acc;
    return time_ns_per_op(min_ms, 1, [&] {
      acc = a;
      acc.merge(b);
    });
  };
  {
    std::vector<mp::Chunk> even;
    std::vector<mp::Chunk> odd;
    for (int i = 0; i < 16; ++i) {
      even.push_back({2 * i, 64});
      odd.push_back({2 * i + 1, 64});
    }
    m.add("payload_merge_interleaved16_ns",
          steady_merge(mp::Payload::of(even), mp::Payload::of(odd)));
  }
  {
    std::vector<mp::Chunk> lo;
    std::vector<mp::Chunk> hi;
    for (int i = 0; i < 256; ++i) {
      lo.push_back({i, 64});
      hi.push_back({256 + i, 64});
    }
    m.add("payload_merge_disjoint256_ns",
          steady_merge(mp::Payload::of(lo), mp::Payload::of(hi)));
  }
}

void bench_routes(Metrics& m, double min_ms) {
  const net::Torus3D torus(8, 8, 8);
  constexpr int ops = 4096;
  {
    int a = 0;
    std::size_t hops = 0;
    m.add("route_fresh_ns", time_ns_per_op(min_ms, ops, [&] {
            for (int i = 0; i < ops; ++i) {
              const int b = (a * 31 + 17) % torus.node_count();
              hops += torus.route(a, b).size();
              a = (a + 1) % torus.node_count();
            }
          }));
    if (hops == 0) std::fprintf(stderr, "route_fresh: empty routes?\n");
  }
  {
    net::RouteCache cache(torus);
    int a = 0;
    std::size_t hops = 0;
    m.add("route_cached_ns", time_ns_per_op(min_ms, ops, [&] {
            for (int i = 0; i < ops; ++i) {
              const int b = (a * 31 + 17) % torus.node_count();
              hops += cache.path(a, b).size();
              a = (a + 1) % torus.node_count();
            }
          }));
    if (hops == 0) std::fprintf(stderr, "route_cached: empty routes?\n");
  }
}

void bench_end_to_end(Metrics& m, double min_ms) {
  const auto machine = machine::paragon(10, 10);
  const auto alg = stop::make_br_lin();
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 30, 4096);
  stop::RunResult last;
  const double ns = time_ns_per_op(min_ms, 1, [&] {
    last = stop::run(*alg, pb);
  });
  m.add("end_to_end_brlin_wall_ms", ns / 1e6);
  m.add("end_to_end_brlin_events_per_sec",
        static_cast<double>(last.outcome.events) / (ns / 1e9));
  m.add("end_to_end_brlin_peak_queue_depth",
        static_cast<double>(last.outcome.peak_queue_depth));
}

void bench_end_to_end_parallel(Metrics& m, double min_ms) {
  // The acceptance combo of the sharded engine: t3d512 long-message
  // broadcast, serial loop vs the sharded conservative-window engine at 8
  // drain workers.  Both events/sec rates gate; the window-efficiency
  // numbers describe how much concurrency the windows actually exposed
  // (informational).  On a single-core host the parallel rate reflects
  // engine overhead, not scaling — the byte-identical-outcome contract is
  // what the concurrency tests pin down.
  const auto machine = machine::t3d(512);
  const auto alg = stop::make_br_lin();
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kRandom, 64, 65536, 5);

  stop::RunResult serial;
  const double serial_ns = time_ns_per_op(min_ms, 1, [&] {
    serial = stop::run(*alg, pb);
  });
  m.add("end_to_end_t3d_serial_events_per_sec",
        static_cast<double>(serial.outcome.events) / (serial_ns / 1e9));

  stop::RunResult par;
  const double par_ns = time_ns_per_op(min_ms, 1, [&] {
    par = stop::run(*alg, pb, stop::RunConfig{}.sim_threads(8));
  });
  m.add("end_to_end_t3d_par_events_per_sec",
        static_cast<double>(par.outcome.events) / (par_ns / 1e9));
  const mp::ParallelStats& ps = par.outcome.par;
  m.add("par_shards", static_cast<double>(ps.shards));
  m.add("par_windows", static_cast<double>(ps.windows));
  const std::uint64_t slots =
      ps.windows * static_cast<std::uint64_t>(ps.shards);
  m.add("par_window_busy_frac",
        slots == 0 ? 0.0
                   : 1.0 - static_cast<double>(ps.idle_shard_windows) /
                               static_cast<double>(slots));
}

void bench_sweep(Metrics& m, int jobs) {
  // The analyzer sweep over the 4x4 Paragon: every algorithm x every
  // distribution, exactly what `analyze_schedule --machine paragon4x4`
  // runs.  Timed once serial, once with `jobs` threads.
  std::vector<analyze::SweepCombo> grid;
  const machine::MachineConfig machine = machine::paragon(4, 4);
  for (const stop::AlgorithmPtr& alg : stop::all_algorithms())
    for (const dist::Kind kind : dist::all_kinds())
      grid.push_back({"paragon4x4", machine, alg, kind});
  const analyze::SweepOptions sopt;

  const auto timed_sweep = [&](int n_jobs) {
    std::vector<analyze::ComboResult> results(grid.size());
    const bench::SweepRunner runner(n_jobs);
    const Clock::time_point t0 = Clock::now();
    runner.run(grid.size(), [&](std::size_t i) {
      results[i] = analyze::analyze_combo(grid[i], sopt);
    });
    return elapsed_ms(t0);
  };

  m.add("sweep_combos", static_cast<double>(grid.size()));
  m.add("sweep_serial_ms", timed_sweep(1));
  m.add("sweep_jobs", jobs);
  m.add("sweep_parallel_ms", timed_sweep(jobs));
}

void write_json(const Metrics& m, const std::string& path, bool quick) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"quick\": %s,\n  \"metrics\": {\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < m.values.size(); ++i)
    std::fprintf(f, "    \"%s\": %.4f%s\n", m.values[i].first.c_str(),
                 m.values[i].second,
                 i + 1 < m.values.size() ? "," : "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Perf-regression harness: emits BENCH_core.json "
                      "for tools/bench_compare.py",
       .extras = {{.name = "--quick",
                   .toggle = &quick,
                   .help = "short timing windows (CI smoke)"}},
       .allow_positional = true,
       .positional_help = "[out.json]"});
  const std::string out = opt.out_or(
      opt.positional.empty() ? "BENCH_core.json" : opt.positional);
  const int jobs =
      opt.jobs_set ? opt.jobs : bench::SweepRunner::hardware_jobs();
  const double min_ms = quick ? 20.0 : 200.0;

  Metrics m;
  bench_event_queue(m, min_ms);
  bench_payload_merge(m, min_ms);
  bench_routes(m, min_ms);
  bench_end_to_end(m, min_ms);
  bench_end_to_end_parallel(m, min_ms);
  bench_sweep(m, jobs);

  for (const auto& [name, value] : m.values)
    std::printf("%-36s %14.2f\n", name.c_str(), value);
  write_json(m, out, quick);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
