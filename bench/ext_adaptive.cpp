// Extension: the adaptive repositioner (the paper's future-work hint —
// "our algorithms do not analyze the input distribution").  Across every
// distribution family on the paper's 16x16 repositioning setup, the
// adaptive algorithm must track min(Br_xy_source, Repos_xy_source) —
// repositioning when the input is hard, skipping when it is near-ideal.
#include <memory>

#include "stop/adaptive_repos.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: adaptive repositioning across all "
                      "distributions (16x16 Paragon, L=6K)"});
  bench::Checker check("Extension — adaptive repositioning, 16x16 Paragon");

  const auto machine = opt.machine_or(machine::paragon(16, 16));
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  // Concrete type: the table reports the decision the algorithm actually
  // made (should_reposition), not one inferred from timings.
  const auto adaptive =
      std::make_shared<const stop::AdaptiveRepositioning>(base);

  TextTable t;
  t.row()
      .cell("dist")
      .cell("s")
      .cell("base [ms]")
      .cell("repos [ms]")
      .cell("adaptive [ms]")
      .cell("chose");
  double worst_regret = 0;
  int decisions_matching_best = 0;
  int cases = 0;
  bool decisions_consistent = true;
  for (const dist::Kind kind : dist::all_kinds()) {
    for (const int s : {48, 96}) {
      const stop::Problem pb =
          stop::make_problem(machine, kind, s, opt.len_or(6144));
      const double b = bench::time_ms(base, pb);
      const double r = bench::time_ms(repos, pb);
      const double a = bench::time_ms(adaptive, pb);
      // The actual decision, straight from the algorithm.  The old
      // inference `a == r && r != b` broke down exactly when the branches
      // tied: near-ideal inputs make base and repos times equal, and any
      // exact-float coincidence misreported the choice.
      const bool chose_repos =
          adaptive->should_reposition(stop::Frame::whole(pb));
      // The adaptive run must reproduce its chosen branch's time.
      decisions_consistent =
          decisions_consistent && a == (chose_repos ? r : b);
      const double best = std::min(b, r);
      worst_regret = std::max(worst_regret, a / best);
      ++cases;
      if (a <= best * 1.02) ++decisions_matching_best;
      t.row()
          .cell(dist::kind_name(kind))
          .num(static_cast<std::int64_t>(s))
          .num(b, 2)
          .num(r, 2)
          .num(a, 2)
          .cell(chose_repos ? "reposition" : "direct");
    }
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(worst_regret < 1.12,
               "adaptive never loses more than 12% to the better choice "
               "(worst regret " + fixed(worst_regret, 3) + ")");
  check.expect(decisions_matching_best * 4 >= cases * 3,
               "the decision matches the better choice in >= 75% of cases "
               "(" + std::to_string(decisions_matching_best) + "/" +
                   std::to_string(cases) + ")");
  check.expect(decisions_consistent,
               "the reported decision reproduces the chosen branch's time");
  return check.exit_code();
}
