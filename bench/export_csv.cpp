// Dumps the figure series as CSV files for external plotting — one file
// per reproduced figure — into the directory given as argv[1] (default
// "results").  The fig* bench binaries remain the source of truth for the
// claims; this tool only re-emits the raw series in a machine-friendly
// format.
//
//   $ ./export_csv results/
//   $ ./export_csv results/ --jobs 4     # figures in parallel, same bytes
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "options.h"
#include "stop/algorithm.h"
#include "stop/run.h"
#include "sweep_runner.h"

namespace {

using namespace spb;

// Silent on stdout: figures run concurrently under --jobs, so main prints
// the path list in figure order afterwards — output is byte-identical for
// every job count.
FILE* open_csv(const std::filesystem::path& dir, const std::string& name,
               const std::string& header) {
  const std::filesystem::path path = dir / name;
  FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", header.c_str());
  return f;
}

void fig03(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(10, 10);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false),      stop::make_two_step(true),
      stop::make_pers_alltoall(false), stop::make_pers_alltoall(true),
      stop::make_br_lin(),             stop::make_br_xy_source(),
      stop::make_br_xy_dim()};
  std::string header = "s";
  for (const auto& a : algorithms) header += "," + a->name();
  FILE* f = open_csv(dir, "fig03.csv", header);
  for (int s = 5; s <= 100; s += 5) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, 4096);
    std::fprintf(f, "%d", s);
    for (const auto& a : algorithms)
      std::fprintf(f, ",%.4f", stop::run_ms(*a, pb));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig04(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(10, 10);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false), stop::make_pers_alltoall(false),
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim()};
  std::string header = "L";
  for (const auto& a : algorithms) header += "," + a->name();
  FILE* f = open_csv(dir, "fig04.csv", header);
  for (Bytes L = 32; L <= 16384; L *= 2) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kDiagRight, 30, L);
    std::fprintf(f, "%llu", static_cast<unsigned long long>(L));
    for (const auto& a : algorithms)
      std::fprintf(f, ",%.4f", stop::run_ms(*a, pb));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig05(const std::filesystem::path& dir) {
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false), stop::make_pers_alltoall(false),
      stop::make_br_lin(), stop::make_br_xy_source()};
  std::string header = "p";
  for (const auto& a : algorithms) header += "," + a->name();
  FILE* f = open_csv(dir, "fig05.csv", header);
  const int shapes[][2] = {{2, 2},  {2, 4},  {4, 4},  {4, 8},
                           {8, 8},  {8, 16}, {16, 16}};
  for (const auto& sh : shapes) {
    const auto machine = machine::paragon(sh[0], sh[1]);
    const int s = std::max(
        1, static_cast<int>(std::lround(std::sqrt(machine.p))));
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kDiagRight, s, 1024);
    std::fprintf(f, "%d", machine.p);
    for (const auto& a : algorithms)
      std::fprintf(f, ",%.4f", stop::run_ms(*a, pb));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig09(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(16, 16);
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  const std::vector<dist::Kind> kinds = {dist::Kind::kEqual,
                                         dist::Kind::kBand,
                                         dist::Kind::kCross,
                                         dist::Kind::kSquare};
  std::string header = "s";
  for (const dist::Kind k : kinds)
    header += ",gain_" + dist::kind_name(k);
  FILE* f = open_csv(dir, "fig09.csv", header);
  for (int s = 16; s <= 192; s += 16) {
    std::fprintf(f, "%d", s);
    for (const dist::Kind k : kinds) {
      const stop::Problem pb = stop::make_problem(machine, k, s, 6144);
      const double b = stop::run_ms(*base, pb);
      const double r = stop::run_ms(*repos, pb);
      std::fprintf(f, ",%.5f", (b - r) / b);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig06(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(10, 10);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim()};
  std::string header = "dist";
  for (const auto& a : algorithms) header += "," + a->name();
  FILE* f = open_csv(dir, "fig06.csv", header);
  for (const dist::Kind k : dist::all_kinds()) {
    if (k == dist::Kind::kRandom) continue;
    const stop::Problem pb = stop::make_problem(machine, k, 30, 2048);
    std::fprintf(f, "%s", dist::kind_name(k).c_str());
    for (const auto& a : algorithms)
      std::fprintf(f, ",%.4f", stop::run_ms(*a, pb));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig07(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(10, 10);
  FILE* f = open_csv(dir, "fig07.csv",
                     "s,L,Br_Lin,Br_xy_source,Br_xy_dim");
  for (const int s : {2, 4, 5, 8, 10, 16, 20, 40, 80}) {
    const Bytes L = 80 * 1024 / static_cast<Bytes>(s);
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kDiagRight, s, L);
    std::fprintf(f, "%d,%llu,%.4f,%.4f,%.4f\n", s,
                 static_cast<unsigned long long>(L),
                 stop::run_ms(*stop::make_br_lin(), pb),
                 stop::run_ms(*stop::make_br_xy_source(), pb),
                 stop::run_ms(*stop::make_br_xy_dim(), pb));
  }
  std::fclose(f);
}

void fig08(const std::filesystem::path& dir) {
  FILE* f = open_csv(dir, "fig08.csv", "rows,cols,s8,s15,s60");
  const int shapes[][2] = {{4, 30}, {5, 24}, {6, 20},
                           {8, 15}, {10, 12}, {12, 10}};
  for (const auto& sh : shapes) {
    const auto machine = machine::paragon(sh[0], sh[1]);
    std::fprintf(f, "%d,%d", sh[0], sh[1]);
    for (const int s : {8, 15, 60}) {
      const stop::Problem pb =
          stop::make_problem(machine, dist::Kind::kEqual, s, 4096);
      std::fprintf(f, ",%.4f", stop::run_ms(*stop::make_br_lin(), pb));
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig10(const std::filesystem::path& dir) {
  const auto machine = machine::paragon(16, 16);
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  FILE* f = open_csv(dir, "fig10.csv", "L,gain_E,gain_B,gain_Cr,gain_Sq");
  for (Bytes L = 32; L <= 16384; L *= 2) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(L));
    for (const dist::Kind k :
         {dist::Kind::kEqual, dist::Kind::kBand, dist::Kind::kCross,
          dist::Kind::kSquare}) {
      const stop::Problem pb = stop::make_problem(machine, k, 75, L);
      const double b = stop::run_ms(*base, pb);
      std::fprintf(f, ",%.5f", (b - stop::run_ms(*repos, pb)) / b);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void fig11b(const std::filesystem::path& dir) {
  const auto machine = machine::t3d(128);
  FILE* f = open_csv(dir, "fig11b.csv", "s,MPI_AllGather");
  for (const int s : {8, 16, 32, 48, 64, 96, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, 16384);
    std::fprintf(f, "%d,%.4f\n", s,
                 stop::run_ms(*stop::make_two_step(true), pb));
  }
  std::fclose(f);
}

void fig12(const std::filesystem::path& dir) {
  const auto machine = machine::t3d(128);
  FILE* f = open_csv(dir, "fig12.csv",
                     "s,L,Alltoall_E,Alltoall_R,Alltoall_Sq,AllGather_E");
  for (const int s : {8, 16, 32, 64, 128}) {
    const Bytes L = 128 * 1024 / static_cast<Bytes>(s);
    std::fprintf(f, "%d,%llu", s, static_cast<unsigned long long>(L));
    for (const dist::Kind k :
         {dist::Kind::kEqual, dist::Kind::kRow, dist::Kind::kSquare}) {
      const stop::Problem pb = stop::make_problem(machine, k, s, L);
      std::fprintf(f, ",%.4f",
                   stop::run_ms(*stop::make_pers_alltoall(true), pb));
    }
    const stop::Problem pe =
        stop::make_problem(machine, dist::Kind::kEqual, s, L);
    std::fprintf(f, ",%.4f\n", stop::run_ms(*stop::make_two_step(true), pe));
  }
  std::fclose(f);
}

void fig13a(const std::filesystem::path& dir) {
  const auto machine = machine::t3d(128);
  FILE* f = open_csv(dir, "fig13a.csv",
                     "s,MPI_AllGather,MPI_Alltoall,Br_Lin");
  for (const int s : {5, 10, 20, 30, 40, 56, 64, 80, 96, 112, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, 4096);
    std::fprintf(f, "%d,%.4f,%.4f,%.4f\n", s,
                 stop::run_ms(*stop::make_two_step(true), pb),
                 stop::run_ms(*stop::make_pers_alltoall(true), pb),
                 stop::run_ms(*stop::make_br_lin(), pb));
  }
  std::fclose(f);
}

struct FigJob {
  const char* file;
  void (*fn)(const std::filesystem::path&);
};

// Listed in the historical serial order; the path list prints in this
// order regardless of which worker finishes first.
constexpr FigJob kFigures[] = {
    {"fig03.csv", fig03}, {"fig04.csv", fig04},   {"fig05.csv", fig05},
    {"fig06.csv", fig06}, {"fig07.csv", fig07},   {"fig08.csv", fig08},
    {"fig09.csv", fig09}, {"fig10.csv", fig10},   {"fig11b.csv", fig11b},
    {"fig12.csv", fig12}, {"fig13a.csv", fig13a},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Exports the figure series as CSV files "
                      "(--out or [dir], default ./results)",
       .allow_positional = true,
       .positional_help = "[dir]"});
  const std::filesystem::path dir = opt.out_or(
      opt.positional.empty() ? "results" : opt.positional);
  const int jobs = opt.jobs;
  std::filesystem::create_directories(dir);
  std::printf("writing figure series:\n");
  const std::size_t count = std::size(kFigures);
  const bench::SweepRunner runner(jobs);
  runner.run(count, [&](std::size_t i) { kFigures[i].fn(dir); });
  for (const FigJob& job : kFigures)
    std::printf("  %s\n", (dir / job.file).string().c_str());
  std::printf("done.\n");
  return 0;
}
