// Extension (beyond the paper): why MPI collectives absorbed s-to-p
// broadcasting.  Allgatherv_RD is the recursive halving/doubling
// allgatherv of a modern MPI implementation — Br_Lin's merge pattern with
// gatherv-style placement instead of explicit combining.  Against the
// paper's algorithms on both machines:
//
//  * on the Paragon it matches the Br_* family (the paper's contribution
//    is, in effect, an allgatherv);
//  * on the T3D it removes exactly the combining cost that made Br_Lin
//    lose, beating the three algorithms the paper measured there —
//    distribution-robustness included, since its schedule adapts to the
//    source positions the way Br_Lin's does.
#include "stop/allgatherv_rd.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: modern Allgatherv_RD vs the paper's "
                      "algorithms (Paragon 10x10 and T3D 128, L=4K)"});
  bench::Checker check("Extension — modern Allgatherv_RD vs the paper's "
                       "algorithms");

  const auto modern = stop::make_allgatherv_rd();
  const Bytes L = opt.len_or(4096);

  bench::section("Paragon 10x10, E(s), L=4K");
  TextTable tp;
  tp.row().cell("s").cell("Allgatherv_RD").cell("Br_xy_source").cell(
      "2-Step");
  std::map<int, double> p_modern;
  std::map<int, double> p_brxy;
  for (const int s : {10, 30, 60, 100}) {
    const stop::Problem pb = stop::make_problem(
        machine::paragon(10, 10), dist::Kind::kEqual, s, L);
    p_modern[s] = bench::time_ms(modern, pb);
    p_brxy[s] = bench::time_ms(stop::make_br_xy_source(), pb);
    tp.row()
        .num(static_cast<std::int64_t>(s))
        .num(p_modern[s], 2)
        .num(p_brxy[s], 2)
        .num(bench::time_ms(stop::make_two_step(false), pb), 2);
  }
  std::printf("%s\n", tp.render().c_str());

  bench::section("T3D p=128, E(s), L=4K");
  TextTable tt;
  tt.row()
      .cell("s")
      .cell("Allgatherv_RD")
      .cell("MPI_Alltoall")
      .cell("MPI_AllGather")
      .cell("Br_Lin");
  std::map<int, double> t_modern;
  std::map<int, double> t_best_paper;
  for (const int s : {10, 40, 96, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine::t3d(128), dist::Kind::kEqual, s, L);
    const double a2a = bench::time_ms(stop::make_pers_alltoall(true), pb);
    const double gather = bench::time_ms(stop::make_two_step(true), pb);
    const double br = bench::time_ms(stop::make_br_lin(), pb);
    t_modern[s] = bench::time_ms(modern, pb);
    t_best_paper[s] = std::min({a2a, gather, br});
    tt.row()
        .num(static_cast<std::int64_t>(s))
        .num(t_modern[s], 2)
        .num(a2a, 2)
        .num(gather, 2)
        .num(br, 2);
  }
  std::printf("%s\n", tt.render().c_str());

  for (const int s : {30, 100}) {
    check.expect_ratio(p_modern[s], p_brxy[s], 0.5, 1.5,
                       "Paragon: the modern collective ~ Br_xy_source at "
                       "s=" + std::to_string(s));
  }
  for (const int s : {40, 96, 128}) {
    check.expect(t_modern[s] < t_best_paper[s],
                 "T3D: the modern collective beats everything the paper "
                 "measured at s=" + std::to_string(s));
  }
  return check.exit_code();
}
