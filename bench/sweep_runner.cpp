#include "sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace spb::bench {

SweepRunner::SweepRunner(int jobs) : jobs_(jobs) {
  SPB_REQUIRE(jobs >= 0, "negative job count " << jobs);
  if (jobs_ < 1) jobs_ = 1;
}

void SweepRunner::run(std::size_t count,
                      const std::function<void(std::size_t)>& task) const {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

int SweepRunner::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace spb::bench
