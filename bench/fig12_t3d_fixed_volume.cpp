// Figure 12: 128-processor T3D, total message volume fixed at 128K, the
// number of sources varying, across distributions.
//
// The paper's claim — "for a given problem size, better performance is
// obtained when the broadcast data is initially distributed over a large
// number of source processors" — reproduces cleanly for MPI_Alltoall,
// whose source-side fan-out cost shrinks as the per-source message
// shrinks.  For the root-serialized MPI_AllGather our model shows the
// opposite mild trend (each extra source adds a fixed root cost while the
// broadcast volume stays put); EXPERIMENTS.md discusses the divergence.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 12: fixed total volume (--len, default "
                      "128K) over a swept source count (T3D p=128)"});
  bench::Checker check("Figure 12 — T3D p=128, total 128K, s varies");

  const auto machine = opt.machine_or(machine::t3d(128));
  const Bytes total = opt.len_or(128 * 1024);
  const auto alltoall = stop::make_pers_alltoall(true);
  const auto allgather = stop::make_two_step(true);
  const std::vector<dist::Kind> kinds = {dist::Kind::kEqual,
                                         dist::Kind::kRow,
                                         dist::Kind::kSquare};

  TextTable t;
  t.row().cell("s").cell("L");
  for (const dist::Kind k : kinds)
    t.cell("Alltoall/" + dist::kind_name(k));
  t.cell("AllGather/E");
  std::map<std::string, std::map<int, double>> ms;
  for (const int s : {8, 16, 32, 64, 128}) {
    const Bytes L = total / static_cast<Bytes>(s);
    t.row().num(static_cast<std::int64_t>(s)).cell(human_bytes(L));
    for (const dist::Kind k : kinds) {
      const stop::Problem pb = stop::make_problem(machine, k, s, L);
      const double v = bench::time_ms(alltoall, pb);
      ms["a2a_" + dist::kind_name(k)][s] = v;
      t.num(v, 2);
    }
    const stop::Problem pe =
        stop::make_problem(machine, dist::Kind::kEqual, s, L);
    ms["gather"][s] = bench::time_ms(allgather, pe);
    t.num(ms["gather"][s], 2);
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(ms["a2a_E"][64] < ms["a2a_E"][8],
               "MPI_Alltoall: spreading 128K over 64 sources beats 8");
  check.expect(ms["a2a_E"][32] < ms["a2a_E"][16],
               "MPI_Alltoall: 32 sources beat 16");
  check.expect(ms["a2a_Sq"][64] < ms["a2a_Sq"][8],
               "the trend holds on the square-block distribution too");
  // Our model adds a receive-side floor that turns the curve gently
  // U-shaped at s -> p; the improvement-from-spreading regime covers
  // s <= p/2, which is where the paper's observation lives.
  check.expect(ms["a2a_E"][128] < ms["a2a_E"][8],
               "even s = p beats the most concentrated case");
  // "The type of distribution has significant impact when s <= p/4" —
  // beyond that the curves bunch up.
  const double spread_128 =
      std::max({ms["a2a_E"][128], ms["a2a_R"][128], ms["a2a_Sq"][128]}) /
      std::min({ms["a2a_E"][128], ms["a2a_R"][128], ms["a2a_Sq"][128]});
  check.expect(spread_128 < 1.25,
               "distributions converge once s approaches p");
  return check.exit_code();
}
