// Unified CLI parser for every bench binary.
//
// All 28 benches accept the same flag set through parse_options():
//
//   --machine M   any machine::Registry spec (paragonRxC, t3dP[:SEED],
//                 hypercubeD, torusK1xK2x..., clusterNxM); "list" prints
//                 the registry catalogue and exits
//   --dist D      R C E Dr Dl B Cr Sq Rand
//   --sources N   source count
//   --len N       message length in bytes
//   --jobs N      worker threads (0 = all cores); default from the
//                 SPB_BENCH_JOBS environment variable (see default_jobs())
//   --reps N      timing repetitions (deterministic sim: for overhead
//                 studies, not noise averaging)
//   --seed N      distribution seed
//   --out PATH    output file/directory (benches that write one)
//   --help        flag summary plus the bench's own description
//
// Figure benches sweep an axis (sources, message length, machines); the
// swept axis ignores its override flag, everything else takes effect where
// the bench has a single default.  Option values are held in
// std::optional, and the *_or() helpers fold in each bench's default:
//
//   int main(int argc, char** argv) {
//     const bench::Options opt = bench::parse_options(
//         argc, argv, {.description = "Figure 3: time vs source count"});
//     const auto machine = opt.machine_or(machine::paragon(10, 10));
//     const Bytes len = opt.len_or(4096);
//     ... opt.jobs ...
//   }
//
// Bench-specific flags (perf_harness's --quick) register as ExtraFlags and
// print in the same --help.  The parse core never exits and returns errors
// as text, so tests drive it directly; parse_options() is the exiting
// wrapper for main().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "dist/distribution.h"
#include "machine/config.h"

namespace spb::bench {

/// A bench-specific flag, e.g. {"--quick", &quick} or {"--base", &path}.
struct ExtraFlag {
  std::string name;
  bool* toggle = nullptr;         // set true when the flag appears
  std::string* value = nullptr;   // takes one value when non-null
  std::string help;
};

/// Parsed unified options; unset fields mean "use the bench's default".
struct Options {
  std::optional<std::string> machine;
  std::optional<std::string> dist;
  std::optional<int> sources;
  std::optional<Bytes> len;
  std::optional<std::uint64_t> seed;
  std::optional<int> reps;
  std::string out;         // --out (empty = bench default)
  std::string positional;  // first bare argument, when the spec allows one
  int jobs = 1;            // resolved: --jobs, else SPB_BENCH_JOBS, else 1
  bool jobs_set = false;   // --jobs appeared (perf_harness defaults to all
                           // cores when it did not)

  // Fold in the bench's default for unset flags.  machine_or/dist_or parse
  // the flag text (throwing CheckError on bad input).
  machine::MachineConfig machine_or(
      const machine::MachineConfig& fallback) const;
  dist::Kind dist_or(dist::Kind fallback) const;
  int sources_or(int fallback) const {
    return sources.has_value() ? *sources : fallback;
  }
  Bytes len_or(Bytes fallback) const {
    return len.has_value() ? *len : fallback;
  }
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed.has_value() ? *seed : fallback;
  }
  int reps_or(int fallback) const {
    return reps.has_value() ? *reps : fallback;
  }
  std::string out_or(const std::string& fallback) const {
    return out.empty() ? fallback : out;
  }
};

/// What a bench tells the parser about itself.
struct ParseSpec {
  std::string description;  // one line under "usage:" in --help
  std::vector<ExtraFlag> extras;
  bool allow_positional = false;
  std::string positional_help;  // e.g. "[out.json]"
};

/// Non-exiting parse core: fills `out`, returns "" on success or an error
/// message ("help" when --help was requested).  Unit-tested directly.
std::string parse_options_into(int argc, const char* const* argv,
                               const ParseSpec& spec, Options& out);

/// Usage text for the spec (what --help prints).
std::string usage_text(const std::string& argv0, const ParseSpec& spec);

/// Exiting wrapper for bench main()s: prints usage and exits on --help
/// (status 0) or a parse error (status 2).
Options parse_options(int argc, char** argv, const ParseSpec& spec = {});

}  // namespace spb::bench
