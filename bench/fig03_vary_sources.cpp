// Figure 3: performance on a 10x10 Paragon, equal distribution, L = 4K,
// number of sources varying from 1 to 100.  Seven algorithms, including
// the MPI flavours of the two library-based baselines.
//
// Paper claims reproduced:
//  * Br_Lin / Br_xy_source / Br_xy_dim give the best, almost identical
//    performance;
//  * 2-Step and PersAlltoAll perform poorly, their MPI versions worse
//    than the NX versions;
//  * the three Br_* curves scale linearly with the number of sources.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description =
           "Figure 3: seven algorithms vs source count (10x10 Paragon, "
           "E(s), L=4K)"});
  bench::Checker check("Figure 3 — 10x10 Paragon, E(s), L=4K, s=1..100");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  const Bytes L = opt.len_or(4096);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false),     stop::make_two_step(true),
      stop::make_pers_alltoall(false), stop::make_pers_alltoall(true),
      stop::make_br_lin(),            stop::make_br_xy_source(),
      stop::make_br_xy_dim(),
  };
  const std::vector<int> source_counts = {1,  5,  10, 20, 30, 40,
                                          50, 60, 70, 80, 90, 100};

  const dist::Kind kind = opt.dist_or(dist::Kind::kEqual);
  std::vector<bench::SweepCase> cases;
  for (const int s : source_counts) {
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    for (const auto& a : algorithms) cases.push_back({a, pb});
  }
  const std::vector<double> timed = bench::time_ms_sweep(cases, opt.jobs);

  TextTable t;
  t.row().cell("s");
  for (const auto& a : algorithms) t.cell(a->name());
  std::map<std::string, std::map<int, double>> ms;
  std::size_t next = 0;
  for (const int s : source_counts) {
    t.row().num(static_cast<std::int64_t>(s));
    for (const auto& a : algorithms) {
      const double v = timed[next++];
      ms[a->name()][s] = v;
      t.num(v, 2);
    }
  }
  std::printf("%s\n", t.render().c_str());

  for (const int s : {30, 60, 100}) {
    for (const std::string br :
         {"Br_Lin", "Br_xy_source", "Br_xy_dim"}) {
      check.expect(ms[br][s] < ms["2-Step"][s],
                   br + " beats 2-Step at s=" + std::to_string(s));
      check.expect(ms[br][s] < ms["PersAlltoAll"][s],
                   br + " beats PersAlltoAll at s=" + std::to_string(s));
    }
  }
  for (const int s : {10, 50, 100}) {
    check.expect(ms["MPI_AllGather"][s] > ms["2-Step"][s],
                 "MPI 2-Step slower than NX at s=" + std::to_string(s));
    check.expect(ms["MPI_Alltoall"][s] > ms["PersAlltoAll"][s],
                 "MPI PersAlltoAll slower than NX at s=" +
                     std::to_string(s));
  }
  // "The three curves giving the best (and almost identical) performance".
  for (const int s : {20, 60}) {
    check.expect_ratio(ms["Br_xy_source"][s], ms["Br_Lin"][s], 0.6, 1.6,
                       "Br_xy_source ~ Br_Lin at s=" + std::to_string(s));
    check.expect_ratio(ms["Br_xy_dim"][s], ms["Br_xy_source"][s], 0.6, 1.6,
                       "Br_xy_dim ~ Br_xy_source at s=" + std::to_string(s));
  }
  // Linear scaling: time(s=100)/time(s=20) ~ 100/20 within a loose band.
  check.expect_ratio(ms["Br_Lin"][100], ms["Br_Lin"][20], 2.0, 8.0,
                     "Br_Lin scales roughly linearly in s");
  return check.exit_code();
}
