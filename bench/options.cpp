#include "options.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/parse.h"
#include "machine/registry.h"
#include "sweep_runner.h"
#include "util.h"

namespace spb::bench {

machine::MachineConfig Options::machine_or(
    const machine::MachineConfig& fallback) const {
  return machine.has_value() ? machine::from_name(*machine) : fallback;
}

dist::Kind Options::dist_or(dist::Kind fallback) const {
  return dist.has_value() ? dist::kind_from_name(*dist) : fallback;
}

std::string usage_text(const std::string& argv0, const ParseSpec& spec) {
  std::ostringstream os;
  os << "usage: " << argv0 << " [options]";
  if (spec.allow_positional && !spec.positional_help.empty())
    os << " " << spec.positional_help;
  os << "\n";
  if (!spec.description.empty()) os << "  " << spec.description << "\n";
  os << "  --machine M   " << machine::Registry::instance().grammar() << "\n"
     << "  --dist D      R C E Dr Dl B Cr Sq Rand\n"
     << "  --sources N   source count\n"
     << "  --len N       message length in bytes\n"
     << "  --seed N      distribution seed\n"
     << "  --reps N      timing repetitions\n"
     << "  --jobs N      worker threads (0 = all cores; default "
     << "SPB_BENCH_JOBS or 1)\n"
     << "  --out PATH    output file/directory\n";
  for (const ExtraFlag& f : spec.extras) {
    std::string left = "  " + f.name + (f.value != nullptr ? " V" : "");
    while (left.size() < 16) left += ' ';
    os << left << f.help << "\n";
  }
  os << "  --help        this summary\n"
     << "Swept axes (the figure's x-axis) ignore their override flag.\n";
  return os.str();
}

std::string parse_options_into(int argc, const char* const* argv,
                               const ParseSpec& spec, Options& out) {
  out = Options{};
  out.jobs = default_jobs();
  bool have_positional = false;
  const auto next = [&](int& i, const std::string& flag,
                        std::string& value) -> std::string {
    if (i + 1 >= argc) return flag + " needs a value";
    value = argv[++i];
    return "";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    std::string err;
    if (a == "--help" || a == "-h") return "help";
    if (a == "--machine") {
      if (!(err = next(i, a, v)).empty()) return err;
      out.machine = v;
    } else if (a == "--dist") {
      if (!(err = next(i, a, v)).empty()) return err;
      out.dist = v;
    } else if (a == "--sources") {
      int n = 0;
      if (!(err = next(i, a, v)).empty()) return err;
      if (!try_parse_int(v, n, err))
        return "bad --sources value '" + v + "': " + err;
      out.sources = n;
    } else if (a == "--len") {
      std::uint64_t n = 0;
      if (!(err = next(i, a, v)).empty()) return err;
      if (!try_parse_u64(v, n, err))
        return "bad --len value '" + v + "': " + err;
      out.len = static_cast<Bytes>(n);
    } else if (a == "--seed") {
      std::uint64_t n = 0;
      if (!(err = next(i, a, v)).empty()) return err;
      if (!try_parse_u64(v, n, err))
        return "bad --seed value '" + v + "': " + err;
      out.seed = n;
    } else if (a == "--reps") {
      int n = 0;
      if (!(err = next(i, a, v)).empty()) return err;
      if (!try_parse_int(v, n, err) || n < 1)
        return "bad --reps value '" + v + "'" +
               (err.empty() ? ": must be >= 1" : ": " + err);
      out.reps = n;
    } else if (a == "--jobs") {
      int n = 0;
      if (!(err = next(i, a, v)).empty()) return err;
      if (!try_parse_int(v, n, err))
        return "bad --jobs value '" + v + "': " + err;
      out.jobs = n == 0 ? SweepRunner::hardware_jobs() : n;
      out.jobs_set = true;
    } else if (a == "--out") {
      if (!(err = next(i, a, v)).empty()) return err;
      out.out = v;
    } else {
      bool matched = false;
      for (const ExtraFlag& f : spec.extras) {
        if (a != f.name) continue;
        matched = true;
        if (f.value != nullptr) {
          if (!(err = next(i, a, v)).empty()) return err;
          *f.value = v;
        }
        if (f.toggle != nullptr) *f.toggle = true;
        break;
      }
      if (matched) continue;
      if (spec.allow_positional && !a.empty() && a[0] != '-' &&
          !have_positional) {
        out.positional = a;
        have_positional = true;
        continue;
      }
      return "unknown option '" + a + "'";
    }
  }
  return "";
}

Options parse_options(int argc, char** argv, const ParseSpec& spec) {
  Options out;
  const std::string err = parse_options_into(argc, argv, spec, out);
  if (err == "help") {
    std::cout << usage_text(argv[0], spec);
    std::exit(0);
  }
  if (out.machine.has_value() && *out.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    std::exit(0);
  }
  if (!err.empty()) {
    std::cerr << argv[0] << ": " << err << "\n"
              << usage_text(argv[0], spec);
    std::exit(2);
  }
  return out;
}

}  // namespace spb::bench
