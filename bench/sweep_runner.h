// Deterministic parallel sweep execution.
//
// Every simulation in spb is a self-contained sim::Simulator, so sweep
// points (figure series entries, analyzer combinations) are independent
// and embarrassingly parallel.  SweepRunner fans task(i) out over a small
// thread pool; determinism is preserved by construction because each task
// writes only into its own index-addressed result slot and callers emit
// results in input order afterwards.  A parallel sweep is therefore
// byte-identical to a serial one — tests/bench/sweep_determinism_test.cpp
// holds this to the letter.
#pragma once

#include <cstddef>
#include <functional>

namespace spb::bench {

class SweepRunner {
 public:
  /// jobs <= 1 runs tasks inline on the calling thread (no pool, no
  /// nondeterminism to even worry about); jobs > 1 uses that many worker
  /// threads.
  explicit SweepRunner(int jobs);

  int jobs() const { return jobs_; }

  /// Runs task(0) .. task(count - 1), each exactly once, and returns when
  /// all have finished.  Tasks are claimed dynamically (an atomic cursor),
  /// so slow combos don't stall a statically assigned stripe.  If any task
  /// throws, the first exception (in completion order) is rethrown after
  /// every worker has drained; remaining tasks still run.
  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) const;

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_jobs();

 private:
  int jobs_;
};

}  // namespace spb::bench
