// Figure 5: Paragon machine sizes from 4 to 256 processors, L = 1K,
// approximately sqrt(p) sources, right diagonal distribution.
//
// Paper claims reproduced:
//  * PersAlltoAll is as good as any other algorithm for small machines
//    (4..16 processors);
//  * at larger machine sizes the Br_* algorithms pull far ahead of the
//    two library-based baselines.
#include <cmath>

#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 5: machine sizes 4..256 (swept), L=1K, "
                      "s~sqrt(p), Dr"});
  bench::Checker check(
      "Figure 5 — Paragon p=4..256, L=1K, s~sqrt(p), Dr");

  const Bytes L = opt.len_or(1024);
  const dist::Kind kind = opt.dist_or(dist::Kind::kDiagRight);
  struct Shape {
    int rows;
    int cols;
  };
  const std::vector<Shape> shapes = {{2, 2},  {2, 4},   {4, 4},  {4, 8},
                                     {8, 8},  {8, 16},  {16, 16}};
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_two_step(false), stop::make_pers_alltoall(false),
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim(),
  };

  TextTable t;
  t.row().cell("p");
  for (const auto& a : algorithms) t.cell(a->name());
  std::map<std::string, std::map<int, double>> ms;
  for (const Shape& sh : shapes) {
    const auto machine = machine::paragon(sh.rows, sh.cols);
    const int p = machine.p;
    const int s = std::max(1, static_cast<int>(std::lround(std::sqrt(p))));
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    t.row().num(static_cast<std::int64_t>(p));
    for (const auto& a : algorithms) {
      const double v = bench::time_ms(a, pb);
      ms[a->name()][p] = v;
      t.num(v, 3);
    }
  }
  std::printf("%s\n", t.render().c_str());

  for (const int p : {4, 8, 16}) {
    const double best = std::min(
        {ms["Br_Lin"][p], ms["Br_xy_source"][p], ms["2-Step"][p]});
    // Within 2x of the best counts as "as good as any other" at this
    // scale (the paper's 4..16 range; the gap only explodes beyond it).
    const double band = p <= 8 ? 1.5 : 2.0;
    check.expect(ms["PersAlltoAll"][p] < best * band,
                 "PersAlltoAll competitive on a " + std::to_string(p) +
                     "-processor machine");
  }
  for (const int p : {64, 128, 256}) {
    check.expect(ms["Br_Lin"][p] < ms["PersAlltoAll"][p] &&
                     ms["Br_xy_source"][p] < ms["PersAlltoAll"][p],
                 "Br_* ahead of PersAlltoAll at p=" + std::to_string(p));
    check.expect(ms["Br_Lin"][p] < ms["2-Step"][p],
                 "Br_Lin ahead of 2-Step at p=" + std::to_string(p));
  }
  // PersAlltoAll's disadvantage must *grow* with machine size.
  check.expect(ms["PersAlltoAll"][256] / ms["Br_Lin"][256] >
                   ms["PersAlltoAll"][16] / ms["Br_Lin"][16],
               "PersAlltoAll falls behind as the machine grows");
  return check.exit_code();
}
