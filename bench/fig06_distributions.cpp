// Figure 6: three Br_* algorithms on a 10x10 Paragon, L = 2K, s = 30,
// across source distributions (R, C, E, Dr, Dl, B, Sq, Cr).
//
// Paper claims reproduced:
//  * Br_xy_source performs (roughly) the same on R, C, E and the
//    diagonals — rows/columns are its ideal distributions;
//  * square block and cross cost considerably more for all three;
//  * Br_Lin handles the square block and cross best of the three (its
//    halving spreads sources to fresh rows/columns early);
//  * Br_xy_dim blows up on the row distribution — on a square mesh it
//    processes rows first, exactly the wrong choice ("the importance of
//    choosing the right dimension first").
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 6: Br_* across source distributions (swept; "
                      "10x10 Paragon, L=2K, s=30)"});
  bench::Checker check("Figure 6 — 10x10 Paragon, L=2K, s=30, distributions");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  // Default s follows the figure; an overridden (smaller) machine clamps it
  // so --machine composes without also spelling --sources.
  const int s = opt.sources_or(std::min(30, machine.p));
  const Bytes L = opt.len_or(2048);
  const std::vector<stop::AlgorithmPtr> algorithms = {
      stop::make_br_lin(), stop::make_br_xy_source(),
      stop::make_br_xy_dim()};
  const std::vector<dist::Kind> kinds = {
      dist::Kind::kRow,       dist::Kind::kColumn, dist::Kind::kEqual,
      dist::Kind::kDiagRight, dist::Kind::kDiagLeft, dist::Kind::kBand,
      dist::Kind::kSquare,    dist::Kind::kCross};

  TextTable t;
  t.row().cell("distribution");
  for (const auto& a : algorithms) t.cell(a->name());
  std::map<std::string, std::map<std::string, double>> ms;
  for (const dist::Kind kind : kinds) {
    const stop::Problem pb = stop::make_problem(machine, kind, s, L);
    t.row().cell(dist::kind_name(kind) + "(" + std::to_string(s) + ")");
    for (const auto& a : algorithms) {
      const double v = bench::time_ms(a, pb);
      ms[a->name()][dist::kind_name(kind)] = v;
      t.num(v, 2);
    }
  }
  std::printf("%s\n", t.render().c_str());

  auto& xy_source = ms["Br_xy_source"];
  check.expect_ratio(xy_source["C"], xy_source["R"], 0.9, 1.1,
                     "Br_xy_source: column ~ row distribution");
  check.expect_ratio(xy_source["E"], xy_source["R"], 0.8, 1.25,
                     "Br_xy_source: equal ~ row distribution");
  check.expect_ratio(xy_source["Dr"], xy_source["R"], 0.8, 1.4,
                     "Br_xy_source: diagonals near the ideal ones");
  check.expect(xy_source["Sq"] > xy_source["R"] * 1.1,
               "square block costs Br_xy_source considerably more");
  check.expect(xy_source["Cr"] > xy_source["R"] * 1.2,
               "cross costs Br_xy_source considerably more");

  for (const std::string hard : {"Sq", "Cr"}) {
    check.expect(ms["Br_Lin"][hard] <= ms["Br_xy_source"][hard] * 1.05 &&
                     ms["Br_Lin"][hard] <= ms["Br_xy_dim"][hard] * 1.05,
                 "Br_Lin performs best on the hard " + hard +
                     " distribution");
  }

  check.expect(ms["Br_xy_dim"]["R"] > ms["Br_xy_source"]["R"] * 1.25,
               "Br_xy_dim's big increase on the row distribution (wrong "
               "dimension first)");
  check.expect_ratio(ms["Br_xy_dim"]["C"], ms["Br_xy_source"]["C"], 0.8,
                     1.2, "Br_xy_dim fine on the column distribution");
  return check.exit_code();
}
