// ext_serve — serving-layer throughput and determinism gate.
//
// Drives a seeded stream of plan requests (the spb_plan --replay template
// pool, in wire form) through an in-process serve::Server at several
// worker counts, with blocking admission so nothing is load-shed.  Checks:
//
//   1. the response stream is byte-identical at every worker count
//      (responses are pure functions of requests; the reorder buffer
//      restores submission order),
//   2. no request is answered with an error or "overloaded",
//   3. the aggregate cache statistics reconcile: misses == distinct
//      signatures (coalescing: the planner ran once per signature),
//      hits == requests - misses,
//   4. full tier only: sustained throughput >= 100k plan requests/sec.
//
// Emits BENCH_serve.json for tools/bench_compare.py (baseline
// bench/BENCH_serve_baseline.json): throughput is a gated _per_sec rate,
// the latency percentiles ride along as info metrics.
//
//   ext_serve                    # full tier: 100k requests
//   ext_serve out.json --quick   # CI tier: 20k requests
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dist/distribution.h"
#include "machine/config.h"
#include "options.h"
#include "serve/server.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): bench main
using Clock = std::chrono::steady_clock;

/// The spb_plan --replay template pool rendered as wire requests: 32
/// seeded templates, the stream samples among them.
std::vector<std::string> request_lines(const machine::MachineConfig& mc,
                                       int count, std::uint64_t seed) {
  const std::vector<int> s_pool = {
      std::max(1, mc.p / 8), std::max(1, mc.p / 4),
      std::max(1, (3 * mc.p) / 8), std::max(1, mc.p / 2)};
  const std::vector<Bytes> len_pool = {512, 1024, 6144, 32768};
  const auto& kinds = dist::all_kinds();

  constexpr int kPoolSize = 32;
  struct Template {
    std::string dist;
    int sources;
    Bytes len;
    std::uint64_t dist_seed;
  };
  Rng pool_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Template> pool;
  pool.reserve(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    Template t;
    t.dist = dist::kind_name(kinds[pool_rng.next_below(kinds.size())]);
    t.sources = s_pool[pool_rng.next_below(s_pool.size())];
    t.len = len_pool[pool_rng.next_below(len_pool.size())];
    t.dist_seed = 1 + pool_rng.next_below(4);
    pool.push_back(t);
  }

  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(count) + 1);
  Rng stream_rng(seed);
  for (int i = 0; i < count; ++i) {
    const Template& t = pool[stream_rng.next_below(pool.size())];
    const Bytes len = t.len + static_cast<Bytes>(stream_rng.next_below(
                                  static_cast<std::uint64_t>(t.len / 8 + 1)));
    std::ostringstream line;
    line << "{\"op\":\"plan\",\"dist\":\"" << t.dist
         << "\",\"sources\":" << t.sources << ",\"len\":" << len
         << ",\"seed\":" << t.dist_seed << "}";
    lines.push_back(line.str());
  }
  lines.push_back("{\"op\":\"stats\",\"deterministic\":true}");
  return lines;
}

struct SessionResult {
  std::string output;
  double wall_ms = 0;
  plan::CacheStats cache;
  serve::RequestCounters counters;
  serve::LatencyHistogram::Snapshot latency;
};

SessionResult serve_session(const std::string& machine,
                            const std::vector<std::string>& lines,
                            int workers) {
  std::ostringstream out;
  serve::ServerOptions options;
  options.machine = machine;
  options.workers = workers;
  SessionResult r;
  {
    serve::Server server(options, out);
    const Clock::time_point t0 = Clock::now();
    for (const std::string& line : lines) server.submit_line_wait(line);
    server.drain();
    r.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    r.cache = server.cache_stats();
    r.counters = server.counters();
    r.latency = server.latency();
  }
  r.output = out.str();
  return r;
}

bool claim(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "FAILED");
  return ok;
}

void write_json(const std::vector<std::pair<std::string, double>>& metrics,
                const std::string& path, bool quick) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"quick\": %s,\n  \"metrics\": {\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < metrics.size(); ++i)
    std::fprintf(f, "    \"%s\": %.4f%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Serving-layer gate: plan-request throughput, "
                      "byte-identity across worker counts, cache "
                      "reconciliation",
       .extras = {{.name = "--quick",
                   .toggle = &quick,
                   .help = "CI tier (20k requests; throughput not gated)"}},
       .allow_positional = true,
       .positional_help = "[out.json]"});
  const std::string machine_name = opt.machine.value_or("paragon8x8");
  const machine::MachineConfig mc = machine::from_name(machine_name);
  const int count = quick ? 20000 : 100000;
  const std::uint64_t seed = opt.seed_or(7);
  const std::string out = opt.out_or(
      opt.positional.empty() ? "BENCH_serve.json" : opt.positional);

  std::printf("ext_serve: %d plan requests, machine %s, seed %llu%s\n",
              count, machine_name.c_str(),
              static_cast<unsigned long long>(seed),
              quick ? " (quick)" : "");

  const std::vector<std::string> lines = request_lines(mc, count, seed);

  const std::vector<int> worker_counts = {1, 2, 8};
  std::vector<SessionResult> sessions;
  sessions.reserve(worker_counts.size());
  for (const int w : worker_counts)
    sessions.push_back(serve_session(machine_name, lines, w));

  bool ok = true;
  std::printf("\nchecks:\n");
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    char what[80];
    std::snprintf(what, sizeof(what),
                  "responses byte-identical: workers %d vs %d",
                  worker_counts[0], worker_counts[i]);
    ok &= claim(sessions[i].output == sessions[0].output, what);
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const serve::RequestCounters& c = sessions[i].counters;
    char what[80];
    std::snprintf(what, sizeof(what),
                  "no errors, no shedding (workers %d)", worker_counts[i]);
    ok &= claim(c.errors == 0 && c.shed == 0 &&
                    c.plan == static_cast<std::uint64_t>(count) &&
                    c.stats == 1,
                what);
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const plan::CacheStats& cs = sessions[i].cache;
    char what[80];
    std::snprintf(what, sizeof(what),
                  "cache reconciles: hits+misses==requests (workers %d)",
                  worker_counts[i]);
    ok &= claim(cs.lookups() == static_cast<std::uint64_t>(count), what);
  }
  // Coalescing invariant: the planner ran once per distinct signature at
  // every worker count — the miss counts agree across sessions.
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    char what[80];
    std::snprintf(what, sizeof(what),
                  "planner invocations identical: workers %d vs %d",
                  worker_counts[0], worker_counts[i]);
    ok &= claim(sessions[i].cache.misses == sessions[0].cache.misses, what);
  }

  double best_per_sec = 0;
  std::printf("\n%-10s %12s %14s %10s %10s %10s\n", "workers", "wall_ms",
              "req_per_sec", "p50_us", "p99_us", "misses");
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const double per_sec =
        sessions[i].wall_ms > 0
            ? static_cast<double>(count) * 1000.0 / sessions[i].wall_ms
            : 0;
    best_per_sec = std::max(best_per_sec, per_sec);
    std::printf("%-10d %12.2f %14.1f %10.1f %10.1f %10llu\n",
                worker_counts[i], sessions[i].wall_ms, per_sec,
                sessions[i].latency.percentile_us(50),
                sessions[i].latency.percentile_us(99),
                static_cast<unsigned long long>(sessions[i].cache.misses));
  }
  if (!quick) {
    // The acceptance floor.  Quick tier skips it: CI runs quick under
    // ThreadSanitizer, where wall time means something else entirely.
    ok &= claim(best_per_sec >= 100000.0,
                "sustained >= 100k plan requests/sec (full tier)");
  }

  std::vector<std::pair<std::string, double>> metrics;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const double per_sec =
        sessions[i].wall_ms > 0
            ? static_cast<double>(count) * 1000.0 / sessions[i].wall_ms
            : 0;
    metrics.push_back({"serve_plan_w" + std::to_string(worker_counts[i]) +
                           "_requests_per_sec",
                       per_sec});
  }
  metrics.push_back({"serve_p50_us", sessions[0].latency.percentile_us(50)});
  metrics.push_back({"serve_p95_us", sessions[0].latency.percentile_us(95)});
  metrics.push_back({"serve_p99_us", sessions[0].latency.percentile_us(99)});
  metrics.push_back(
      {"serve_distinct_signatures",
       static_cast<double>(sessions[0].cache.misses)});
  write_json(metrics, out, quick);
  std::printf("\nwrote %s\n", out.c_str());

  return ok ? 0 : 1;
}
