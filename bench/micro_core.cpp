// Micro-benchmarks of the simulator substrate (google-benchmark): event
// queue throughput, route construction, payload merging, halving-schedule
// construction, ideal-placement search, and a full end-to-end run.  These
// guard the simulator's own performance — the figure benches sweep
// hundreds of runs and stay fast because these stay fast.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>

#include "coll/halving.h"
#include "dist/ideal.h"
#include "mp/payload.h"
#include "net/route_cache.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace {

using namespace spb;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Each event carries the runtime's typical delivery capture — a pointer
  // plus a slot index plus a timestamp — and is invoked on pop, exactly
  // like the simulator loop does.
  struct Delivery {
    std::uint64_t* sink;
    std::uint32_t slot;
    double at;
  };
  std::uint64_t sum = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      const Delivery d{&sum, static_cast<std::uint32_t>(i),
                       static_cast<double>((i * 7919) % 1000)};
      q.push(d.at, [d] { *d.sink += d.slot; });
    }
    while (!q.empty()) {
      sim::Event ev = q.pop();
      ev.fn();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_MeshRoute(benchmark::State& state) {
  const net::Mesh2D mesh(16, 16);
  int a = 0;
  for (auto _ : state) {
    const int b = (a * 31 + 17) % mesh.node_count();
    benchmark::DoNotOptimize(mesh.route(a, b));
    a = (a + 1) % mesh.node_count();
  }
}
BENCHMARK(BM_MeshRoute);

void BM_TorusRoute(benchmark::State& state) {
  const net::Torus3D torus(8, 8, 8);
  int a = 0;
  for (auto _ : state) {
    const int b = (a * 31 + 17) % torus.node_count();
    benchmark::DoNotOptimize(torus.route(a, b));
    a = (a + 1) % torus.node_count();
  }
}
BENCHMARK(BM_TorusRoute);

void BM_TorusRouteCached(benchmark::State& state) {
  // Warm route-cache hits — what NetworkModel::reserve pays per message
  // after the first send between a pair.
  const net::Torus3D torus(8, 8, 8);
  net::RouteCache cache(torus);
  int a = 0;
  for (auto _ : state) {
    const int b = (a * 31 + 17) % torus.node_count();
    benchmark::DoNotOptimize(cache.path(a, b).size());
    a = (a + 1) % torus.node_count();
  }
}
BENCHMARK(BM_TorusRouteCached);

void BM_PayloadMerge(benchmark::State& state) {
  const int chunks = static_cast<int>(state.range(0));
  std::vector<mp::Chunk> even;
  std::vector<mp::Chunk> odd;
  for (int i = 0; i < chunks; ++i) {
    even.push_back({2 * i, 64});
    odd.push_back({2 * i + 1, 64});
  }
  const mp::Payload a = mp::Payload::of(even);
  const mp::Payload b = mp::Payload::of(odd);
  // The accumulator lives across iterations, as a rank's payload lives
  // across its receives: after the first iteration the merge runs entirely
  // within settled capacity.  Even/odd interleave is the worst case for
  // the merge walk itself (no disjoint-range shortcut applies).
  mp::Payload m;
  for (auto _ : state) {
    m = a;
    m.merge(b);
    benchmark::DoNotOptimize(m.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 2 * chunks);
}
BENCHMARK(BM_PayloadMerge)->Arg(16)->Arg(256);

void BM_PayloadMergeDisjoint(benchmark::State& state) {
  // Contiguous source ranges — the shape recursive halving produces on
  // nearly every receive; hits the append fast path.
  const int chunks = static_cast<int>(state.range(0));
  std::vector<mp::Chunk> lo;
  std::vector<mp::Chunk> hi;
  for (int i = 0; i < chunks; ++i) {
    lo.push_back({i, 64});
    hi.push_back({chunks + i, 64});
  }
  const mp::Payload a = mp::Payload::of(lo);
  const mp::Payload b = mp::Payload::of(hi);
  mp::Payload m;
  for (auto _ : state) {
    m = a;
    m.merge(b);
    benchmark::DoNotOptimize(m.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 2 * chunks);
}
BENCHMARK(BM_PayloadMergeDisjoint)->Arg(256);

void BM_HalvingSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<char> active(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; i += 3) active[static_cast<std::size_t>(i)] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::HalvingSchedule::compute(active).iterations());
  }
}
BENCHMARK(BM_HalvingSchedule)->Arg(100)->Arg(256);

void BM_ActivityProfile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<char> active(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; i += 5) active[static_cast<std::size_t>(i)] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll::HalvingSchedule::activity_profile(active).back());
  }
}
BENCHMARK(BM_ActivityProfile)->Arg(256);

void BM_IdealSearchUncached(benchmark::State& state) {
  // Unique (n, k) per iteration defeats the memo cache and measures the
  // greedy + hill-climb search itself.
  int n = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::ideal_positions(n, 7).size());
    ++n;
    if (n > 192) n = 64;
  }
}
BENCHMARK(BM_IdealSearchUncached)->Iterations(64);

void BM_EndToEndBrLin(benchmark::State& state) {
  const auto machine = machine::paragon(10, 10);
  const auto alg = stop::make_br_lin();
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 30, 4096);
  for (auto _ : state) benchmark::DoNotOptimize(stop::run_ms(*alg, pb));
}
BENCHMARK(BM_EndToEndBrLin);

void BM_EndToEndPersAlltoAllT3D(benchmark::State& state) {
  const auto machine = machine::t3d(128);
  const auto alg = stop::make_pers_alltoall(true);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, 64, 4096);
  for (auto _ : state) benchmark::DoNotOptimize(stop::run_ms(*alg, pb));
}
BENCHMARK(BM_EndToEndPersAlltoAllT3D);

}  // namespace

BENCHMARK_MAIN();
