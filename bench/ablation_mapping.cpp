// Ablation: T3D rank-to-node placement — scattered (the default model of
// an uncontrollable mapping) vs a contiguous sub-brick.
//
// Expectations: the structured Br_Lin benefits from contiguity (its
// halving partners become physical neighbours), while the library
// collectives are node-interface-bound and barely care.  The gather-based
// AllGather actually *suffers* from contiguity in a dimension-ordered
// torus: every route into the root funnels through the same few links.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: T3D scattered vs contiguous placement "
                      "(p=128, E(64), L=4K)"});
  bench::Checker check("Ablation — T3D placement: scattered vs contiguous");

  const auto scattered = machine::t3d(128, /*scatter_seed=*/opt.seed_or(1));
  const auto contiguous = machine::t3d(128, /*scatter_seed=*/0);
  const dist::Kind kind = opt.dist_or(dist::Kind::kEqual);
  const int s_count = opt.sources_or(64);
  const Bytes L = opt.len_or(4096);

  TextTable t;
  t.row()
      .cell("algorithm")
      .cell("scattered [ms]")
      .cell("contiguous [ms]")
      .cell("contig/scatter");
  std::map<std::string, double> ratio;
  for (const auto& alg :
       {stop::make_two_step(true), stop::make_pers_alltoall(true),
        stop::make_br_lin()}) {
    const stop::Problem ps =
        stop::make_problem(scattered, kind, s_count, L);
    const stop::Problem pc =
        stop::make_problem(contiguous, kind, s_count, L);
    const double s = bench::time_ms(alg, ps);
    const double c = bench::time_ms(alg, pc);
    ratio[alg->name()] = c / s;
    t.row().cell(alg->name()).num(s, 2).num(c, 2).num(c / s, 3);
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(ratio["Br_Lin"] < 1.0,
               "contiguity helps the locality-structured Br_Lin");
  check.expect(ratio["MPI_Alltoall"] < 1.15,
               "MPI_Alltoall is placement-insensitive (NI-bound)");
  check.expect(ratio["MPI_AllGather"] > ratio["Br_Lin"],
               "the root-gather gains less (or loses) from contiguity: "
               "its routes funnel into the root");
  return check.exit_code();
}
