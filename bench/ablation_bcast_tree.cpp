// Ablation: shape of the 2-Step broadcast phase — the paper's
// store-and-forward halving pattern vs the segmented pipelined binary
// tree the T3D model gives the vendor collective.
//
// Expectations: for a large combined message (s*L of half a megabyte) the
// pipeline wins by a wide margin, and the advantage shrinks for small
// broadcasts — store-and-forward is fine when the message fits one
// segment.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: pipelined vs store-and-forward 2-Step "
                      "broadcast (T3D p=128; s swept)"});
  bench::Checker check("Ablation — 2-Step broadcast: pipelined vs "
                       "store-and-forward (T3D 128)");

  TextTable t;
  t.row()
      .cell("s")
      .cell("L")
      .cell("store&forward [ms]")
      .cell("pipelined [ms]")
      .cell("speedup");
  std::map<int, double> speedup;
  for (const int s : {4, 32, 128}) {
    const Bytes L = opt.len_or(4096);
    auto piped = opt.machine_or(machine::t3d(128));
    auto plain = piped;
    plain.bcast_segment_bytes = 0;  // fall back to store-and-forward
    const auto alg = stop::make_two_step(true);
    const double a =
        bench::time_ms(alg, stop::make_problem(plain, dist::Kind::kEqual,
                                               s, L));
    const double b =
        bench::time_ms(alg, stop::make_problem(piped, dist::Kind::kEqual,
                                               s, L));
    speedup[s] = a / b;
    t.row()
        .num(static_cast<std::int64_t>(s))
        .cell(human_bytes(L))
        .num(a, 2)
        .num(b, 2)
        .num(a / b, 2);
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(speedup[128] > 1.4,
               "pipelining a 512K broadcast wins clearly (end-to-end, "
               "gather included)");
  check.expect(speedup[32] > 1.2, "pipelining a 128K broadcast still wins");
  check.expect(speedup[4] < 1.1,
               "small broadcasts gain nothing — pipelining has per-segment "
               "overhead");
  check.expect(speedup[128] > speedup[4],
               "the advantage grows with the broadcast size");
  return check.exit_code();
}
