// Extension: measuring the approach the paper dismissed without a figure —
// every source running its own independent one-to-all broadcast
// (Uncoord_1toAll), "attractive for dynamic broadcasting situations since
// it does not require synchronization", but flooding the machine with
// s*(p-1) uncombined messages.
//
// Where the dismissal bites in our model: the per-message software cost.
// Every rank must receive (and mostly forward) one message per source —
// 2s operations against Br_*'s O(log p) — so for small and moderate
// message lengths the coordinated algorithms win decisively, and the
// total message count explodes exactly as the paper says.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Extension: uncoordinated 1-to-all floods vs "
                      "Br_xy_source (10x10 Paragon; s and L swept)"});
  bench::Checker check(
      "Extension — uncoordinated 1-to-all floods (10x10 Paragon)");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  const auto unco = stop::find_algorithm("Uncoord_1toAll");
  const auto br = stop::make_br_xy_source();

  TextTable t;
  t.row()
      .cell("s")
      .cell("L")
      .cell("Uncoord [ms]")
      .cell("Br_xy_source [ms]")
      .cell("Uncoord msgs")
      .cell("Br msgs");
  std::map<std::pair<int, Bytes>, double> ratio;
  std::uint64_t unco_msgs_30 = 0;
  std::uint64_t br_msgs_30 = 0;
  for (const int s : {10, 30, 60}) {
    for (const Bytes L : {Bytes{512}, Bytes{4096}}) {
      const stop::Problem pb =
          stop::make_problem(machine, dist::Kind::kEqual, s, L);
      const stop::RunResult ru = stop::run(*unco, pb);
      const stop::RunResult rb = stop::run(*br, pb);
      ratio[{s, L}] = ru.time_us / rb.time_us;
      if (s == 30 && L == 512) {
        unco_msgs_30 = ru.outcome.metrics.total_sends;
        br_msgs_30 = rb.outcome.metrics.total_sends;
      }
      t.row()
          .num(static_cast<std::int64_t>(s))
          .cell(human_bytes(L))
          .num(ru.time_us / 1000.0, 2)
          .num(rb.time_us / 1000.0, 2)
          .num(static_cast<std::int64_t>(ru.outcome.metrics.total_sends))
          .num(static_cast<std::int64_t>(rb.outcome.metrics.total_sends));
    }
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(unco_msgs_30 >= 30u * 99u,
               "s*(p-1) messages in the system, as the paper warns");
  check.expect(unco_msgs_30 > 4 * br_msgs_30,
               "several times the coordinated algorithm's message count");
  for (const int s : {30, 60}) {
    check.expect(ratio[{s, 512}] > 1.3,
                 "uncoordinated broadcasts lose clearly at small L, s=" +
                     std::to_string(s));
  }
  check.expect(ratio[{60, 4096}] > 1.0,
               "still behind at L=4K for many sources");
  return check.exit_code();
}
