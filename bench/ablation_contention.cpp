// Ablation: full-path link reservation (the wormhole circuit
// approximation) on vs off, on the Paragon model.
//
// Expectations: the model is monotone (removing contention never slows a
// run); the message-flooding PersAlltoAll suffers most from contention at
// large messages; the Br_* algorithms, designed to spread traffic, lose
// the least — which is exactly why they win on the real machine.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: full-path link reservation on vs off "
                      "(10x10 Paragon, E(40), L=16K)"});
  bench::Checker check("Ablation — link contention on/off (Paragon 10x10)");

  auto machine = opt.machine_or(machine::paragon(10, 10));
  const dist::Kind kind = opt.dist_or(dist::Kind::kEqual);
  const int s = opt.sources_or(40);
  const Bytes L = opt.len_or(16384);
  const stop::Problem with = stop::make_problem(machine, kind, s, L);
  machine.net.model_contention = false;
  const stop::Problem without = stop::make_problem(machine, kind, s, L);

  TextTable t;
  t.row().cell("algorithm").cell("with [ms]").cell("without [ms]").cell(
      "slowdown");
  std::map<std::string, double> slowdown;
  for (const auto& alg : stop::all_algorithms()) {
    const double w = bench::time_ms(alg, with);
    const double wo = bench::time_ms(alg, without);
    slowdown[alg->name()] = w / wo;
    t.row().cell(alg->name()).num(w, 2).num(wo, 2).num(w / wo, 3);
    check.expect(w * 1.0000001 >= wo,
                 alg->name() + ": removing contention never hurts");
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(slowdown["PersAlltoAll"] > 1.3,
               "PersAlltoAll floods the mesh: contention costs it > 30%");
  check.expect(slowdown["Br_xy_source"] < slowdown["PersAlltoAll"],
               "Br_xy_source spreads traffic better than PersAlltoAll");
  check.expect(slowdown["Br_Lin"] < slowdown["PersAlltoAll"],
               "Br_Lin spreads traffic better than PersAlltoAll");
  return check.exit_code();
}
