// Figure 11: MPI_AllGather scalability on the T3D.
//  (a) machine size 32..256, s = 32, total message volume 128K (L = 4K),
//      across source distributions;
//  (b) p = 128, L = 16K, source count varying — "the convergence and
//      deterioration of MPI_AllGather when s approaches p is as expected".
//
// Reproduced claims: times grow moderately with machine size; for small
// machines the distribution has little impact; at fixed L the time
// deteriorates steeply as s approaches p.
//
// Documented divergence (see EXPERIMENTS.md): the paper measured the equal
// distribution ~28% faster than the others at larger machine sizes and
// could only conjecture why.  In our model MPI_AllGather is the gather+
// broadcast the paper describes, whose root bottleneck makes the cost
// independent of *where* the sources sit — so all distributions coincide
// and that 28% gap does not reproduce.  We print the per-distribution
// series regardless so the comparison is visible.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Figure 11: MPI_AllGather scalability on the T3D "
                      "(machine sizes and source counts swept)"});
  bench::Checker check("Figure 11 — MPI_AllGather scalability on the T3D");

  const auto allgather = stop::make_two_step(true);
  const std::vector<dist::Kind> kinds = {
      dist::Kind::kRow, dist::Kind::kEqual, dist::Kind::kDiagRight,
      dist::Kind::kSquare, dist::Kind::kCross};

  bench::section("(a) s=32, total 128K, machine size varies");
  TextTable ta;
  ta.row().cell("p");
  for (const dist::Kind k : kinds) ta.cell(dist::kind_name(k));
  std::map<int, std::map<std::string, double>> a_ms;
  for (const int p : {32, 64, 128, 256}) {
    const auto machine = machine::t3d(p);
    ta.row().num(static_cast<std::int64_t>(p));
    for (const dist::Kind k : kinds) {
      const stop::Problem pb = stop::make_problem(machine, k, 32, 4096);
      const double v = bench::time_ms(allgather, pb);
      a_ms[p][dist::kind_name(k)] = v;
      ta.num(v, 2);
    }
  }
  std::printf("%s\n", ta.render().c_str());

  check.expect(a_ms[256]["E"] > a_ms[32]["E"],
               "the time grows with the machine size");
  check.expect_ratio(a_ms[256]["E"], a_ms[32]["E"], 1.0, 4.0,
                     "growth stays moderate (scalable collective)");
  // Small machines: distribution spread tiny.
  double lo32 = 1e9;
  double hi32 = 0;
  for (const dist::Kind k : kinds) {
    lo32 = std::min(lo32, a_ms[32][dist::kind_name(k)]);
    hi32 = std::max(hi32, a_ms[32][dist::kind_name(k)]);
  }
  check.expect(hi32 / lo32 < 1.1,
               "p=32: the source distribution has little impact");

  bench::section("(b) p=128, L=16K, source count varies");
  const auto machine = machine::t3d(128);
  TextTable tb;
  tb.row().cell("s").cell("MPI_AllGather [ms]");
  std::map<int, double> b_ms;
  for (const int s : {8, 16, 32, 64, 96, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, 16384);
    b_ms[s] = bench::time_ms(allgather, pb);
    tb.row().num(static_cast<std::int64_t>(s)).num(b_ms[s], 2);
  }
  std::printf("%s\n", tb.render().c_str());

  check.expect(b_ms[128] > b_ms[32] && b_ms[32] > b_ms[8],
               "fixed L: MPI_AllGather deteriorates as s grows");
  check.expect(b_ms[128] / b_ms[8] > 3.0,
               "the deterioration toward s ~ p is steep");
  return check.exit_code();
}
