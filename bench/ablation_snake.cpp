// Ablation: the paper's aside — Br_Lin over the plain row-major linear
// order vs the snake-like (boustrophedon) order, where consecutive linear
// positions are always physical mesh neighbours.  Late halving iterations
// pair close positions; under the snake order those exchanges ride single
// mesh links, trimming a few percent at large L without changing any
// ordering.
#include "util.h"

int main(int argc, char** argv) {
  using namespace spb;
  const bench::Options opt = bench::parse_options(
      argc, argv,
      {.description = "Ablation: Br_Lin row-major vs snake indexing "
                      "(10x10 Paragon, s=30; dist/L swept)"});
  bench::Checker check("Ablation — Br_Lin indexing: row-major vs snake");

  const auto machine = opt.machine_or(machine::paragon(10, 10));
  const auto plain = stop::make_br_lin();
  const auto snake = stop::find_algorithm("Br_Lin_snake");

  TextTable t;
  t.row().cell("dist").cell("L").cell("row-major [ms]").cell(
      "snake [ms]").cell("snake/plain");
  double worst = 0;
  double best = 10;
  for (const dist::Kind kind :
       {dist::Kind::kEqual, dist::Kind::kSquare, dist::Kind::kDiagLeft}) {
    for (const Bytes L : {Bytes{1024}, Bytes{16384}}) {
      const stop::Problem pb =
          stop::make_problem(machine, kind, opt.sources_or(30), L);
      const double a = bench::time_ms(plain, pb);
      const double b = bench::time_ms(snake, pb);
      worst = std::max(worst, b / a);
      best = std::min(best, b / a);
      t.row()
          .cell(dist::kind_name(kind))
          .cell(human_bytes(L))
          .num(a, 2)
          .num(b, 2)
          .num(b / a, 3);
    }
  }
  std::printf("%s\n", t.render().c_str());

  check.expect(worst < 1.15 && best > 0.8,
               "the indexing choice moves Br_Lin by at most ~15% either "
               "way — a tuning knob, not a different algorithm");
  return check.exit_code();
}
