// Dynamic broadcasting (paper Section 1): an iterative application in
// which, each round, the processors whose local computation produced a
// significant change broadcast their update to everyone.  The number and
// position of sources varies from round to round, which is exactly the
// regime s-to-p broadcasting was designed for.
//
// This example simulates 12 rounds on a 10x10 Paragon.  Each round a
// random subset of processors becomes sources (the subset size follows
// the round's "activity level"), and we compare two strategies:
//   * always PersAlltoAll — attractive because it needs no coordination;
//   * Br_xy_source — the paper's recommendation for the Paragon.
//
//   $ ./dynamic_broadcast
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "stop/algorithm.h"
#include "stop/run.h"

int main() {
  using namespace spb;

  const auto machine = machine::paragon(10, 10);
  const Bytes update_bytes = 2048;
  const auto pers = stop::make_pers_alltoall(false);
  const auto br = stop::make_br_xy_source();

  std::printf("dynamic broadcasting: 12 rounds on a %s, updates of %llu B\n\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(update_bytes));

  Rng rng(2026);
  TextTable t;
  t.row()
      .cell("round")
      .cell("sources")
      .cell("PersAlltoAll [ms]")
      .cell("Br_xy_source [ms]");
  double total_pers = 0;
  double total_br = 0;
  for (int round = 1; round <= 12; ++round) {
    // Activity level ramps up, peaks, and cools down over the run.
    const int peak = 40;
    const int s = 1 + static_cast<int>(
                          rng.next_below(static_cast<std::uint64_t>(
                              1 + peak * (round <= 6 ? round : 12 - round) /
                                      6)));
    const stop::Problem pb = stop::make_problem(
        machine, dist::Kind::kRandom, s, update_bytes, 1000 + round);
    const double ms_pers = stop::run_ms(*pers, pb);
    const double ms_br = stop::run_ms(*br, pb);
    total_pers += ms_pers;
    total_br += ms_br;
    t.row()
        .num(static_cast<std::int64_t>(round))
        .num(static_cast<std::int64_t>(s))
        .num(ms_pers, 2)
        .num(ms_br, 2);
  }
  t.row().cell("total").cell("").num(total_pers, 2).num(total_br, 2);
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Over the whole run the coordinated Br_xy_source broadcasts cost\n"
      "%.1fx less time than uncoordinated PersAlltoAll rounds — the\n"
      "paper's argument for combining messages on the Paragon.\n",
      total_pers / total_br);
  return 0;
}
