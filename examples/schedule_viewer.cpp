// Prints the recursive-halving schedule of Br_Lin for a given segment size
// and source placement: per iteration, every transfer (-> one-sided send,
// <-> exchange) and the resulting active count.  The paper's Section 2
// merge pattern, made inspectable.
//
//   $ ./schedule_viewer                # n=10, sources {0, 5}
//   $ ./schedule_viewer 16 0,3,9
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "coll/halving.h"

int main(int argc, char** argv) {
  using namespace spb;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  if (n < 1) {
    std::fprintf(stderr, "usage: %s [n] [src0,src1,...]\n", argv[0]);
    return 2;
  }
  std::vector<char> active(static_cast<std::size_t>(n), 0);
  if (argc > 2) {
    for (const char* p = argv[2]; *p != '\0';) {
      char* end = nullptr;
      const long v = std::strtol(p, &end, 10);
      if (end == p || v < 0 || v >= n) {
        std::fprintf(stderr, "bad source list\n");
        return 2;
      }
      active[static_cast<std::size_t>(v)] = 1;
      p = *end == ',' ? end + 1 : end;
    }
  } else {
    active[0] = 1;
    if (n > 5) active[5] = 1;
  }

  const auto sched = coll::HalvingSchedule::compute(active);
  std::printf("halving schedule, n=%d, %d initially active, %d iterations\n",
              n, sched.active_count_after(0), sched.iterations());
  for (int iter = 0; iter < sched.iterations(); ++iter) {
    std::printf("\niteration %d:\n", iter);
    for (int pos = 0; pos < n; ++pos) {
      for (const coll::Action& a : sched.actions(iter, pos)) {
        if (a.type != coll::Action::Type::kSend) continue;
        // Detect the matching reverse send to print an exchange once.
        bool exchange = false;
        for (const coll::Action& back : sched.actions(iter, a.peer))
          exchange |= back.type == coll::Action::Type::kSend &&
                      back.peer == pos;
        if (exchange && a.peer < pos) continue;  // printed from the lower side
        std::printf("  %3d %s %3d\n", pos, exchange ? "<->" : " ->", a.peer);
      }
    }
    std::printf("  active: %d -> %d\n", sched.active_count_after(iter),
                sched.active_count_after(iter + 1));
  }
  return 0;
}
