// Link-contention heatmap: runs one algorithm on a simulated Paragon and
// prints, for every mesh node, how busy its hottest outgoing link was —
// as a digit 0..9 scaled to the globally hottest link.  The 2-Step gather
// funnel into P0 and the even spread of Br_xy_source are immediately
// visible.
//
//   $ ./link_heatmap                      # defaults: 10x10, Dr(30), 8K
//   $ ./link_heatmap 2-Step
//   $ ./link_heatmap Br_xy_source 16 16 Sq 64 8192
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace {

void heatmap(const spb::machine::MachineConfig& machine,
             const spb::stop::AlgorithmPtr& alg,
             const spb::stop::Problem& pb) {
  using namespace spb;
  const stop::RunResult r = stop::run(*alg, pb);
  const auto& busy = r.outcome.link_busy_us;
  const net::Topology& topo = *machine.topology;
  const int slots = topo.slots_per_node();

  std::vector<double> node_max(static_cast<std::size_t>(topo.node_count()),
                               0.0);
  double global_max = 0;
  for (LinkId l = 0; l < topo.link_space(); ++l) {
    const NodeId n = l / slots;
    node_max[static_cast<std::size_t>(n)] =
        std::max(node_max[static_cast<std::size_t>(n)],
                 busy[static_cast<std::size_t>(l)]);
    global_max = std::max(global_max, busy[static_cast<std::size_t>(l)]);
  }

  std::printf("%s on %s: %.2f ms, hottest link busy %.0f us\n",
              alg->name().c_str(), machine.name.c_str(),
              r.time_us / 1000.0, global_max);
  for (int row = 0; row < machine.rows; ++row) {
    std::printf("  ");
    for (int col = 0; col < machine.cols; ++col) {
      const NodeId n = row * machine.cols + col;  // identity mapping
      const double v = node_max[static_cast<std::size_t>(n)];
      const int digit =
          global_max > 0
              ? std::min(9, static_cast<int>(v / global_max * 9.999))
              : 0;
      std::printf("%d", digit);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spb;
  const std::string alg_name = argc > 1 ? argv[1] : "";
  const int rows = argc > 2 ? std::atoi(argv[2]) : 10;
  const int cols = argc > 3 ? std::atoi(argv[3]) : 10;
  const std::string dist_name = argc > 4 ? argv[4] : "Dr";
  const int s = argc > 5 ? std::atoi(argv[5]) : 30;
  const Bytes length = argc > 6 ? static_cast<Bytes>(std::atoll(argv[6]))
                                : 8192;

  const auto machine = machine::paragon(rows, cols);
  const stop::Problem pb = stop::make_problem(
      machine, dist::kind_from_name(dist_name), s, length);

  std::printf(
      "per-node hottest-outgoing-link utilization (0..9, relative to the "
      "run's hottest link)\n\n");
  if (!alg_name.empty()) {
    heatmap(machine, stop::find_algorithm(alg_name), pb);
  } else {
    for (const char* name :
         {"2-Step", "PersAlltoAll", "Br_Lin", "Br_xy_source"}) {
      heatmap(machine, stop::find_algorithm(name), pb);
    }
  }
  return 0;
}
