// Renders every source-distribution family of the paper's Section 4 on a
// mesh of your choosing — handy for eyeballing what R(s), Dr(s), Cr(s) and
// friends actually look like, including the ideal distributions the
// repositioning algorithms generate.
//
//   $ ./distribution_gallery [rows] [cols] [s]     (default 10 10 30)
#include <cstdio>
#include <cstdlib>

#include "dist/distribution.h"
#include "dist/ideal.h"
#include "dist/render.h"

int main(int argc, char** argv) {
  using namespace spb;
  const int rows = argc > 1 ? std::atoi(argv[1]) : 10;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 10;
  const int s = argc > 3 ? std::atoi(argv[3]) : 30;
  if (rows < 1 || cols < 1 || s < 1 || s > rows * cols) {
    std::fprintf(stderr, "usage: %s [rows] [cols] [s]\n", argv[0]);
    return 2;
  }
  const dist::Grid grid{rows, cols};

  std::printf("source distributions for s=%d on a %dx%d mesh\n\n", s, rows,
              cols);
  for (const dist::Kind kind : dist::all_kinds()) {
    std::printf("%s(%d):\n%s\n", dist::kind_name(kind).c_str(), s,
                dist::render(grid, dist::generate(kind, grid, s)).c_str());
  }
  std::printf("ideal rows for Br_xy_source (repositioning target):\n%s\n",
              dist::render(grid, dist::ideal_rows(grid, s)).c_str());
  std::printf("ideal linear placement for Br_Lin:\n%s",
              dist::render(grid, dist::ideal_linear(grid, s)).c_str());
  return 0;
}
