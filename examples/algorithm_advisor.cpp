// Algorithm advisor: given a machine, a source distribution, a source
// count and a message length, runs every s-to-p algorithm in the library
// and recommends the fastest — together with the paper's rule of thumb
// for the Paragon (Section 5.2): reposition when s < p/2, p > 16, and
// 1K <= L <= 16K.
//
//   $ ./algorithm_advisor paragon 16 16 Cr 75 6144
//   $ ./algorithm_advisor t3d 128 - E 40 4096
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/str.h"
#include "common/table.h"
#include "stop/algorithm.h"
#include "stop/run.h"

int main(int argc, char** argv) {
  using namespace spb;

  // Defaults reproduce the paper's headline repositioning case.
  std::string machine_kind = argc > 1 ? argv[1] : "paragon";
  const int arg_a = argc > 2 ? std::atoi(argv[2]) : 16;
  const int arg_b = argc > 3 && std::strcmp(argv[3], "-") != 0
                        ? std::atoi(argv[3])
                        : 16;
  const std::string dist_name = argc > 4 ? argv[4] : "Cr";
  const int s = argc > 5 ? std::atoi(argv[5]) : 75;
  const Bytes length = argc > 6 ? static_cast<Bytes>(std::atoll(argv[6]))
                                : 6144;

  machine::MachineConfig machine;
  if (machine_kind == "t3d") {
    machine = machine::t3d(arg_a);
  } else if (machine_kind == "paragon") {
    machine = machine::paragon(arg_a, arg_b);
  } else {
    std::fprintf(stderr,
                 "usage: %s {paragon ROWS COLS | t3d P -} DIST S L\n",
                 argv[0]);
    return 2;
  }
  const stop::Problem pb = stop::make_problem(
      machine, dist::kind_from_name(dist_name), s, length);

  std::printf("advising for %s, %s(%d), L=%llu B\n\n",
              machine.name.c_str(), dist_name.c_str(), s,
              static_cast<unsigned long long>(length));

  TextTable t;
  t.row().cell("algorithm").cell("time [ms]").cell("vs best");
  std::string best_name;
  double best_ms = 0;
  std::vector<std::pair<std::string, double>> results;
  for (const auto& alg : stop::all_algorithms()) {
    if (machine.p == 1 && alg->name().rfind("Part", 0) == 0) continue;
    const double ms = stop::run_ms(*alg, pb);
    results.emplace_back(alg->name(), ms);
    if (best_name.empty() || ms < best_ms) {
      best_name = alg->name();
      best_ms = ms;
    }
  }
  for (const auto& [name, ms] : results) {
    t.row().cell(name).num(ms, 3).cell(
        ms == best_ms ? "<- best" : "+" + fixed((ms / best_ms - 1) * 100, 1) + "%");
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("recommendation: %s (%.3f ms)\n\n", best_name.c_str(),
              best_ms);

  const bool repos_regime = s < machine.p / 2 && machine.p > 16 &&
                            length >= 1024 && length <= 16384;
  std::printf(
      "paper's Paragon rule of thumb (s < p/2, p > 16, 1K <= L <= 16K): "
      "%s\n",
      repos_regime
          ? "conditions hold — expect Repos_xy_source to be competitive"
          : "conditions do not hold — repositioning may not pay");
  return 0;
}
