// Dynamic load balancing for distributed spatial data structures (the
// paper's reference [9]): after a rebalancing step, the processors whose
// region boundaries moved must broadcast their updated index entries to
// everyone.  The sources "tend to follow regular patterns" — here, whole
// rows of the processor mesh own latitude bands of the spatial domain, so
// a rebalance makes a few bands the sources (a row distribution), while a
// skewed hot spot produces a square block of busy processors.
//
// The example shows why the repositioning algorithm is the paper's
// recommendation on the Paragon: it is nearly free when the pattern is
// already friendly and rescues the hot-spot case.
//
//   $ ./load_balancing
#include <cstdio>

#include "dist/render.h"
#include "stop/algorithm.h"
#include "stop/run.h"

namespace {

void report(const char* scenario, const spb::stop::Problem& pb) {
  using namespace spb;
  const auto base = stop::make_br_xy_source();
  const auto repos = stop::make_repositioning(base);
  const double base_ms = stop::run_ms(*base, pb);
  const double repos_ms = stop::run_ms(*repos, pb);
  std::printf("%s — %d sources, %llu B index updates\n%s", scenario, pb.s(),
              static_cast<unsigned long long>(pb.message_bytes),
              dist::render(pb.grid(), pb.sources).c_str());
  std::printf("  Br_xy_source        %6.2f ms\n", base_ms);
  std::printf("  Repos_xy_source     %6.2f ms  (%+.1f%%)\n\n", repos_ms,
              (base_ms - repos_ms) / base_ms * 100.0);
}

}  // namespace

int main() {
  using namespace spb;
  const auto machine = machine::paragon(16, 16);
  const Bytes index_bytes = 6144;

  std::printf("spatial-index rebalancing broadcasts on a %s\n\n",
              machine.name.c_str());

  // Friendly case: three latitude bands rebalanced -> row distribution.
  report("band rebalance (rows)",
         stop::make_problem(machine, dist::Kind::kRow, 48, index_bytes));

  // Hot spot: a cluster of overloaded processors in one corner.
  report("hot spot (square block)",
         stop::make_problem(machine, dist::Kind::kSquare, 48, index_bytes));

  // Worst case: a row of boundary processors plus a column of them.
  report("boundary cross",
         stop::make_problem(machine, dist::Kind::kCross, 48, index_bytes));

  std::printf(
      "Repositioning turns every initial pattern into the ideal row\n"
      "distribution first, so the broadcast cost stays predictable no\n"
      "matter how the rebalance scattered the sources.\n");
  return 0;
}
