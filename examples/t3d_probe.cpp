// Calibration probe: prints the three Figure-13(a) curves (p=128, L=4K,
// equal distribution) under machine-parameter overrides, so the effect of
// any knob on the T3D orderings is one command away:
//
//   t3d_probe [send_recv_overhead_us] [combine_per_byte] [combine_fixed]
//             [bytes_per_us] [inject_channels]
//
//   $ ./t3d_probe              # the calibrated machine
//   $ ./t3d_probe 25 0 15      # what if combining bytes were free?
#include <cstdio>
#include <cstdlib>

#include "stop/algorithm.h"
#include "stop/run.h"

int main(int argc, char** argv) {
  using namespace spb;
  auto machine = machine::t3d(128);
  if (argc > 1) {
    machine.comm.send_overhead_us = machine.comm.recv_overhead_us =
        std::atof(argv[1]);
  }
  if (argc > 2) machine.comm.combine_per_byte_us = std::atof(argv[2]);
  if (argc > 3) machine.comm.combine_fixed_us = std::atof(argv[3]);
  if (argc > 4) machine.net.bytes_per_us = std::atof(argv[4]);
  if (argc > 5) {
    machine.net.inject_channels = machine.net.eject_channels =
        std::atoi(argv[5]);
  }
  const auto allgather = stop::make_two_step(true);
  const auto alltoall = stop::make_pers_alltoall(true);
  const auto brlin = stop::make_br_lin();
  std::printf("%6s %14s %14s %14s\n", "s", "MPI_AllGather", "MPI_Alltoall",
              "Br_Lin");
  for (int s : {5, 10, 20, 40, 64, 96, 128}) {
    const stop::Problem pb =
        stop::make_problem(machine, dist::Kind::kEqual, s, 4096);
    std::printf("%6d %14.3f %14.3f %14.3f\n", s,
                stop::run_ms(*allgather, pb), stop::run_ms(*alltoall, pb),
                stop::run_ms(*brlin, pb));
  }
  return 0;
}
