// Communication timeline: runs one algorithm with tracing enabled and
// prints an ASCII Gantt chart — one row per rank, time left to right:
//   S sending (injection)   w blocked waiting for a message
//   r receive processing    c computing (merging)   . idle
//
// The halving structure of Br_Lin (synchronized iterations, growing
// transfers) versus the fire-hose of PersAlltoAll is plain to see.
//
//   $ ./timeline                 # Br_Lin and PersAlltoAll, 1x8, E(3)
//   $ ./timeline 2-Step 16
#include <cstdio>
#include <cstdlib>
#include <string>

#include "stop/algorithm.h"
#include "stop/run.h"

namespace {

void show(const std::string& name, const spb::stop::Problem& pb) {
  using namespace spb;
  const auto alg = stop::find_algorithm(name);
  const stop::RunResult r = stop::run(*alg, pb, stop::RunConfig{}.trace());
  std::printf("%s on %s, %d sources, %.2f ms, %zu trace events\n",
              name.c_str(), pb.machine.name.c_str(), pb.s(),
              r.time_us / 1000.0, r.trace.size());
  std::printf("%s\n", r.trace.render_timeline(pb.p(), 72).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spb;
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  const auto machine = machine::paragon(1, p);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kEqual, std::max(1, p / 3),
                         4096);
  if (argc > 1) {
    show(argv[1], pb);
  } else {
    show("Br_Lin", pb);
    show("PersAlltoAll", pb);
  }
  return 0;
}
