// Quickstart: broadcast 30 messages of 2 KB from a right-diagonal source
// distribution on a simulated 10x10 Intel Paragon, with every algorithm in
// the library, and print the resulting times.
//
//   $ ./quickstart
#include <cstdio>

#include "common/table.h"
#include "dist/render.h"
#include "stop/algorithm.h"
#include "stop/run.h"

int main() {
  using namespace spb;

  const auto machine = machine::paragon(10, 10);
  const stop::Problem pb =
      stop::make_problem(machine, dist::Kind::kDiagRight, /*s=*/30,
                         /*message_bytes=*/2048);

  std::printf("s-to-p broadcasting: s=%d sources, p=%d processors, L=%llu B\n",
              pb.s(), pb.p(),
              static_cast<unsigned long long>(pb.message_bytes));
  std::printf("machine: %s\nsource distribution Dr(30):\n%s\n",
              pb.machine.name.c_str(),
              dist::render(pb.grid(), pb.sources).c_str());

  TextTable table;
  table.row().cell("algorithm").cell("time [ms]").cell("max send+recv/rank");
  for (const auto& alg : stop::all_algorithms()) {
    const stop::RunResult r = stop::run(*alg, pb);
    table.row()
        .cell(alg->name())
        .num(r.time_us / 1000.0, 3)
        .num(static_cast<std::int64_t>(r.outcome.metrics.max_send_recv));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nEvery run verified: all 100 ranks hold all 30 messages.\n");
  return 0;
}
