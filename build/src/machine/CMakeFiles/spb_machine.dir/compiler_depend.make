# Empty compiler generated dependencies file for spb_machine.
# This may be replaced when dependencies are built.
