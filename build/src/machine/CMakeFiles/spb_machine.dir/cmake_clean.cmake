file(REMOVE_RECURSE
  "CMakeFiles/spb_machine.dir/config.cpp.o"
  "CMakeFiles/spb_machine.dir/config.cpp.o.d"
  "libspb_machine.a"
  "libspb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
