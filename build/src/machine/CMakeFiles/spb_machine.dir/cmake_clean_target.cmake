file(REMOVE_RECURSE
  "libspb_machine.a"
)
