# Empty dependencies file for spb_dist.
# This may be replaced when dependencies are built.
