
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/band.cpp" "src/dist/CMakeFiles/spb_dist.dir/band.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/band.cpp.o.d"
  "/root/repo/src/dist/cross.cpp" "src/dist/CMakeFiles/spb_dist.dir/cross.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/cross.cpp.o.d"
  "/root/repo/src/dist/diagonal.cpp" "src/dist/CMakeFiles/spb_dist.dir/diagonal.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/diagonal.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/spb_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/equal.cpp" "src/dist/CMakeFiles/spb_dist.dir/equal.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/equal.cpp.o.d"
  "/root/repo/src/dist/grid.cpp" "src/dist/CMakeFiles/spb_dist.dir/grid.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/grid.cpp.o.d"
  "/root/repo/src/dist/ideal.cpp" "src/dist/CMakeFiles/spb_dist.dir/ideal.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/ideal.cpp.o.d"
  "/root/repo/src/dist/random.cpp" "src/dist/CMakeFiles/spb_dist.dir/random.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/random.cpp.o.d"
  "/root/repo/src/dist/render.cpp" "src/dist/CMakeFiles/spb_dist.dir/render.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/render.cpp.o.d"
  "/root/repo/src/dist/row_col.cpp" "src/dist/CMakeFiles/spb_dist.dir/row_col.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/row_col.cpp.o.d"
  "/root/repo/src/dist/square.cpp" "src/dist/CMakeFiles/spb_dist.dir/square.cpp.o" "gcc" "src/dist/CMakeFiles/spb_dist.dir/square.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/spb_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/spb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
