file(REMOVE_RECURSE
  "libspb_dist.a"
)
