file(REMOVE_RECURSE
  "CMakeFiles/spb_dist.dir/band.cpp.o"
  "CMakeFiles/spb_dist.dir/band.cpp.o.d"
  "CMakeFiles/spb_dist.dir/cross.cpp.o"
  "CMakeFiles/spb_dist.dir/cross.cpp.o.d"
  "CMakeFiles/spb_dist.dir/diagonal.cpp.o"
  "CMakeFiles/spb_dist.dir/diagonal.cpp.o.d"
  "CMakeFiles/spb_dist.dir/distribution.cpp.o"
  "CMakeFiles/spb_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/spb_dist.dir/equal.cpp.o"
  "CMakeFiles/spb_dist.dir/equal.cpp.o.d"
  "CMakeFiles/spb_dist.dir/grid.cpp.o"
  "CMakeFiles/spb_dist.dir/grid.cpp.o.d"
  "CMakeFiles/spb_dist.dir/ideal.cpp.o"
  "CMakeFiles/spb_dist.dir/ideal.cpp.o.d"
  "CMakeFiles/spb_dist.dir/random.cpp.o"
  "CMakeFiles/spb_dist.dir/random.cpp.o.d"
  "CMakeFiles/spb_dist.dir/render.cpp.o"
  "CMakeFiles/spb_dist.dir/render.cpp.o.d"
  "CMakeFiles/spb_dist.dir/row_col.cpp.o"
  "CMakeFiles/spb_dist.dir/row_col.cpp.o.d"
  "CMakeFiles/spb_dist.dir/square.cpp.o"
  "CMakeFiles/spb_dist.dir/square.cpp.o.d"
  "libspb_dist.a"
  "libspb_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
