# Empty compiler generated dependencies file for spb_net.
# This may be replaced when dependencies are built.
