file(REMOVE_RECURSE
  "CMakeFiles/spb_net.dir/mapping.cpp.o"
  "CMakeFiles/spb_net.dir/mapping.cpp.o.d"
  "CMakeFiles/spb_net.dir/network.cpp.o"
  "CMakeFiles/spb_net.dir/network.cpp.o.d"
  "CMakeFiles/spb_net.dir/topology.cpp.o"
  "CMakeFiles/spb_net.dir/topology.cpp.o.d"
  "libspb_net.a"
  "libspb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
