file(REMOVE_RECURSE
  "libspb_net.a"
)
