# Empty compiler generated dependencies file for spb_common.
# This may be replaced when dependencies are built.
