file(REMOVE_RECURSE
  "libspb_common.a"
)
