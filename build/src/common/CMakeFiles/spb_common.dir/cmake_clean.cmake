file(REMOVE_RECURSE
  "CMakeFiles/spb_common.dir/rng.cpp.o"
  "CMakeFiles/spb_common.dir/rng.cpp.o.d"
  "CMakeFiles/spb_common.dir/stats.cpp.o"
  "CMakeFiles/spb_common.dir/stats.cpp.o.d"
  "CMakeFiles/spb_common.dir/str.cpp.o"
  "CMakeFiles/spb_common.dir/str.cpp.o.d"
  "CMakeFiles/spb_common.dir/table.cpp.o"
  "CMakeFiles/spb_common.dir/table.cpp.o.d"
  "libspb_common.a"
  "libspb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
