file(REMOVE_RECURSE
  "CMakeFiles/spb_stop.dir/adaptive_repos.cpp.o"
  "CMakeFiles/spb_stop.dir/adaptive_repos.cpp.o.d"
  "CMakeFiles/spb_stop.dir/algorithm.cpp.o"
  "CMakeFiles/spb_stop.dir/algorithm.cpp.o.d"
  "CMakeFiles/spb_stop.dir/allgatherv_rd.cpp.o"
  "CMakeFiles/spb_stop.dir/allgatherv_rd.cpp.o.d"
  "CMakeFiles/spb_stop.dir/br_lin.cpp.o"
  "CMakeFiles/spb_stop.dir/br_lin.cpp.o.d"
  "CMakeFiles/spb_stop.dir/br_xy.cpp.o"
  "CMakeFiles/spb_stop.dir/br_xy.cpp.o.d"
  "CMakeFiles/spb_stop.dir/frame.cpp.o"
  "CMakeFiles/spb_stop.dir/frame.cpp.o.d"
  "CMakeFiles/spb_stop.dir/partition.cpp.o"
  "CMakeFiles/spb_stop.dir/partition.cpp.o.d"
  "CMakeFiles/spb_stop.dir/pers_alltoall.cpp.o"
  "CMakeFiles/spb_stop.dir/pers_alltoall.cpp.o.d"
  "CMakeFiles/spb_stop.dir/problem.cpp.o"
  "CMakeFiles/spb_stop.dir/problem.cpp.o.d"
  "CMakeFiles/spb_stop.dir/reposition.cpp.o"
  "CMakeFiles/spb_stop.dir/reposition.cpp.o.d"
  "CMakeFiles/spb_stop.dir/run.cpp.o"
  "CMakeFiles/spb_stop.dir/run.cpp.o.d"
  "CMakeFiles/spb_stop.dir/two_step.cpp.o"
  "CMakeFiles/spb_stop.dir/two_step.cpp.o.d"
  "CMakeFiles/spb_stop.dir/uncoordinated.cpp.o"
  "CMakeFiles/spb_stop.dir/uncoordinated.cpp.o.d"
  "CMakeFiles/spb_stop.dir/verify.cpp.o"
  "CMakeFiles/spb_stop.dir/verify.cpp.o.d"
  "libspb_stop.a"
  "libspb_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
