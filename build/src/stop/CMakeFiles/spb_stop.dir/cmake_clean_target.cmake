file(REMOVE_RECURSE
  "libspb_stop.a"
)
