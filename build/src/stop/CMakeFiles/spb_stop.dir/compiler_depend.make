# Empty compiler generated dependencies file for spb_stop.
# This may be replaced when dependencies are built.
