
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stop/adaptive_repos.cpp" "src/stop/CMakeFiles/spb_stop.dir/adaptive_repos.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/adaptive_repos.cpp.o.d"
  "/root/repo/src/stop/algorithm.cpp" "src/stop/CMakeFiles/spb_stop.dir/algorithm.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/algorithm.cpp.o.d"
  "/root/repo/src/stop/allgatherv_rd.cpp" "src/stop/CMakeFiles/spb_stop.dir/allgatherv_rd.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/allgatherv_rd.cpp.o.d"
  "/root/repo/src/stop/br_lin.cpp" "src/stop/CMakeFiles/spb_stop.dir/br_lin.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/br_lin.cpp.o.d"
  "/root/repo/src/stop/br_xy.cpp" "src/stop/CMakeFiles/spb_stop.dir/br_xy.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/br_xy.cpp.o.d"
  "/root/repo/src/stop/frame.cpp" "src/stop/CMakeFiles/spb_stop.dir/frame.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/frame.cpp.o.d"
  "/root/repo/src/stop/partition.cpp" "src/stop/CMakeFiles/spb_stop.dir/partition.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/partition.cpp.o.d"
  "/root/repo/src/stop/pers_alltoall.cpp" "src/stop/CMakeFiles/spb_stop.dir/pers_alltoall.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/pers_alltoall.cpp.o.d"
  "/root/repo/src/stop/problem.cpp" "src/stop/CMakeFiles/spb_stop.dir/problem.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/problem.cpp.o.d"
  "/root/repo/src/stop/reposition.cpp" "src/stop/CMakeFiles/spb_stop.dir/reposition.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/reposition.cpp.o.d"
  "/root/repo/src/stop/run.cpp" "src/stop/CMakeFiles/spb_stop.dir/run.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/run.cpp.o.d"
  "/root/repo/src/stop/two_step.cpp" "src/stop/CMakeFiles/spb_stop.dir/two_step.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/two_step.cpp.o.d"
  "/root/repo/src/stop/uncoordinated.cpp" "src/stop/CMakeFiles/spb_stop.dir/uncoordinated.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/uncoordinated.cpp.o.d"
  "/root/repo/src/stop/verify.cpp" "src/stop/CMakeFiles/spb_stop.dir/verify.cpp.o" "gcc" "src/stop/CMakeFiles/spb_stop.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/spb_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/spb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/spb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/spb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
