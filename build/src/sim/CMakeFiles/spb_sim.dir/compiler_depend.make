# Empty compiler generated dependencies file for spb_sim.
# This may be replaced when dependencies are built.
