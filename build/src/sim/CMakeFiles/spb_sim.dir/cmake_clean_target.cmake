file(REMOVE_RECURSE
  "libspb_sim.a"
)
