file(REMOVE_RECURSE
  "CMakeFiles/spb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/spb_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/spb_sim.dir/simulator.cpp.o"
  "CMakeFiles/spb_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/spb_sim.dir/task.cpp.o"
  "CMakeFiles/spb_sim.dir/task.cpp.o.d"
  "libspb_sim.a"
  "libspb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
