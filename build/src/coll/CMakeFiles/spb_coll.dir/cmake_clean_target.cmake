file(REMOVE_RECURSE
  "libspb_coll.a"
)
