
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/alltoall.cpp" "src/coll/CMakeFiles/spb_coll.dir/alltoall.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/alltoall.cpp.o.d"
  "/root/repo/src/coll/barrier.cpp" "src/coll/CMakeFiles/spb_coll.dir/barrier.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/barrier.cpp.o.d"
  "/root/repo/src/coll/engine.cpp" "src/coll/CMakeFiles/spb_coll.dir/engine.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/engine.cpp.o.d"
  "/root/repo/src/coll/gather.cpp" "src/coll/CMakeFiles/spb_coll.dir/gather.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/gather.cpp.o.d"
  "/root/repo/src/coll/halving.cpp" "src/coll/CMakeFiles/spb_coll.dir/halving.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/halving.cpp.o.d"
  "/root/repo/src/coll/pipeline.cpp" "src/coll/CMakeFiles/spb_coll.dir/pipeline.cpp.o" "gcc" "src/coll/CMakeFiles/spb_coll.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mp/CMakeFiles/spb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
