# Empty compiler generated dependencies file for spb_coll.
# This may be replaced when dependencies are built.
