file(REMOVE_RECURSE
  "CMakeFiles/spb_coll.dir/alltoall.cpp.o"
  "CMakeFiles/spb_coll.dir/alltoall.cpp.o.d"
  "CMakeFiles/spb_coll.dir/barrier.cpp.o"
  "CMakeFiles/spb_coll.dir/barrier.cpp.o.d"
  "CMakeFiles/spb_coll.dir/engine.cpp.o"
  "CMakeFiles/spb_coll.dir/engine.cpp.o.d"
  "CMakeFiles/spb_coll.dir/gather.cpp.o"
  "CMakeFiles/spb_coll.dir/gather.cpp.o.d"
  "CMakeFiles/spb_coll.dir/halving.cpp.o"
  "CMakeFiles/spb_coll.dir/halving.cpp.o.d"
  "CMakeFiles/spb_coll.dir/pipeline.cpp.o"
  "CMakeFiles/spb_coll.dir/pipeline.cpp.o.d"
  "libspb_coll.a"
  "libspb_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
