file(REMOVE_RECURSE
  "CMakeFiles/spb_mp.dir/mailbox.cpp.o"
  "CMakeFiles/spb_mp.dir/mailbox.cpp.o.d"
  "CMakeFiles/spb_mp.dir/metrics.cpp.o"
  "CMakeFiles/spb_mp.dir/metrics.cpp.o.d"
  "CMakeFiles/spb_mp.dir/payload.cpp.o"
  "CMakeFiles/spb_mp.dir/payload.cpp.o.d"
  "CMakeFiles/spb_mp.dir/runtime.cpp.o"
  "CMakeFiles/spb_mp.dir/runtime.cpp.o.d"
  "CMakeFiles/spb_mp.dir/trace.cpp.o"
  "CMakeFiles/spb_mp.dir/trace.cpp.o.d"
  "libspb_mp.a"
  "libspb_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
