file(REMOVE_RECURSE
  "libspb_mp.a"
)
