# Empty compiler generated dependencies file for spb_mp.
# This may be replaced when dependencies are built.
