
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/mailbox.cpp" "src/mp/CMakeFiles/spb_mp.dir/mailbox.cpp.o" "gcc" "src/mp/CMakeFiles/spb_mp.dir/mailbox.cpp.o.d"
  "/root/repo/src/mp/metrics.cpp" "src/mp/CMakeFiles/spb_mp.dir/metrics.cpp.o" "gcc" "src/mp/CMakeFiles/spb_mp.dir/metrics.cpp.o.d"
  "/root/repo/src/mp/payload.cpp" "src/mp/CMakeFiles/spb_mp.dir/payload.cpp.o" "gcc" "src/mp/CMakeFiles/spb_mp.dir/payload.cpp.o.d"
  "/root/repo/src/mp/runtime.cpp" "src/mp/CMakeFiles/spb_mp.dir/runtime.cpp.o" "gcc" "src/mp/CMakeFiles/spb_mp.dir/runtime.cpp.o.d"
  "/root/repo/src/mp/trace.cpp" "src/mp/CMakeFiles/spb_mp.dir/trace.cpp.o" "gcc" "src/mp/CMakeFiles/spb_mp.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
