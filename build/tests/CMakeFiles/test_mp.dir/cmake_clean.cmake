file(REMOVE_RECURSE
  "CMakeFiles/test_mp.dir/mp/mailbox_test.cpp.o"
  "CMakeFiles/test_mp.dir/mp/mailbox_test.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/metrics_test.cpp.o"
  "CMakeFiles/test_mp.dir/mp/metrics_test.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/payload_test.cpp.o"
  "CMakeFiles/test_mp.dir/mp/payload_test.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/runtime_test.cpp.o"
  "CMakeFiles/test_mp.dir/mp/runtime_test.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/trace_test.cpp.o"
  "CMakeFiles/test_mp.dir/mp/trace_test.cpp.o.d"
  "test_mp"
  "test_mp.pdb"
  "test_mp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
