file(REMOVE_RECURSE
  "CMakeFiles/test_coll.dir/coll/alltoall_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/alltoall_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/engine_equivalence_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/engine_equivalence_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/engine_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/engine_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/gather_pipeline_barrier_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/gather_pipeline_barrier_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/halving_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/halving_test.cpp.o.d"
  "CMakeFiles/test_coll.dir/coll/pipeline_rotation_test.cpp.o"
  "CMakeFiles/test_coll.dir/coll/pipeline_rotation_test.cpp.o.d"
  "test_coll"
  "test_coll.pdb"
  "test_coll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
