
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/distribution_test.cpp" "tests/CMakeFiles/test_dist.dir/dist/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/distribution_test.cpp.o.d"
  "/root/repo/tests/dist/figure1_golden_test.cpp" "tests/CMakeFiles/test_dist.dir/dist/figure1_golden_test.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/figure1_golden_test.cpp.o.d"
  "/root/repo/tests/dist/grid_render_test.cpp" "tests/CMakeFiles/test_dist.dir/dist/grid_render_test.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/grid_render_test.cpp.o.d"
  "/root/repo/tests/dist/ideal_test.cpp" "tests/CMakeFiles/test_dist.dir/dist/ideal_test.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/ideal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stop/CMakeFiles/spb_stop.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/spb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/spb_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/spb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/spb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
