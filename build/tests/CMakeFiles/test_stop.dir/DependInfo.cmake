
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stop/adaptive_repos_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/adaptive_repos_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/adaptive_repos_test.cpp.o.d"
  "/root/repo/tests/stop/algorithms_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/algorithms_test.cpp.o.d"
  "/root/repo/tests/stop/br_xy_choice_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/br_xy_choice_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/br_xy_choice_test.cpp.o.d"
  "/root/repo/tests/stop/failure_injection_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/failure_injection_test.cpp.o.d"
  "/root/repo/tests/stop/frame_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/frame_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/frame_test.cpp.o.d"
  "/root/repo/tests/stop/ideal_vs_paper_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/ideal_vs_paper_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/ideal_vs_paper_test.cpp.o.d"
  "/root/repo/tests/stop/invariants_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/invariants_test.cpp.o.d"
  "/root/repo/tests/stop/message_count_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/message_count_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/message_count_test.cpp.o.d"
  "/root/repo/tests/stop/new_algorithms_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/new_algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/new_algorithms_test.cpp.o.d"
  "/root/repo/tests/stop/partition_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/partition_test.cpp.o.d"
  "/root/repo/tests/stop/reposition_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/reposition_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/reposition_test.cpp.o.d"
  "/root/repo/tests/stop/run_options_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/run_options_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/run_options_test.cpp.o.d"
  "/root/repo/tests/stop/shape_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/shape_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/shape_test.cpp.o.d"
  "/root/repo/tests/stop/stress_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/stress_test.cpp.o.d"
  "/root/repo/tests/stop/varied_lengths_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/varied_lengths_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/varied_lengths_test.cpp.o.d"
  "/root/repo/tests/stop/verify_test.cpp" "tests/CMakeFiles/test_stop.dir/stop/verify_test.cpp.o" "gcc" "tests/CMakeFiles/test_stop.dir/stop/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stop/CMakeFiles/spb_stop.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/spb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/spb_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/spb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/spb_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
