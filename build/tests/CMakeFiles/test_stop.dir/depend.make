# Empty dependencies file for test_stop.
# This may be replaced when dependencies are built.
