# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_stop[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
