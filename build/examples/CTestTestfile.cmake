# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_broadcast "/root/repo/build/examples/dynamic_broadcast")
set_tests_properties(example_dynamic_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_load_balancing "/root/repo/build/examples/load_balancing")
set_tests_properties(example_load_balancing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distribution_gallery "/root/repo/build/examples/distribution_gallery" "6" "8" "14")
set_tests_properties(example_distribution_gallery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_algorithm_advisor "/root/repo/build/examples/algorithm_advisor" "paragon" "8" "8" "Cr" "20" "4096")
set_tests_properties(example_algorithm_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeline "/root/repo/build/examples/timeline" "Br_Lin" "8")
set_tests_properties(example_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_link_heatmap "/root/repo/build/examples/link_heatmap" "Br_xy_source")
set_tests_properties(example_link_heatmap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schedule_viewer "/root/repo/build/examples/schedule_viewer" "16" "0,3,9")
set_tests_properties(example_schedule_viewer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_t3d_probe "/root/repo/build/examples/t3d_probe")
set_tests_properties(example_t3d_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
