# Empty dependencies file for t3d_probe.
# This may be replaced when dependencies are built.
