file(REMOVE_RECURSE
  "CMakeFiles/t3d_probe.dir/t3d_probe.cpp.o"
  "CMakeFiles/t3d_probe.dir/t3d_probe.cpp.o.d"
  "t3d_probe"
  "t3d_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t3d_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
