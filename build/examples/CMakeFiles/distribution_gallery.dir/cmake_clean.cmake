file(REMOVE_RECURSE
  "CMakeFiles/distribution_gallery.dir/distribution_gallery.cpp.o"
  "CMakeFiles/distribution_gallery.dir/distribution_gallery.cpp.o.d"
  "distribution_gallery"
  "distribution_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
