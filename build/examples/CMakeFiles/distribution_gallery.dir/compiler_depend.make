# Empty compiler generated dependencies file for distribution_gallery.
# This may be replaced when dependencies are built.
