file(REMOVE_RECURSE
  "CMakeFiles/dynamic_broadcast.dir/dynamic_broadcast.cpp.o"
  "CMakeFiles/dynamic_broadcast.dir/dynamic_broadcast.cpp.o.d"
  "dynamic_broadcast"
  "dynamic_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
