# Empty dependencies file for dynamic_broadcast.
# This may be replaced when dependencies are built.
