# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(export_csv_smoke "/root/repo/build/bench/export_csv" "/root/repo/build/results-smoke")
set_tests_properties(export_csv_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
