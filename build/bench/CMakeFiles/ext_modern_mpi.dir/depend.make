# Empty dependencies file for ext_modern_mpi.
# This may be replaced when dependencies are built.
