file(REMOVE_RECURSE
  "CMakeFiles/ext_modern_mpi.dir/ext_modern_mpi.cpp.o"
  "CMakeFiles/ext_modern_mpi.dir/ext_modern_mpi.cpp.o.d"
  "ext_modern_mpi"
  "ext_modern_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_modern_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
