# Empty dependencies file for fig05_vary_machine.
# This may be replaced when dependencies are built.
