file(REMOVE_RECURSE
  "CMakeFiles/fig05_vary_machine.dir/fig05_vary_machine.cpp.o"
  "CMakeFiles/fig05_vary_machine.dir/fig05_vary_machine.cpp.o.d"
  "fig05_vary_machine"
  "fig05_vary_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_vary_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
