file(REMOVE_RECURSE
  "CMakeFiles/ext_hypercube.dir/ext_hypercube.cpp.o"
  "CMakeFiles/ext_hypercube.dir/ext_hypercube.cpp.o.d"
  "ext_hypercube"
  "ext_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
