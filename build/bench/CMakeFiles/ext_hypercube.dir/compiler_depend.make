# Empty compiler generated dependencies file for ext_hypercube.
# This may be replaced when dependencies are built.
