file(REMOVE_RECURSE
  "CMakeFiles/fig12_t3d_fixed_volume.dir/fig12_t3d_fixed_volume.cpp.o"
  "CMakeFiles/fig12_t3d_fixed_volume.dir/fig12_t3d_fixed_volume.cpp.o.d"
  "fig12_t3d_fixed_volume"
  "fig12_t3d_fixed_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_t3d_fixed_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
