# Empty dependencies file for fig12_t3d_fixed_volume.
# This may be replaced when dependencies are built.
