file(REMOVE_RECURSE
  "CMakeFiles/ext_random_t3d.dir/ext_random_t3d.cpp.o"
  "CMakeFiles/ext_random_t3d.dir/ext_random_t3d.cpp.o.d"
  "ext_random_t3d"
  "ext_random_t3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_random_t3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
