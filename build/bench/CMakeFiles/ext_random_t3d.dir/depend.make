# Empty dependencies file for ext_random_t3d.
# This may be replaced when dependencies are built.
