# Empty compiler generated dependencies file for fig11_t3d_allgather.
# This may be replaced when dependencies are built.
