file(REMOVE_RECURSE
  "CMakeFiles/fig11_t3d_allgather.dir/fig11_t3d_allgather.cpp.o"
  "CMakeFiles/fig11_t3d_allgather.dir/fig11_t3d_allgather.cpp.o.d"
  "fig11_t3d_allgather"
  "fig11_t3d_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_t3d_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
