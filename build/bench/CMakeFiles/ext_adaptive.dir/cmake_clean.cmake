file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive.dir/ext_adaptive.cpp.o"
  "CMakeFiles/ext_adaptive.dir/ext_adaptive.cpp.o.d"
  "ext_adaptive"
  "ext_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
