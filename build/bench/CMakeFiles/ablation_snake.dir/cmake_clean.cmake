file(REMOVE_RECURSE
  "CMakeFiles/ablation_snake.dir/ablation_snake.cpp.o"
  "CMakeFiles/ablation_snake.dir/ablation_snake.cpp.o.d"
  "ablation_snake"
  "ablation_snake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
