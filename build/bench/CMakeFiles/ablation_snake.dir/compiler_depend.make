# Empty compiler generated dependencies file for ablation_snake.
# This may be replaced when dependencies are built.
