# Empty compiler generated dependencies file for fig02_parameters.
# This may be replaced when dependencies are built.
