file(REMOVE_RECURSE
  "CMakeFiles/fig02_parameters.dir/fig02_parameters.cpp.o"
  "CMakeFiles/fig02_parameters.dir/fig02_parameters.cpp.o.d"
  "fig02_parameters"
  "fig02_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
