file(REMOVE_RECURSE
  "CMakeFiles/fig03_vary_sources.dir/fig03_vary_sources.cpp.o"
  "CMakeFiles/fig03_vary_sources.dir/fig03_vary_sources.cpp.o.d"
  "fig03_vary_sources"
  "fig03_vary_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_vary_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
