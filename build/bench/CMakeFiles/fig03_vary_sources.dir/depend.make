# Empty dependencies file for fig03_vary_sources.
# This may be replaced when dependencies are built.
