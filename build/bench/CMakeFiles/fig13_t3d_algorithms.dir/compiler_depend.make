# Empty compiler generated dependencies file for fig13_t3d_algorithms.
# This may be replaced when dependencies are built.
