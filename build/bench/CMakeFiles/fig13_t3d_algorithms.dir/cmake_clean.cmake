file(REMOVE_RECURSE
  "CMakeFiles/fig13_t3d_algorithms.dir/fig13_t3d_algorithms.cpp.o"
  "CMakeFiles/fig13_t3d_algorithms.dir/fig13_t3d_algorithms.cpp.o.d"
  "fig13_t3d_algorithms"
  "fig13_t3d_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_t3d_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
