file(REMOVE_RECURSE
  "CMakeFiles/fig09_repositioning_sources.dir/fig09_repositioning_sources.cpp.o"
  "CMakeFiles/fig09_repositioning_sources.dir/fig09_repositioning_sources.cpp.o.d"
  "fig09_repositioning_sources"
  "fig09_repositioning_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_repositioning_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
