# Empty dependencies file for fig09_repositioning_sources.
# This may be replaced when dependencies are built.
