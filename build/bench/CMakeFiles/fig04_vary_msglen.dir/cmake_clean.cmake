file(REMOVE_RECURSE
  "CMakeFiles/fig04_vary_msglen.dir/fig04_vary_msglen.cpp.o"
  "CMakeFiles/fig04_vary_msglen.dir/fig04_vary_msglen.cpp.o.d"
  "fig04_vary_msglen"
  "fig04_vary_msglen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_vary_msglen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
