# Empty compiler generated dependencies file for fig04_vary_msglen.
# This may be replaced when dependencies are built.
