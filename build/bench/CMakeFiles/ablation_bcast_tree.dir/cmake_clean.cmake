file(REMOVE_RECURSE
  "CMakeFiles/ablation_bcast_tree.dir/ablation_bcast_tree.cpp.o"
  "CMakeFiles/ablation_bcast_tree.dir/ablation_bcast_tree.cpp.o.d"
  "ablation_bcast_tree"
  "ablation_bcast_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bcast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
