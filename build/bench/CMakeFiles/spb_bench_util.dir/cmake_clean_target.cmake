file(REMOVE_RECURSE
  "../lib/libspb_bench_util.a"
)
