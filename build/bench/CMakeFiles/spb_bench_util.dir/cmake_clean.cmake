file(REMOVE_RECURSE
  "../lib/libspb_bench_util.a"
  "../lib/libspb_bench_util.pdb"
  "CMakeFiles/spb_bench_util.dir/util.cpp.o"
  "CMakeFiles/spb_bench_util.dir/util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
