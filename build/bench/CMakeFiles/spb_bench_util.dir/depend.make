# Empty dependencies file for spb_bench_util.
# This may be replaced when dependencies are built.
