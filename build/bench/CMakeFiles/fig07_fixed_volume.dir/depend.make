# Empty dependencies file for fig07_fixed_volume.
# This may be replaced when dependencies are built.
