file(REMOVE_RECURSE
  "CMakeFiles/fig07_fixed_volume.dir/fig07_fixed_volume.cpp.o"
  "CMakeFiles/fig07_fixed_volume.dir/fig07_fixed_volume.cpp.o.d"
  "fig07_fixed_volume"
  "fig07_fixed_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fixed_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
