file(REMOVE_RECURSE
  "CMakeFiles/fig10_repositioning_msglen.dir/fig10_repositioning_msglen.cpp.o"
  "CMakeFiles/fig10_repositioning_msglen.dir/fig10_repositioning_msglen.cpp.o.d"
  "fig10_repositioning_msglen"
  "fig10_repositioning_msglen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_repositioning_msglen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
