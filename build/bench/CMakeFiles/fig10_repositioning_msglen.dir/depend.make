# Empty dependencies file for fig10_repositioning_msglen.
# This may be replaced when dependencies are built.
