# Empty compiler generated dependencies file for fig06_distributions.
# This may be replaced when dependencies are built.
