file(REMOVE_RECURSE
  "CMakeFiles/fig06_distributions.dir/fig06_distributions.cpp.o"
  "CMakeFiles/fig06_distributions.dir/fig06_distributions.cpp.o.d"
  "fig06_distributions"
  "fig06_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
