# Empty compiler generated dependencies file for export_csv.
# This may be replaced when dependencies are built.
