file(REMOVE_RECURSE
  "CMakeFiles/fig08_dimensions.dir/fig08_dimensions.cpp.o"
  "CMakeFiles/fig08_dimensions.dir/fig08_dimensions.cpp.o.d"
  "fig08_dimensions"
  "fig08_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
