# Empty compiler generated dependencies file for fig08_dimensions.
# This may be replaced when dependencies are built.
