# Empty compiler generated dependencies file for ext_uncoordinated.
# This may be replaced when dependencies are built.
