file(REMOVE_RECURSE
  "CMakeFiles/ext_uncoordinated.dir/ext_uncoordinated.cpp.o"
  "CMakeFiles/ext_uncoordinated.dir/ext_uncoordinated.cpp.o.d"
  "ext_uncoordinated"
  "ext_uncoordinated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_uncoordinated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
