file(REMOVE_RECURSE
  "CMakeFiles/fig10b_partitioning.dir/fig10b_partitioning.cpp.o"
  "CMakeFiles/fig10b_partitioning.dir/fig10b_partitioning.cpp.o.d"
  "fig10b_partitioning"
  "fig10b_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
