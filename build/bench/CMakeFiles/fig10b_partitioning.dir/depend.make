# Empty dependencies file for fig10b_partitioning.
# This may be replaced when dependencies are built.
