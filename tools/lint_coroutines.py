#!/usr/bin/env python3
"""Lint for C++20 coroutine pitfalls specific to this codebase.

Two bug classes that compile cleanly, pass -Wall, and then corrupt or hang
a simulation:

1. Capturing coroutine lambdas.  A lambda whose body uses co_await /
   co_return keeps its captures inside the *closure object*, not the
   coroutine frame.  Our program factories build sim::Task values from
   temporary lambdas; if such a lambda were itself a coroutine, every
   capture would dangle after the first suspension.  The safe idiom (used
   everywhere in src/) is a non-coroutine lambda that *calls* a free
   coroutine function.  Any capturing coroutine lambda is flagged.

2. Un-awaited sim::Task calls.  Calling a Task-returning coroutine
   function as a bare statement creates a suspended coroutine, destroys
   it at the semicolon, and silently does nothing.  Tasks must be
   co_await-ed, spawned on a Runtime, or stored.  We collect every
   function declared as returning sim::Task and flag bare-statement
   calls of them.

Usage: lint_coroutines.py DIR [DIR ...]
Exits 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

TASK_DECL = re.compile(r"\bsim::Task\s+(\w+)\s*\(")
LAMBDA_INTRO = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^)]*\)\s*)?"
                          r"(?:mutable\s*)?(?:->\s*[\w:]+\s*)?\{")
CO_KEYWORD = re.compile(r"\bco_(?:await|return|yield)\b")


def strip_comments(text: str) -> str:
    """Blanks out comments and string literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        two = text[i:i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote = text[i]
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def matching_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


def check_file(path: Path, task_functions: set[str]) -> list[str]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments(raw)
    findings = []

    # 1. capturing coroutine lambdas
    for m in LAMBDA_INTRO.finditer(text):
        captures = m.group(1).strip()
        if not captures:
            continue
        body_open = text.index("{", m.end() - 1)
        body_close = matching_brace(text, body_open)
        body = text[body_open:body_close]
        if CO_KEYWORD.search(body):
            findings.append(
                f"{path}:{line_of(text, m.start())}: capturing coroutine "
                f"lambda [{captures}] — captures outlive only the closure, "
                f"not the coroutine frame; call a free coroutine function "
                f"instead")

    # 2. bare-statement calls of Task-returning functions
    for name in task_functions:
        for m in re.finditer(rf"(^|[;{{}}])\s*(?:\w+::)?{name}\s*\(",
                             text, re.MULTILINE):
            start = m.start(0) + len(m.group(1))
            prefix = text[max(0, start - 80):start]
            # Declarations/definitions and uses that consume the task.
            if re.search(r"(co_await|co_return|return|=|\bspawn\b|"
                         r"sim::Task|\bTask\b)\s*$", prefix.strip()):
                continue
            # Walk to the matching ')' and require ';' right after —
            # otherwise it is a sub-expression of something that uses it.
            i = text.index("(", start)
            depth = 0
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = text[i + 1:i + 2]
            if tail == ";":
                findings.append(
                    f"{path}:{line_of(text, start)}: result of coroutine "
                    f"'{name}(...)' is discarded — the task is destroyed "
                    f"before it ever runs; co_await it, spawn() it, or "
                    f"store it")
    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    files = []
    for d in argv[1:]:
        p = Path(d)
        if p.is_file():
            files.append(p)
        else:
            files.extend(sorted(p.rglob("*.cpp")))
            files.extend(sorted(p.rglob("*.h")))

    task_functions: set[str] = set()
    for f in files:
        text = strip_comments(f.read_text(encoding="utf-8", errors="replace"))
        for m in TASK_DECL.finditer(text):
            task_functions.add(m.group(1))
    # Task member/utility names that are not coroutine factories.
    task_functions -= {"Task", "get_return_object"}

    findings = []
    for f in files:
        findings.extend(check_file(f, task_functions))

    for finding in findings:
        print(finding)
    print(f"lint_coroutines: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
