#!/usr/bin/env python3
"""Compare a perf_harness BENCH_core.json against a checked-in baseline.

Direction-aware: metrics named *_ns / *_ms are times (lower is better),
*_per_sec are rates (higher is better); everything else (queue depths,
combo counts, job counts) is informational and printed but never gates.

The gate is a ratio: a time metric fails when current > baseline *
max_regress, a rate metric when current < baseline / max_regress.  CI runs
on shared machines with unknown hardware, so its tolerance is generous —
the gate exists to catch order-of-magnitude regressions (a lost fast path,
an accidental O(n^2)), not 10%% noise.

A gateable metric (time or rate) present in the current run but absent
from the baseline is *reported loudly* rather than silently skipped: the
run still passes (the metric is new, there is nothing to compare against)
but a NEW-METRIC notice on stderr tells the author to re-baseline, after
which the metric is gated like any other.  --fail-on-new upgrades the
notice to a failure for CI legs that require a complete baseline.

  bench_compare.py baseline.json current.json [--max-regress 1.5]
"""

import argparse
import json
import sys


def classify(name: str) -> str:
    if name.endswith("_ns") or name.endswith("_ms"):
        return "time"
    if name.endswith("_per_sec"):
        return "rate"
    return "info"


def load_metrics(path: str, role: str) -> dict:
    """Reads a perf_harness JSON file, failing with a clear one-line error
    (not a traceback) on unreadable files, malformed JSON, or a document
    without a numeric "metrics" object."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {role} file {path!r}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {role} file {path!r} is not valid JSON: {e}")
    if not isinstance(doc, dict) or "metrics" not in doc:
        sys.exit(
            f"bench_compare: {role} file {path!r} has no top-level"
            ' "metrics" object — is this a perf_harness output file?'
        )
    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in metrics.values()
    ):
        sys.exit(
            f'bench_compare: "metrics" in {role} file {path!r} must map'
            " metric names to numbers"
        )
    return metrics


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=1.5,
        help="allowed slowdown ratio per metric (default 1.5)",
    )
    ap.add_argument(
        "--fail-on-new",
        action="store_true",
        help="treat gateable metrics missing from the baseline as failures"
        " (for CI legs that require a fully re-baselined BENCH file)",
    )
    args = ap.parse_args()
    if args.max_regress < 1.0:
        ap.error("--max-regress must be >= 1.0")

    base = load_metrics(args.baseline, "baseline")
    cur = load_metrics(args.current, "current")

    failures = []
    print(f"{'metric':36} {'baseline':>14} {'current':>14} {'ratio':>8}  verdict")
    for name, b in base.items():
        if name not in cur:
            print(f"{name:36} {b:14.2f} {'missing':>14}")
            failures.append(f"{name}: missing from current run")
            continue
        c = cur[name]
        kind = classify(name)
        if kind == "info" or b == 0:
            print(f"{name:36} {b:14.2f} {c:14.2f} {'':>8}  info")
            continue
        ratio = c / b
        # Normalize so ratio > 1 always means "got worse".
        worse = ratio if kind == "time" else (b / c if c else float("inf"))
        ok = worse <= args.max_regress
        verdict = "ok" if ok else f"REGRESSED (>{args.max_regress:g}x)"
        print(f"{name:36} {b:14.2f} {c:14.2f} {ratio:8.3f}  {verdict}")
        if not ok:
            failures.append(f"{name}: {worse:.2f}x worse than baseline")

    unbaselined = []
    for name in cur:
        if name in base:
            continue
        if classify(name) == "info":
            print(f"{name:36} {'new':>14} {cur[name]:14.2f} {'':>8}  info")
            continue
        print(
            f"{name:36} {'new':>14} {cur[name]:14.2f} {'':>8}"
            "  NEW (not gated)"
        )
        unbaselined.append(name)

    if unbaselined:
        print(
            f"\n{len(unbaselined)} gateable metric(s) missing from the"
            " baseline (re-run perf_harness and refresh"
            " bench/BENCH_baseline.json to gate them):",
            file=sys.stderr,
        )
        for name in unbaselined:
            print(f"  {name}", file=sys.stderr)
        if args.fail_on_new:
            failures.extend(f"{name}: not in baseline" for name in unbaselined)

    if failures:
        print(f"\n{len(failures)} metric(s) regressed:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nall gated metrics within {args.max_regress:g}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
