#!/usr/bin/env python3
"""Compare a perf_harness BENCH_core.json against a checked-in baseline.

Direction-aware: metrics named *_ns / *_ms are times (lower is better),
*_per_sec are rates (higher is better); everything else (queue depths,
combo counts, job counts) is informational and printed but never gates.

The gate is a ratio: a time metric fails when current > baseline *
max_regress, a rate metric when current < baseline / max_regress.  CI runs
on shared machines with unknown hardware, so its tolerance is generous —
the gate exists to catch order-of-magnitude regressions (a lost fast path,
an accidental O(n^2)), not 10%% noise.

A gateable metric (time or rate) present in the current run but absent
from the baseline is *reported loudly* rather than silently skipped: the
run still passes (the metric is new, there is nothing to compare against)
but a NEW-METRIC notice on stderr tells the author to re-baseline, after
which the metric is gated like any other.  --fail-on-new upgrades the
notice to a failure for CI legs that require a complete baseline.

Baseline-relative gates are useless for claims about the *current* host
("sharded beats serial"), which depend on its core count, not on history.
--ratio-gate NUM/DEN>=X gates on the ratio of two metrics of the current
run alone: it fails when current[NUM] / current[DEN] < X.  Repeatable.
CI's multi-core perf leg uses it to require the sharded engine to at
least match the serial loop; the hosted 1-core leg must not.

  bench_compare.py baseline.json current.json [--max-regress 1.5]
  bench_compare.py base.json cur.json \
      --ratio-gate end_to_end_t3d_par_events_per_sec/end_to_end_t3d_serial_events_per_sec>=1.0
"""

import argparse
import json
import sys


def classify(name: str) -> str:
    if name.endswith("_ns") or name.endswith("_ms"):
        return "time"
    if name.endswith("_per_sec"):
        return "rate"
    return "info"


def load_metrics(path: str, role: str) -> dict:
    """Reads a perf_harness JSON file, failing with a clear one-line error
    (not a traceback) on unreadable files, malformed JSON, or a document
    without a numeric "metrics" object."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {role} file {path!r}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {role} file {path!r} is not valid JSON: {e}")
    if not isinstance(doc, dict) or "metrics" not in doc:
        sys.exit(
            f"bench_compare: {role} file {path!r} has no top-level"
            ' "metrics" object — is this a perf_harness output file?'
        )
    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in metrics.values()
    ):
        sys.exit(
            f'bench_compare: "metrics" in {role} file {path!r} must map'
            " metric names to numbers"
        )
    return metrics


def parse_ratio_gate(spec: str) -> tuple:
    """Parses "num_metric/den_metric>=threshold" into its three parts,
    exiting with a one-line usage error on malformed input."""
    try:
        metrics, threshold = spec.split(">=", 1)
        num, den = metrics.split("/", 1)
        num, den = num.strip(), den.strip()
        if not num or not den:
            raise ValueError("empty metric name")
        return num, den, float(threshold)
    except ValueError as e:
        sys.exit(
            f"bench_compare: bad --ratio-gate {spec!r}"
            f" (want NUM_METRIC/DEN_METRIC>=THRESHOLD): {e}"
        )


def check_ratio_gates(cur: dict, gates: list) -> list:
    """Evaluates --ratio-gate specs against the current run's metrics;
    returns failure strings (missing metrics or a zero denominator fail
    loudly — a gate that cannot be evaluated must not pass silently)."""
    failures = []
    for num, den, threshold in gates:
        missing = [m for m in (num, den) if m not in cur]
        if missing:
            failures.append(
                f"ratio gate {num}/{den}: metric(s) missing from the"
                f" current run: {', '.join(missing)}"
            )
            continue
        if cur[den] == 0:
            failures.append(f"ratio gate {num}/{den}: denominator is zero")
            continue
        ratio = cur[num] / cur[den]
        verdict = "ok" if ratio >= threshold else "FAILED"
        print(
            f"ratio gate {num}/{den} = {ratio:.3f}"
            f" (need >= {threshold:g})  {verdict}"
        )
        if ratio < threshold:
            failures.append(
                f"ratio gate {num}/{den} = {ratio:.3f} < {threshold:g}"
            )
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=1.5,
        help="allowed slowdown ratio per metric (default 1.5)",
    )
    ap.add_argument(
        "--fail-on-new",
        action="store_true",
        help="treat gateable metrics missing from the baseline as failures"
        " (for CI legs that require a fully re-baselined BENCH file)",
    )
    ap.add_argument(
        "--ratio-gate",
        action="append",
        default=[],
        metavar="NUM/DEN>=X",
        help="fail when current[NUM] / current[DEN] < X; compares two"
        " metrics of the current run (host-relative, baseline-free);"
        " repeatable",
    )
    args = ap.parse_args()
    ratio_gates = [parse_ratio_gate(spec) for spec in args.ratio_gate]
    if args.max_regress < 1.0:
        ap.error("--max-regress must be >= 1.0")

    base = load_metrics(args.baseline, "baseline")
    cur = load_metrics(args.current, "current")

    failures = []
    print(f"{'metric':36} {'baseline':>14} {'current':>14} {'ratio':>8}  verdict")
    for name, b in base.items():
        if name not in cur:
            print(f"{name:36} {b:14.2f} {'missing':>14}")
            failures.append(f"{name}: missing from current run")
            continue
        c = cur[name]
        kind = classify(name)
        if kind == "info" or b == 0:
            print(f"{name:36} {b:14.2f} {c:14.2f} {'':>8}  info")
            continue
        ratio = c / b
        # Normalize so ratio > 1 always means "got worse".
        worse = ratio if kind == "time" else (b / c if c else float("inf"))
        ok = worse <= args.max_regress
        verdict = "ok" if ok else f"REGRESSED (>{args.max_regress:g}x)"
        print(f"{name:36} {b:14.2f} {c:14.2f} {ratio:8.3f}  {verdict}")
        if not ok:
            failures.append(f"{name}: {worse:.2f}x worse than baseline")

    unbaselined = []
    for name in cur:
        if name in base:
            continue
        if classify(name) == "info":
            print(f"{name:36} {'new':>14} {cur[name]:14.2f} {'':>8}  info")
            continue
        print(
            f"{name:36} {'new':>14} {cur[name]:14.2f} {'':>8}"
            "  NEW (not gated)"
        )
        unbaselined.append(name)

    if unbaselined:
        print(
            f"\n{len(unbaselined)} gateable metric(s) missing from the"
            " baseline (re-run perf_harness and refresh"
            " bench/BENCH_baseline.json to gate them):",
            file=sys.stderr,
        )
        for name in unbaselined:
            print(f"  {name}", file=sys.stderr)
        if args.fail_on_new:
            failures.extend(f"{name}: not in baseline" for name in unbaselined)

    failures.extend(check_ratio_gates(cur, ratio_gates))

    if failures:
        print(f"\n{len(failures)} metric(s) regressed:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nall gated metrics within {args.max_regress:g}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
