// spb_plan — cost-model broadcast planning CLI.
//
// Prices every registered algorithm on a problem through plan::Planner and
// emits the ranked table as JSON.  With --execute it then runs the
// predicted-best algorithm and emits the full run report with a "planner"
// provenance section.  With --replay N it drives a seeded stream of N
// mixed requests (distribution x sources x length drawn from a fixed pool,
// with in-bucket length jitter) through a plan::PlanCache — plan once,
// execute many — and reports the cache statistics.
//
//   spb_plan --machine paragon16x16 --dist B --sources 48 --len 6144
//   spb_plan --machine paragon8x8 --dist R --sources 8 --len 1024 --execute
//   spb_plan --machine paragon8x8 --replay 100 --seed 7 --execute
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parse.h"
#include "common/rng.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "machine/registry.h"
#include "obs/json.h"
#include "obs/report.h"
#include "plan/cache.h"
#include "plan/planner.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): CLI main

struct Options {
  std::string machine = "paragon8x8";
  std::string dist = "R";
  int sources = 0;  // 0 = p/4 (at least 2), like spb_report
  Bytes len = 2048;
  std::uint64_t seed = 1;
  std::string faults_text;
  fault::FaultSpec faults;
  std::uint64_t fault_seed = 1;
  bool execute = false;
  int replay = 0;  // > 0 = replay mode with that many requests
  int cache_capacity = static_cast<int>(plan::PlanCache::kDefaultCapacity);
  std::string out;  // "" = stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --machine M        " << machine::Registry::instance().grammar()
      << "\n"
      << "                     (default paragon8x8; list = catalogue)\n"
      << "  --dist D           R C E Dr Dl B Cr Sq Rand (default R)\n"
      << "  --sources N        source count (default p/4, min 2)\n"
      << "  --len N            message length L in bytes (default 2048)\n"
      << "  --seed N           distribution / replay seed (default 1)\n"
      << "  --faults [SEED:]SPEC   fault spec; refines the plan signature\n"
      << "                     and is applied when executing\n"
      << "  --execute          run the predicted-best algorithm too\n"
      << "  --replay N         plan a seeded stream of N mixed requests\n"
      << "                     through the plan cache\n"
      << "  --cache-capacity N plan cache capacity (default 1024)\n"
      << "  --out FILE         write the JSON here (default stdout)\n"
      << "  --list             print algorithm and distribution names\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machine") {
      o.machine = next(i);
    } else if (a == "--dist") {
      o.dist = next(i);
    } else if (a == "--sources") {
      o.sources = static_cast<int>(parse_u64_or_throw("--sources", next(i)));
    } else if (a == "--len") {
      o.len = static_cast<Bytes>(parse_u64_or_throw("--len", next(i)));
    } else if (a == "--seed") {
      o.seed = parse_u64_or_throw("--seed", next(i));
    } else if (a == "--faults") {
      std::string text = next(i);
      o.faults_text = text;
      const std::size_t colon = text.find(':');
      if (colon != std::string::npos) {
        o.fault_seed =
            parse_u64_or_throw("fault seed in --faults ([SEED:]SPEC)",
                               text.substr(0, colon));
        text = text.substr(colon + 1);
      }
      o.faults = fault::FaultSpec::parse(text);
    } else if (a == "--execute") {
      o.execute = true;
    } else if (a == "--replay") {
      o.replay = static_cast<int>(parse_u64_or_throw("--replay", next(i)));
      SPB_REQUIRE(o.replay >= 1, "--replay wants at least one request");
    } else if (a == "--cache-capacity") {
      o.cache_capacity =
          static_cast<int>(parse_u64_or_throw("--cache-capacity", next(i)));
    } else if (a == "--out") {
      o.out = next(i);
    } else if (a == "--list") {
      std::cout << "algorithms:\n";
      for (const std::string& name : plan::CostModel::algorithms())
        std::cout << "  " << name << "\n";
      std::cout << "distributions:\n";
      for (const dist::Kind k : dist::all_kinds())
        std::cout << "  " << dist::kind_name(k) << "\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << "\n";
      usage(argv[0]);
    }
  }
  return o;
}

std::string signature_hex(const plan::Signature& sig) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, sig.key());
  return buf;
}

void write_plan_json(std::ostream& os, const machine::MachineConfig& machine,
                     const std::string& dist_name, int s, Bytes len,
                     std::uint64_t seed, const plan::Plan& plan) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("machine", std::string_view(machine.name));
  w.field("p", machine.p);
  w.field("distribution", std::string_view(dist_name));
  w.field("sources", s);
  w.field("message_bytes", static_cast<std::uint64_t>(len));
  w.field("seed", seed);
  w.field("signature", std::string_view(signature_hex(plan.signature)));
  w.field("planned_bytes", static_cast<std::uint64_t>(plan.planned_bytes));
  w.field("best", std::string_view(plan.best()));
  w.key("ranked");
  w.begin_array();
  for (const plan::Plan::Entry& e : plan.ranked) {
    w.begin_object();
    w.field("algorithm", std::string_view(e.algorithm));
    w.field("predicted_us", e.predicted_us, 3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

obs::PlannerSection planner_section(const plan::Plan& plan, bool cache_hit,
                                    const plan::CacheStats& stats) {
  obs::PlannerSection ps;
  ps.signature = signature_hex(plan.signature);
  ps.planned_bytes = plan.planned_bytes;
  ps.cache_hit = cache_hit;
  ps.cache_hits = stats.hits;
  ps.cache_misses = stats.misses;
  ps.cache_evictions = stats.evictions;
  ps.ranked.reserve(plan.ranked.size());
  for (const plan::Plan::Entry& e : plan.ranked)
    ps.ranked.push_back({e.algorithm, e.predicted_us});
  return ps;
}

/// Plans one problem; with --execute also runs the predicted best and
/// emits the run report (with planner provenance) instead of the bare
/// plan.
void run_single(std::ostream& os, const Options& opt,
                const machine::MachineConfig& machine,
                const plan::Planner& planner) {
  const dist::Kind kind = dist::kind_from_name(opt.dist);
  int s = opt.sources;
  if (s == 0) s = std::max(2, machine.p / 4);
  const stop::Problem problem =
      stop::make_problem(machine, kind, s, opt.len, opt.seed);

  plan::PlanCache cache(static_cast<std::size_t>(opt.cache_capacity));
  const plan::Plan plan = cache.plan(planner, problem.sources, opt.len,
                                     opt.dist, opt.faults_text);

  if (!opt.execute) {
    write_plan_json(os, machine, opt.dist, s, opt.len, opt.seed, plan);
    return;
  }

  const stop::AlgorithmPtr algorithm = stop::find_algorithm(plan.best());
  const stop::RunResult result = stop::run(
      *algorithm, problem,
      stop::RunConfig{}.trace().link_stats().faults(opt.faults,
                                                    opt.fault_seed));

  obs::ReportContext ctx;
  ctx.algorithm = algorithm->name();
  ctx.machine = machine.name;
  ctx.distribution = dist::kind_name(kind);
  ctx.sources = s;
  ctx.message_bytes = opt.len;
  ctx.p = machine.p;
  ctx.seed = opt.seed;
  ctx.faults = opt.faults_text;

  const obs::PlannerSection ps =
      planner_section(plan, /*cache_hit=*/false, cache.stats());
  obs::write_run_report(os, ctx, result, machine.topology.get(), &ps);
}

/// One replay request: a problem from the fixed pool plus an in-bucket
/// length jitter (same signature, different exact L — the bucketing is
/// what makes the cache useful).
struct Request {
  dist::Kind kind;
  int sources;
  Bytes pool_len;
  Bytes exact_len;
  std::uint64_t dist_seed;
};

std::vector<Request> request_stream(const machine::MachineConfig& machine,
                                    int count, std::uint64_t seed) {
  const std::vector<int> s_pool = {
      std::max(1, machine.p / 8), std::max(1, machine.p / 4),
      std::max(1, (3 * machine.p) / 8), std::max(1, machine.p / 2)};
  const std::vector<Bytes> len_pool = {512, 1024, 6144, 32768};
  const auto& kinds = dist::all_kinds();

  // The distinct-problem pool: 32 templates drawn once, then the stream
  // samples from the pool.  ~N requests over 32 templates keeps the
  // steady-state hit rate high without hand-tuning.
  constexpr int kPoolSize = 32;
  Rng pool_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  struct Template {
    dist::Kind kind;
    int sources;
    Bytes len;
    std::uint64_t dist_seed;
  };
  std::vector<Template> pool;
  pool.reserve(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    Template t;
    t.kind = kinds[pool_rng.next_below(kinds.size())];
    t.sources =
        s_pool[pool_rng.next_below(s_pool.size())];
    t.len =
        len_pool[pool_rng.next_below(len_pool.size())];
    t.dist_seed = 1 + pool_rng.next_below(4);
    pool.push_back(t);
  }

  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  Rng stream_rng(seed);
  for (int i = 0; i < count; ++i) {
    const Template& t =
        pool[stream_rng.next_below(pool.size())];
    Request r;
    r.kind = t.kind;
    r.sources = t.sources;
    r.pool_len = t.len;
    // Jitter within the length bucket [2^b, 2^(b+1)): exact lengths vary,
    // signatures don't.
    r.exact_len = t.len + static_cast<Bytes>(stream_rng.next_below(
                              static_cast<std::uint64_t>(t.len / 8 + 1)));
    r.dist_seed = t.dist_seed;
    requests.push_back(r);
  }
  return requests;
}

/// Replays the seeded request stream through the plan cache: every request
/// is planned (cache hit or miss), and with --execute the predicted-best
/// algorithm is also run.  Emits aggregate JSON.
void run_replay(std::ostream& os, const Options& opt,
                const machine::MachineConfig& machine,
                const plan::Planner& planner) {
  const std::vector<Request> requests =
      request_stream(machine, opt.replay, opt.seed);
  plan::PlanCache cache(static_cast<std::size_t>(opt.cache_capacity));

  std::map<std::string, int> picks;  // algorithm -> times chosen
  double executed_us = 0;
  int executed_runs = 0;
  for (const Request& r : requests) {
    const stop::Problem problem = stop::make_problem(
        machine, r.kind, r.sources, r.exact_len, r.dist_seed);
    const plan::Plan plan = cache.plan(planner, problem.sources, r.exact_len,
                                       std::string(dist::kind_name(r.kind)),
                                       opt.faults_text);
    ++picks[plan.best()];
    if (opt.execute) {
      const stop::AlgorithmPtr algorithm = stop::find_algorithm(plan.best());
      const stop::RunResult result = stop::run(
          *algorithm, problem,
          stop::RunConfig{}.faults(opt.faults, opt.fault_seed));
      executed_us += result.time_us;
      ++executed_runs;
    }
  }

  const plan::CacheStats stats = cache.stats();
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("machine", std::string_view(machine.name));
  w.field("p", machine.p);
  w.field("seed", opt.seed);
  w.field("requests", static_cast<std::uint64_t>(requests.size()));
  w.key("cache");
  w.begin_object();
  w.field("capacity", static_cast<std::uint64_t>(cache.capacity()));
  w.field("size", static_cast<std::uint64_t>(cache.size()));
  w.field("hits", stats.hits);
  w.field("misses", stats.misses);
  w.field("evictions", stats.evictions);
  w.field("hit_rate", stats.hit_rate(), 4);
  w.end_object();
  w.key("picks");
  w.begin_object();
  for (const auto& [name, count] : picks)
    w.field(name, static_cast<std::uint64_t>(count));
  w.end_object();
  w.field("executed", opt.execute);
  if (opt.execute) {
    w.field("executed_runs", static_cast<std::uint64_t>(executed_runs));
    w.field("executed_total_us", executed_us, 3);
  }
  w.end_object();
  os << "\n";
}

int run_cli(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    return 0;
  }
  const machine::MachineConfig machine = machine::from_name(opt.machine);
  const plan::Planner planner(machine);

  std::ofstream file;
  if (!opt.out.empty()) {
    file.open(opt.out);
    SPB_REQUIRE(file.good(), "cannot write to '" << opt.out << "'");
  }
  std::ostream& os = opt.out.empty() ? std::cout : file;

  if (opt.replay > 0) {
    run_replay(os, opt, machine, planner);
  } else {
    run_single(os, opt, machine, planner);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad CLI input (unknown machine/algorithm/distribution) surfaces as
  // CheckError; report it like a usage error instead of aborting.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "spb_plan: " << e.what() << "\n";
    return 2;
  }
}
