// spb_report — one run, one JSON report.
//
// Runs any algorithm x distribution x machine combination with tracing and
// link accounting on, and emits a single machine-readable run report:
// timing, the paper's Figure-2 metrics, fault counters, the per-phase
// breakdown and a link-utilization histogram.  Optionally also exports the
// full Chrome-trace timeline (load it at https://ui.perfetto.dev) and an
// ASCII link heatmap.
//
//   spb_report --machine paragon8x8 --dist R --sources 8 --len 1024 \
//              --algo two_step --chrome-trace t.json
//   spb_report --machine t3d256 --dist Rand --sources 16 --len 4096 \
//              --algo Br_xy_source --faults 42:drop=0.05 --heatmap --out r.json
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/parse.h"
#include "dist/distribution.h"
#include "fault/fault.h"
#include "machine/config.h"
#include "machine/registry.h"
#include "obs/chrome_trace.h"
#include "obs/heatmap.h"
#include "obs/report.h"
#include "stop/algorithm.h"
#include "stop/problem.h"
#include "stop/run.h"

namespace {

using namespace spb;  // NOLINT(google-build-using-namespace): CLI main

struct Options {
  std::string machine = "paragon8x8";
  std::string dist = "R";
  std::string algo = "2-Step";
  int sources = 0;  // 0 = p/4 (at least 2), like analyze_schedule
  Bytes len = 2048;
  std::uint64_t seed = 1;
  std::string faults_text;
  fault::FaultSpec faults;
  std::uint64_t fault_seed = 1;
  std::string out;           // report path ("" = stdout)
  std::string chrome_trace;  // "" = no export
  bool heatmap = false;
  int sim_threads = 0;  // 0 = serial; >= 1 = sharded; -1 = sharded auto
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --machine M      " << machine::Registry::instance().grammar()
      << "\n"
      << "                   (default paragon8x8; list = catalogue)\n"
      << "  --dist D         R C E Dr Dl B Cr Sq Rand (default R)\n"
      << "  --algo A         algorithm name, exact or normalized\n"
      << "                   (two_step = 2-Step; see --list; default 2-Step)\n"
      << "  --sources N      source count (default p/4, min 2)\n"
      << "  --len N          message length L in bytes (default 2048)\n"
      << "  --seed N         seed for the Rand distribution (default 1)\n"
      << "  --faults [SEED:]SPEC   deterministic fault injection\n"
      << "                   (e.g. 42:drop=0.1,straggle=1x3)\n"
      << "  --sim-threads N  drain workers for the sharded simulation\n"
      << "                   engine (default 0 = serial loop; any N >= 1\n"
      << "                   yields byte-identical reports; -1 auto-sizes\n"
      << "                   the pool to the host's cores; disables\n"
      << "                   tracing, so not combinable with\n"
      << "                   --chrome-trace)\n"
      << "  --out FILE       write the JSON report here (default stdout)\n"
      << "  --chrome-trace FILE    also export the Perfetto/Chrome trace\n"
      << "  --heatmap        print an ASCII link heatmap to stderr\n"
      << "  --list           print algorithm and distribution names\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--machine") {
      o.machine = next(i);
    } else if (a == "--dist") {
      o.dist = next(i);
    } else if (a == "--algo") {
      o.algo = next(i);
    } else if (a == "--sources") {
      o.sources = static_cast<int>(parse_u64_or_throw("--sources", next(i)));
    } else if (a == "--len") {
      o.len = static_cast<Bytes>(parse_u64_or_throw("--len", next(i)));
    } else if (a == "--seed") {
      o.seed = parse_u64_or_throw("--seed", next(i));
    } else if (a == "--faults") {
      std::string text = next(i);
      o.faults_text = text;
      const std::size_t colon = text.find(':');
      if (colon != std::string::npos) {
        o.fault_seed =
            parse_u64_or_throw("fault seed in --faults ([SEED:]SPEC)",
                               text.substr(0, colon));
        text = text.substr(colon + 1);
      }
      o.faults = fault::FaultSpec::parse(text);
    } else if (a == "--sim-threads") {
      const std::string v = next(i);
      if (v == "-1") {
        o.sim_threads = -1;  // auto: parse_u64 rejects the sign
      } else {
        o.sim_threads =
            static_cast<int>(parse_u64_or_throw("--sim-threads", v));
      }
    } else if (a == "--out") {
      o.out = next(i);
    } else if (a == "--chrome-trace") {
      o.chrome_trace = next(i);
    } else if (a == "--heatmap") {
      o.heatmap = true;
    } else if (a == "--list") {
      std::cout << "algorithms:\n";
      for (const auto& alg : stop::all_algorithms())
        std::cout << "  " << alg->name() << "\n";
      std::cout << "distributions:\n";
      for (const dist::Kind k : dist::all_kinds())
        std::cout << "  " << dist::kind_name(k) << "\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option " << a << "\n";
      usage(argv[0]);
    }
  }
  return o;
}

int run_cli(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.machine == "list") {
    std::cout << machine::Registry::instance().describe();
    return 0;
  }

  const machine::MachineConfig machine = machine::from_name(opt.machine);
  const stop::AlgorithmPtr algorithm = stop::find_algorithm(opt.algo);
  const dist::Kind kind = dist::kind_from_name(opt.dist);
  int s = opt.sources;
  if (s == 0) s = std::max(2, machine.p / 4);
  const stop::Problem problem =
      stop::make_problem(machine, kind, s, opt.len, opt.seed);

  // The sharded engine needs no global event order, but tracing does — so
  // a parallel report runs without the trace (link accounting is fine:
  // reserves happen at the single-threaded window barrier only).
  SPB_REQUIRE(opt.sim_threads == 0 || opt.chrome_trace.empty(),
              "--chrome-trace needs the serial loop's tracing; drop "
              "--sim-threads or the trace export");
  stop::RunConfig cfg;
  cfg.link_stats().faults(opt.faults, opt.fault_seed);
  if (opt.sim_threads != 0) {
    cfg.sim_threads(opt.sim_threads);
  } else {
    cfg.trace();
  }
  const stop::RunResult result = stop::run(*algorithm, problem, cfg);

  obs::ReportContext ctx;
  ctx.algorithm = algorithm->name();
  ctx.machine = machine.name;
  ctx.distribution = dist::kind_name(kind);
  ctx.sources = s;
  ctx.message_bytes = opt.len;
  ctx.p = machine.p;
  ctx.seed = opt.seed;
  ctx.faults = opt.faults_text;

  if (opt.out.empty()) {
    obs::write_run_report(std::cout, ctx, result, machine.topology.get());
  } else {
    std::ofstream os(opt.out);
    SPB_REQUIRE(os.good(), "cannot write report to '" << opt.out << "'");
    obs::write_run_report(os, ctx, result, machine.topology.get());
  }

  if (!opt.chrome_trace.empty()) {
    std::ofstream os(opt.chrome_trace);
    SPB_REQUIRE(os.good(),
                "cannot write trace to '" << opt.chrome_trace << "'");
    obs::write_chrome_trace(os, result.trace, ctx.algorithm);
  }

  if (opt.heatmap) {
    std::cerr << obs::render_link_heatmap(*machine.topology,
                                          result.link_usage);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad CLI input (unknown machine/algorithm/distribution) surfaces as
  // CheckError; report it like a usage error instead of aborting.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "spb_report: " << e.what() << "\n";
    return 2;
  }
}
