#!/usr/bin/env python3
"""Positive/negative fixtures for tools/lint_coroutines.py (plain unittest
so CI runs it without pytest)."""

import importlib.util
import os
import sys
import tempfile
import unittest
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "lint_coroutines",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "lint_coroutines.py"))
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


def lint_snippet(body: str) -> list[str]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "x.cpp"
        path.write_text(body, encoding="utf-8")
        text = lint.strip_comments(body)
        tasks = {m.group(1) for m in lint.TASK_DECL.finditer(text)}
        tasks -= {"Task", "get_return_object"}
        return lint.check_file(path, tasks)


class CapturingCoroutineLambda(unittest.TestCase):
    def test_capturing_coroutine_lambda_is_flagged(self):
        findings = lint_snippet(
            "auto make = [this, rank]() -> sim::Task {\n"
            "  co_await mailbox.recv();\n"
            "};\n")
        self.assertEqual(len(findings), 1)
        self.assertIn("capturing coroutine lambda", findings[0])

    def test_non_coroutine_capturing_lambda_is_fine(self):
        findings = lint_snippet(
            "auto make = [this, rank]() { return run(rank); };\n")
        self.assertEqual(findings, [])

    def test_captureless_coroutine_lambda_is_fine(self):
        findings = lint_snippet(
            "auto make = []() -> sim::Task { co_return; };\n")
        self.assertEqual(findings, [])

    def test_co_keyword_in_comment_does_not_count(self):
        findings = lint_snippet(
            "auto make = [this]() { /* co_await later */ return 1; };\n")
        self.assertEqual(findings, [])


class DiscardedTask(unittest.TestCase):
    def test_bare_statement_call_is_flagged(self):
        findings = lint_snippet(
            "sim::Task worker(int rank);\n"
            "void f() { worker(3); }\n")
        self.assertEqual(len(findings), 1)
        self.assertIn("discarded", findings[0])
        self.assertIn("worker", findings[0])

    def test_awaited_call_is_fine(self):
        findings = lint_snippet(
            "sim::Task worker(int rank);\n"
            "sim::Task f() { co_await worker(3); }\n")
        self.assertEqual(findings, [])

    def test_stored_call_is_fine(self):
        findings = lint_snippet(
            "sim::Task worker(int rank);\n"
            "void f() { auto t = worker(3); rt.spawn(std::move(t)); }\n")
        self.assertEqual(findings, [])

    def test_call_as_argument_is_fine(self):
        findings = lint_snippet(
            "sim::Task worker(int rank);\n"
            "void f() { rt.spawn(worker(3)); }\n")
        self.assertEqual(findings, [])


class EndToEnd(unittest.TestCase):
    def test_clean_directory_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "a.cpp").write_text(
                "sim::Task worker();\n"
                "sim::Task f() { co_await worker(); }\n")
            self.assertEqual(lint.main(["lint_coroutines", tmp]), 0)

    def test_findings_exit_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "a.cpp").write_text(
                "sim::Task worker();\n"
                "void f() { worker(); }\n")
            self.assertEqual(lint.main(["lint_coroutines", tmp]), 1)

    def test_no_arguments_is_a_usage_error(self):
        self.assertEqual(lint.main(["lint_coroutines"]), 2)


if __name__ == "__main__":
    unittest.main()
