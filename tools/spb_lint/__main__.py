"""Entry point: `python3 tools/spb_lint DIR [DIR ...]`.

Works both as a package (`python3 -m tools.spb_lint`) and run by path,
where Python executes this file without package context.
"""

import sys

if __package__:
    from .rules import main
else:  # run by path: tools/spb_lint is sys.path[0]
    from rules import main

sys.exit(main(sys.argv))
