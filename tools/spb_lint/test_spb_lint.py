#!/usr/bin/env python3
"""Positive/negative fixtures for every spb_lint rule (plain unittest so
CI runs it without pytest)."""

import os
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import rules  # noqa: E402


def lint_snippet(body: str, rel: str = "src/coll/x.cpp") -> list[str]:
    """Writes `body` at `rel` inside a scratch tree and lints that file."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")
        raw = body
        text = rules.strip_comments(raw)
        return (rules.check_unordered_iteration(path, raw, text)
                + rules.check_banned_randomness(path, raw, text)
                + rules.check_guard_across_suspend(path, raw, text)
                + rules.check_mutable_static_state(path, raw, text)
                + rules.check_registry_catalogue(path, raw, text))


class UnorderedIteration(unittest.TestCase):
    def test_range_for_over_unordered_map_is_flagged(self):
        findings = lint_snippet(
            "std::unordered_map<int, std::vector<int>> table;\n"
            "void f() { for (const auto& [k, v] : table) use(k); }\n")
        self.assertEqual(len(findings), 1)
        self.assertIn("unordered-iteration", findings[0])
        self.assertIn("'table'", findings[0])

    def test_ordered_map_is_fine(self):
        findings = lint_snippet(
            "std::map<int, int> table;\n"
            "void f() { for (const auto& [k, v] : table) use(k); }\n")
        self.assertEqual(findings, [])

    def test_lookup_without_iteration_is_fine(self):
        findings = lint_snippet(
            "std::unordered_map<int, int> table;\n"
            "int f(int k) { return table.at(k); }\n")
        self.assertEqual(findings, [])

    def test_nolint_suppresses(self):
        findings = lint_snippet(
            "std::unordered_set<int> seen;\n"
            "void f() {\n"
            "  for (int k : seen)  // NOLINT: order-insensitive sum\n"
            "    total += k;\n"
            "}\n")
        self.assertEqual(findings, [])


class BannedRandomness(unittest.TestCase):
    def test_rand_in_sim_is_flagged(self):
        findings = lint_snippet("int f() { return rand() % 4; }\n",
                                rel="src/sim/x.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("banned-randomness", findings[0])

    def test_random_device_in_plan_is_flagged(self):
        findings = lint_snippet("std::random_device rd;\n",
                                rel="src/plan/x.cpp")
        self.assertEqual(len(findings), 1)

    def test_same_code_outside_the_core_is_fine(self):
        findings = lint_snippet("int f() { return rand() % 4; }\n",
                                rel="bench/x.cpp")
        self.assertEqual(findings, [])

    def test_identifier_suffix_time_is_not_a_call(self):
        # `Runtime(...)` must not trip the \btime\( pattern.
        findings = lint_snippet("Runtime(topo, params);\n",
                                rel="src/mp/x.cpp")
        self.assertEqual(findings, [])

    def test_comments_do_not_count(self):
        findings = lint_snippet("// never call rand() here\n",
                                rel="src/mp/x.cpp")
        self.assertEqual(findings, [])


class GuardAcrossSuspend(unittest.TestCase):
    def test_guard_held_across_co_await_is_flagged(self):
        findings = lint_snippet(
            "sim::Task f() {\n"
            "  std::lock_guard<std::mutex> g(mu_);\n"
            "  co_await mailbox.recv();\n"
            "}\n")
        self.assertEqual(len(findings), 1)
        self.assertIn("guard-across-suspend", findings[0])
        self.assertIn("lock_guard", findings[0])

    def test_guard_released_before_suspend_is_fine(self):
        findings = lint_snippet(
            "sim::Task f() {\n"
            "  { std::scoped_lock g(mu_); table[k] = v; }\n"
            "  co_await mailbox.recv();\n"
            "}\n")
        self.assertEqual(findings, [])

    def test_guard_in_plain_function_is_fine(self):
        findings = lint_snippet(
            "void f() { std::unique_lock<std::mutex> g(mu_); table[k] = v; }\n"
            "sim::Task g() { co_await mailbox.recv(); }\n")
        self.assertEqual(findings, [])


class MutableStaticState(unittest.TestCase):
    def test_static_local_in_sim_is_flagged(self):
        findings = lint_snippet(
            "int next_id() {\n"
            "  static int counter = 0;\n"
            "  return counter++;\n"
            "}\n", rel="src/sim/x.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("mutable-global-state", findings[0])

    def test_namespace_scope_inline_variable_is_flagged(self):
        findings = lint_snippet("inline int g_hits = 0;\n",
                                rel="src/net/x.h")
        self.assertEqual(len(findings), 1)
        self.assertIn("mutable-global-state", findings[0])

    def test_thread_local_without_rationale_is_flagged(self):
        findings = lint_snippet("thread_local int cursor = -1;\n",
                                rel="src/mp/x.cpp")
        self.assertEqual(len(findings), 1)

    def test_constexpr_and_const_statics_are_fine(self):
        findings = lint_snippet(
            "static constexpr int kShards = 16;\n"
            "static const char* const kName = \"x\";\n",
            rel="src/sim/x.cpp")
        self.assertEqual(findings, [])

    def test_atomic_static_is_fine(self):
        findings = lint_snippet("static std::atomic<int> hits{0};\n",
                                rel="src/sim/x.cpp")
        self.assertEqual(findings, [])

    def test_static_member_function_is_not_a_variable(self):
        findings = lint_snippet(
            "struct S {\n"
            "  static bool earlier(const Key& a, const Key& b);\n"
            "};\n", rel="src/sim/x.h")
        self.assertEqual(findings, [])

    def test_same_code_outside_shard_dirs_is_fine(self):
        findings = lint_snippet("static int counter = 0;\n",
                                rel="src/stop/x.cpp")
        self.assertEqual(findings, [])

    def test_nolint_with_rationale_suppresses(self):
        findings = lint_snippet(
            "// NOLINTNEXTLINE(spb-mutable-global): per-thread cursor\n"
            "thread_local int cursor = -1;\n",
            rel="src/sim/x.cpp")
        self.assertEqual(findings, [])

    def test_nolint_without_rationale_does_not_suppress(self):
        findings = lint_snippet(
            "thread_local int cursor = -1;  // NOLINT\n",
            rel="src/sim/x.cpp")
        self.assertEqual(len(findings), 1)


class FlagStaticAsserts(unittest.TestCase):
    COVERED = (
        "static_assert(!stop::RunOptions{}.trace, \"\");\n"
        "static_assert(!stop::RunOptions{}.record_schedule, \"\");\n"
        "static_assert(!stop::RunOptions{}.faults.any(), \"\");\n"
        "static_assert(!stop::RunOptions{}.link_stats, \"\");\n"
        "static_assert(stop::RunOptions{}.sim_threads == 0, \"\");\n")

    def test_full_coverage_passes(self):
        text = rules.strip_comments(self.COVERED)
        self.assertEqual(
            rules.check_flag_static_asserts({Path("u.h"): text}), [])

    def test_missing_flag_is_named(self):
        partial = "\n".join(line for line in self.COVERED.splitlines()
                            if "link_stats" not in line)
        # sim_threads uses == 0 rather than ! — both forms must satisfy U4.
        text = rules.strip_comments(partial)
        findings = rules.check_flag_static_asserts({Path("u.h"): text})
        self.assertEqual(len(findings), 1)
        self.assertIn("link_stats", findings[0])


class RegistryCatalogue(unittest.TestCase):
    COMPLETE = (
        "Registry::Registry() {\n"
        "  entries_.push_back({\n"
        "      .pattern = \"meshRxC\",\n"
        "      .description = \"a mesh of \"\n"
        "                     \"R x C processors\",\n"
        "      .example = \"mesh4x4\",\n"
        "      .prefix = \"mesh\",\n"
        "      .parse = [](const std::string& s) { return mesh(s); },\n"
        "  });\n"
        "}\n")

    def test_complete_entry_passes(self):
        findings = lint_snippet(self.COMPLETE,
                                rel="src/machine/registry.cpp")
        self.assertEqual(findings, [])

    def test_missing_example_is_flagged(self):
        body = "\n".join(line for line in self.COMPLETE.splitlines()
                         if ".example" not in line)
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("registry-catalogue", findings[0])
        self.assertIn(".example", findings[0])

    def test_empty_description_is_flagged(self):
        body = self.COMPLETE.replace(
            "      .description = \"a mesh of \"\n"
            "                     \"R x C processors\",\n",
            "      .description = \"\",\n")
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn(".description", findings[0])

    def test_real_registry_shape_passes(self):
        # Two entries, one with a lambda containing braces: the brace
        # matcher must not leak one entry's fields into the next.
        body = self.COMPLETE.replace(
            "  });\n}", "  });\n  entries_.push_back({\n"
            "      .pattern = \"ringN\",\n"
            "      .description = \"a ring\",\n"
            "      .example = \"ring8\",\n"
            "      .prefix = \"ring\",\n"
            "      .parse = [](const std::string& s) {\n"
            "        if (s.empty()) { throw 1; }\n"
            "        return ring(s);\n"
            "      },\n"
            "  });\n}")
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(findings, [])

    def test_prefix_shadowing_is_flagged(self):
        # A "t3" entry registered before "t3d": parse() would route every
        # t3d spec to the t3 parser, making the t3d entry unreachable.
        body = (
            "Registry::Registry() {\n"
            "  entries_.push_back({\n"
            "      .pattern = \"t3N\",\n"
            "      .description = \"a t3\",\n"
            "      .example = \"t38\",\n"
            "      .prefix = \"t3\",\n"
            "      .parse = [](const std::string& s) { return t3(s); },\n"
            "  });\n"
            "  entries_.push_back({\n"
            "      .pattern = \"t3dP\",\n"
            "      .description = \"a t3d\",\n"
            "      .example = \"t3d512\",\n"
            "      .prefix = \"t3d\",\n"
            "      .parse = [](const std::string& s) { return t3d(s); },\n"
            "  });\n"
            "}\n")
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("registry-catalogue", findings[0])
        self.assertIn("prefix 't3' shadows", findings[0])
        self.assertIn("'t3d'", findings[0])

    def test_longer_prefix_registered_first_passes(self):
        # The reverse order is the correct one: "t3d" before "t3".
        body = (
            "Registry::Registry() {\n"
            "  entries_.push_back({\n"
            "      .pattern = \"t3dP\",\n"
            "      .description = \"a t3d\",\n"
            "      .example = \"t3d512\",\n"
            "      .prefix = \"t3d\",\n"
            "      .parse = [](const std::string& s) { return t3d(s); },\n"
            "  });\n"
            "  entries_.push_back({\n"
            "      .pattern = \"t3N\",\n"
            "      .description = \"a t3\",\n"
            "      .example = \"t38\",\n"
            "      .prefix = \"t3\",\n"
            "      .parse = [](const std::string& s) { return t3(s); },\n"
            "  });\n"
            "}\n")
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(findings, [])

    def test_duplicate_prefixes_are_flagged(self):
        body = RegistryCatalogue.COMPLETE.replace(
            "  });\n}", "  });\n  entries_.push_back({\n"
            "      .pattern = \"meshN\",\n"
            "      .description = \"another mesh\",\n"
            "      .example = \"mesh9\",\n"
            "      .prefix = \"mesh\",\n"
            "      .parse = [](const std::string& s) { return mesh2(s); },\n"
            "  });\n}")
        findings = lint_snippet(body, rel="src/machine/registry.cpp")
        self.assertEqual(len(findings), 1)
        self.assertIn("shadows", findings[0])

    def test_files_without_registry_entries_are_fine(self):
        findings = lint_snippet("void f() { entries.push_back(3); }\n",
                                rel="src/machine/config.cpp")
        self.assertEqual(findings, [])


class MainEntry(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "a.cpp").write_text(FlagStaticAsserts.COVERED)
            self.assertEqual(rules.main(["spb_lint", tmp]), 0)

    def test_findings_exit_one(self):
        with tempfile.TemporaryDirectory() as tmp:
            sim = Path(tmp) / "src" / "sim"
            sim.mkdir(parents=True)
            (sim / "a.cpp").write_text(
                FlagStaticAsserts.COVERED + "int f() { return rand(); }\n")
            self.assertEqual(rules.main(["spb_lint", tmp]), 1)

    def test_no_arguments_is_a_usage_error(self):
        self.assertEqual(rules.main(["spb_lint"]), 2)


if __name__ == "__main__":
    unittest.main()
