"""Rule implementations for spb_lint (see package docstring)."""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Directories whose code must draw randomness only from common/rng.h.
DETERMINISTIC_DIRS = ("src/sim/", "src/mp/", "src/plan/")

# Zero-cost feature flags that must be proven default-off somewhere in the
# scanned tree (they live in bench/util.h; .faults uses .any()).
REQUIRED_FLAG_ASSERTS = ("trace", "record_schedule", "link_stats", "faults",
                         "sim_threads")

# Directories whose hot paths may run on several drain workers at once
# (the sharded engine, see sim/sharded.h): mutable static or
# namespace-scope state there is a data race and a determinism leak.
SHARD_SAFE_DIRS = ("src/sim/", "src/net/", "src/mp/")

UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*(?:\w+\s*\.\s*)?(\w+)\s*\)")
BANNED_RANDOM = re.compile(
    r"\b(?:rand|srand|time)\s*\(|\brandom_device\b")
GUARD_DECL = re.compile(
    r"\b(?:std\s*::\s*)?(lock_guard|unique_lock|scoped_lock)\s*[<\s]")
CO_SUSPEND = re.compile(r"\bco_(?:await|yield)\b")
# A declaration whose storage class makes it shared across calls: static,
# thread_local, or an inline (namespace-scope) variable.  Function
# declarations never match — the lazy body class excludes parentheses, so
# the pattern dies at a parameter list before finding the `;` or `=`.
STATIC_STATE = re.compile(
    r"^[ \t]*(?:(?:static|thread_local|inline)\s+){1,3}[^;{}()\n]*?[;=]",
    re.M)
# Qualifiers that make shared state benign: immutable or atomic.
BENIGN_STATE = re.compile(
    r"\b(?:const|constexpr|consteval|constinit)\b|\batomic")
# Fields every machine-registry catalogue entry must fill with a non-empty
# string literal (rule U6): the `--machine list` catalogue, the CLI usage
# grammar and the unknown-spec error are all built from them.
REGISTRY_ENTRY_FIELDS = ("pattern", "description", "example", "prefix")
REGISTRY_PUSH = re.compile(r"entries_\.push_back\s*\(\s*\{")
NONEMPTY_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)+"')


def strip_comments(text: str) -> str:
    """Blanks out comments and string literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        two = text[i:i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote = text[i]
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


def _suppressed(raw: str, text: str, idx: int) -> bool:
    """True when the raw source line carrying `idx` opts out via NOLINT."""
    start = text.rfind("\n", 0, idx) + 1
    end = text.find("\n", idx)
    end = len(text) if end < 0 else end
    return "NOLINT" in raw[start:end]


def _matching_angle(text: str, open_idx: int) -> int:
    """Index just past the `>` closing the `<` at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def unordered_variables(text: str) -> set[str]:
    """Names of variables/members declared with an unordered container."""
    names = set()
    for m in UNORDERED_DECL.finditer(text):
        close = _matching_angle(text, m.end() - 1)
        decl = re.match(r"\s*&?\s*(\w+)\s*[;={(]", text[close:])
        if decl:
            names.add(decl.group(1))
    return names


def check_unordered_iteration(path: Path, raw: str, text: str) -> list[str]:
    """U1: range-for over an unordered container variable."""
    names = unordered_variables(text)
    findings = []
    for m in RANGE_FOR.finditer(text):
        if m.group(1) not in names or _suppressed(raw, text, m.start()):
            continue
        findings.append(
            f"{path}:{line_of(text, m.start())}: [unordered-iteration] "
            f"range-for over unordered container '{m.group(1)}' — iteration "
            f"order is unspecified and poisons deterministic output; sort "
            f"the keys or use an ordered container")
    return findings


def check_banned_randomness(path: Path, raw: str, text: str) -> list[str]:
    """U2: wall-clock / libc randomness inside the deterministic core."""
    posix = path.as_posix()
    if not any(d in posix for d in DETERMINISTIC_DIRS):
        return []
    findings = []
    for m in BANNED_RANDOM.finditer(text):
        if _suppressed(raw, text, m.start()):
            continue
        what = m.group(0).rstrip("(").strip()
        findings.append(
            f"{path}:{line_of(text, m.start())}: [banned-randomness] "
            f"'{what}' in the deterministic core — every choice in "
            f"src/sim, src/mp and src/plan must come from the seeded "
            f"common/rng.h stream")
    return findings


def check_guard_across_suspend(path: Path, raw: str, text: str) -> list[str]:
    """U3: mutex guard scope containing a coroutine suspension point."""
    findings = []
    for m in GUARD_DECL.finditer(text):
        if _suppressed(raw, text, m.start()):
            continue
        # End of the guard's lifetime: the `}` that closes the scope the
        # declaration lives in (brace depth going negative).
        stmt_end = text.find(";", m.end())
        if stmt_end < 0:
            continue
        depth = 0
        scope_end = len(text)
        for i in range(stmt_end, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth < 0:
                    scope_end = i
                    break
        suspend = CO_SUSPEND.search(text, stmt_end, scope_end)
        if suspend:
            findings.append(
                f"{path}:{line_of(text, m.start())}: [guard-across-suspend] "
                f"{m.group(1)} still held at the co_await/co_yield on line "
                f"{line_of(text, suspend.start())} — the frame suspends "
                f"with the mutex locked; release the guard before "
                f"suspending")
    return findings


def _suppressed_for(raw: str, text: str, idx: int, category: str) -> bool:
    """True when the line carrying `idx` (or the one above it, via
    NOLINTNEXTLINE) opts out of `category` with a rationale — the annotation
    must carry the category name and a `:` followed by an explanation."""
    start = text.rfind("\n", 0, idx) + 1
    end = text.find("\n", idx)
    end = len(text) if end < 0 else end
    lines = [raw[start:end]]
    prev_start = text.rfind("\n", 0, max(start - 1, 0)) + 1
    if start > 0:
        lines.append(raw[prev_start:start - 1])
    annot = re.compile(
        r"NOLINT(?:NEXTLINE)?\(" + re.escape(category) + r"\)\s*:\s*\S")
    return any(annot.search(line) for line in lines)


def check_mutable_static_state(path: Path, raw: str, text: str) -> list[str]:
    """U5: mutable static / namespace-scope state in shard-visible code.

    The sharded engine (sim/sharded.h) drains src/sim, src/mp and src/net
    hot paths on several worker threads inside a window.  Any static or
    namespace-scope variable they touch is therefore shared mutable state:
    a data race and — because update order would depend on thread timing —
    a determinism leak.  Such state must be immutable (const/constexpr),
    std::atomic, per-shard (owned by a shard-indexed structure), or carry
    an explicit NOLINT(spb-mutable-global): <rationale> annotation.
    """
    posix = path.as_posix()
    if not any(d in posix for d in SHARD_SAFE_DIRS):
        return []
    findings = []
    for m in STATIC_STATE.finditer(text):
        decl = m.group(0)
        if BENIGN_STATE.search(decl):
            continue
        # `inline namespace` and friends are not variable declarations.
        if re.search(r"\b(?:namespace|using|typedef|class|struct|enum)\b",
                     decl):
            continue
        if _suppressed_for(raw, text, m.start(), "spb-mutable-global"):
            continue
        findings.append(
            f"{path}:{line_of(text, m.start())}: [mutable-global-state] "
            f"mutable static/namespace-scope state reachable from the "
            f"sharded engine's concurrent drains — make it const, "
            f"std::atomic, per-shard, or annotate the line with "
            f"NOLINT(spb-mutable-global): <why it is race-free>")
    return findings


def _matching_brace(text: str, open_idx: int) -> int:
    """Index just past the `}` closing the `{` at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_registry_catalogue(path: Path, raw: str, text: str) -> list[str]:
    """U6: every machine-registry entry documents itself.

    Each `entries_.push_back({...})` in the machine registry must set
    .pattern, .description, .example and .prefix to non-empty string
    literals — `--machine list`, the usage grammar and the unknown-spec
    error are generated from these fields, so an empty one silently
    degrades every CLI.  Matching runs on the raw source because
    strip_comments blanks string-literal contents.

    Additionally, no entry's .prefix may be a prefix of a *later* entry's
    .prefix: Registry::parse dispatches on the first matching prefix in
    registration order, so the earlier entry would shadow the later one
    and claim its specs (a "t3" entry before "t3d" would swallow every
    t3d512).  The registry constructor enforces the same property at run
    time; this catches it at lint time.
    """
    findings = []
    prefixes = []  # (line, literal) in registration order
    for m in REGISTRY_PUSH.finditer(text):
        open_idx = m.end() - 1
        block = raw[open_idx:_matching_brace(text, open_idx)]
        line = line_of(text, m.start())
        for field in REGISTRY_ENTRY_FIELDS:
            value = re.search(
                r"\.\s*" + field + r"\s*=\s*((?:\s*\"(?:[^\"\\\n]|\\.)*\")+)",
                block)
            if value is None or not NONEMPTY_LITERAL.search(value.group(1)):
                findings.append(
                    f"{path}:{line}: [registry-catalogue] machine-registry "
                    f"entry with a missing or empty .{field} — the "
                    f"--machine list catalogue, the usage grammar and the "
                    f"unknown-spec error are built from it; fill every "
                    f"field with a string literal")
            elif field == "prefix":
                literal = NONEMPTY_LITERAL.search(value.group(1))
                prefixes.append((line, literal.group(0)[1:-1]))
    for i, (line, early) in enumerate(prefixes):
        for later_line, later in prefixes[i + 1:]:
            if later.startswith(early):
                findings.append(
                    f"{path}:{line}: [registry-catalogue] machine-registry "
                    f"prefix '{early}' shadows the later entry with prefix "
                    f"'{later}' (line {later_line}) — parse() dispatches on "
                    f"the first matching prefix, so the later entry is "
                    f"unreachable; register the longer prefix first")
    return findings


def check_flag_static_asserts(files_text: dict[Path, str]) -> list[str]:
    """U4: each zero-cost feature flag has a default-off static_assert."""
    corpus = "\n".join(files_text.values())
    findings = []
    for flag in REQUIRED_FLAG_ASSERTS:
        pattern = re.compile(
            r"static_assert\s*\([^;]*RunOptions\s*\{\s*\}\s*\.\s*" + flag,
            re.S)
        if not pattern.search(corpus):
            findings.append(
                f"(tree): [flag-static-asserts] no static_assert proves "
                f"RunOptions{{}}.{flag} defaults to off — a stray default "
                f"would tax every simulated send; add one (see "
                f"bench/util.h)")
    return findings


def collect_files(roots: list[str]) -> list[Path]:
    files = []
    for d in roots:
        p = Path(d)
        if p.is_file():
            files.append(p)
        else:
            files.extend(sorted(p.rglob("*.cpp")))
            files.extend(sorted(p.rglob("*.h")))
    return files


def run(roots: list[str]) -> tuple[list[str], int]:
    """Returns (findings, files scanned)."""
    files = collect_files(roots)
    raws = {f: f.read_text(encoding="utf-8", errors="replace") for f in files}
    texts = {f: strip_comments(raws[f]) for f in files}
    findings = []
    for f in files:
        findings.extend(check_unordered_iteration(f, raws[f], texts[f]))
        findings.extend(check_banned_randomness(f, raws[f], texts[f]))
        findings.extend(check_guard_across_suspend(f, raws[f], texts[f]))
        findings.extend(check_mutable_static_state(f, raws[f], texts[f]))
        findings.extend(check_registry_catalogue(f, raws[f], texts[f]))
    findings.extend(check_flag_static_asserts(texts))
    return findings, len(files)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        doc = sys.modules[__package__].__doc__ if __package__ else __doc__
        print(doc)
        return 2
    findings, n = run(argv[1:])
    for finding in findings:
        print(finding)
    print(f"spb_lint: {n} files, {len(findings)} finding(s)")
    return 1 if findings else 0
