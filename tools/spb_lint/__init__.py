"""spb_lint — determinism lint for the S-to-P broadcasting codebase.

Source-level invariants that keep simulated runs bit-reproducible and the
road to intra-run parallelism safe (see DESIGN.md §11).  Six rules:

U1 unordered-iteration   Range-for over a std::unordered_map/unordered_set
                         variable.  Iteration order is unspecified and
                         varies across libstdc++ versions and ASLR seeds;
                         anything it feeds (output, hashes, schedules)
                         stops being deterministic.  Iterate a sorted
                         container, or sort the keys first.
U2 banned-randomness     rand()/srand()/time()/std::random_device inside
                         src/sim, src/mp or src/plan.  The simulator, the
                         message-passing runtime and the planner must
                         derive every choice from the seeded common/rng.h
                         stream, or replays and the plan cache break.
U3 guard-across-suspend  A std::lock_guard/unique_lock/scoped_lock whose
                         scope contains a later co_await/co_yield.  The
                         coroutine suspends with the mutex held; whichever
                         thread resumes the frame unlocks a mutex it never
                         locked (UB) — and every other thread deadlocks
                         first.  Release the guard before suspending.
U4 flag-static-asserts   Every zero-cost feature flag (RunOptions{}.trace,
                         .record_schedule, .link_stats, .faults) must be
                         covered by a static_assert proving it defaults to
                         off, so a stray default never taxes the hot path.
U5 mutable-global-state  Mutable static / namespace-scope state in src/sim,
                         src/net or src/mp.  The sharded engine drains
                         those hot paths on several worker threads, so
                         shared mutable state is a data race and a
                         determinism leak.  Make it const, std::atomic,
                         per-shard, or annotate with
                         NOLINT(spb-mutable-global): <rationale>.
U6 registry-catalogue    Every machine-registry entry
                         (entries_.push_back({...}) in
                         src/machine/registry.cpp) must fill .pattern,
                         .description, .example and .prefix with non-empty
                         string literals — `--machine list`, the usage
                         grammar and the unknown-spec error are generated
                         from them.

Suppress a finding by putting NOLINT (with a rationale) on the line.

Usage: python3 tools/spb_lint DIR [DIR ...]
Exits 1 when any finding is reported, 2 on usage error.
"""

from .rules import main  # noqa: F401
